//! Integration tests for the paper's qualitative claims that do not need the
//! timing simulator: compiler properties, overhead accounting, and the
//! capacity studies.

use ltrf::compiler::{compile, CompilerOptions};
use ltrf::core::{capacity_requirement, overhead_report, GpuArchitecture, OverheadInputs};
use ltrf::workloads::{evaluated_suite, unconstrained_register_demands};

#[test]
fn register_intervals_cover_every_suite_kernel_within_budget() {
    for workload in evaluated_suite() {
        let compiled = compile(&workload.kernel, &CompilerOptions::default())
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", workload.name()));
        let violations = compiled
            .partition
            .invariant_violations(&compiled.kernel.cfg);
        assert!(
            violations.is_empty(),
            "{} has partition violations: {violations:?}",
            workload.name()
        );
        assert!(compiled.stats.max_working_set <= 16);
        assert_eq!(
            compiled.kernel.static_instruction_count(),
            workload.kernel.static_instruction_count(),
            "{}: splitting must preserve instructions",
            workload.name()
        );
    }
}

#[test]
fn register_intervals_are_coarser_than_strands_across_the_suite() {
    // §6.6: strands are terminated by long-latency operations and control
    // flow, so they are much more numerous than register-intervals.
    let mut interval_total = 0usize;
    let mut strand_total = 0usize;
    for workload in evaluated_suite() {
        let intervals = compile(&workload.kernel, &CompilerOptions::default()).unwrap();
        let strands =
            compile(&workload.kernel, &CompilerOptions::default().with_strands()).unwrap();
        assert!(
            strands.stats.interval_count >= intervals.stats.interval_count,
            "{}: strands ({}) should not be fewer than register-intervals ({})",
            workload.name(),
            strands.stats.interval_count,
            intervals.stats.interval_count
        );
        interval_total += intervals.stats.interval_count;
        strand_total += strands.stats.interval_count;
    }
    assert!(
        strand_total as f64 >= interval_total as f64 * 1.5,
        "across the suite strands should be clearly more numerous ({strand_total} vs {interval_total})"
    );
}

#[test]
fn code_size_overhead_is_single_digit_percent_on_average() {
    // §4.3: ~7% with embedded bit-vectors.
    let mut overheads = Vec::new();
    for workload in evaluated_suite() {
        let compiled = compile(&workload.kernel, &CompilerOptions::default()).unwrap();
        overheads.push(compiled.stats.code_size_overhead);
    }
    let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
    // The synthetic kernels are much smaller (tens to a couple of hundred
    // static instructions) than real CUDA kernels, so each PREFETCH
    // bit-vector weighs proportionally more than the paper's 7%; the bound
    // here only guards against pathological interval explosion.
    assert!(
        mean > 0.005 && mean < 0.45,
        "mean code-size overhead should stay a modest fraction, got {mean}"
    );
}

#[test]
fn table1_capacity_requirements_match_the_papers_direction() {
    let demands = unconstrained_register_demands();
    let fermi = capacity_requirement(GpuArchitecture::fermi(), &demands).unwrap();
    let maxwell = capacity_requirement(GpuArchitecture::maxwell(), &demands).unwrap();
    // Both architectures need more than their baseline register file on
    // average, and Maxwell's relative shortfall is larger (as in Table 1).
    assert!(fermi.average_factor() > 1.0);
    assert!(maxwell.average_factor() > 1.0);
    assert!(maxwell.max_factor() > fermi.max_factor());
    assert!(maxwell.max_factor() > 3.0);
}

#[test]
fn wcb_storage_stays_near_five_percent() {
    let report = overhead_report(&OverheadInputs::default(), None);
    assert!(report.wcb_fraction_of_regfile < 0.07);
    assert!(report.area_overhead < 0.20);
}

#[test]
fn liveness_annotation_marks_a_reasonable_fraction_of_operands_dead() {
    // LTRF+ only helps if a meaningful fraction of operand reads are last
    // uses; check the compiler finds them across the suite.
    let mut total_src_operands = 0u64;
    let mut dead_operands = 0u64;
    for workload in evaluated_suite() {
        let compiled = compile(&workload.kernel, &CompilerOptions::default()).unwrap();
        for block in compiled.kernel.cfg.blocks() {
            for inst in block.instructions() {
                total_src_operands += inst.srcs().len() as u64;
                dead_operands += u64::from(inst.dead_mask().count_ones());
            }
        }
    }
    let fraction = dead_operands as f64 / total_src_operands.max(1) as f64;
    assert!(
        fraction > 0.05,
        "at least some operands should be last uses, got {fraction}"
    );
    assert!(
        fraction < 0.95,
        "not every operand can be a last use: {fraction}"
    );
}
