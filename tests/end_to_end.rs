//! End-to-end integration tests spanning every crate: workload construction →
//! compilation → simulation → power accounting, for each register-file
//! organization.

use ltrf::core::{run_experiment, run_normalized, ExperimentConfig, Organization};
use ltrf::sim::MemoryBehavior;
use ltrf::workloads::{by_name, WorkloadGenerator};

/// Small, fast workloads used by the integration tests (debug builds simulate
/// slowly, so we avoid the heavyweight suite members).
fn small_workloads() -> Vec<ltrf::workloads::Workload> {
    ["btree", "histo", "pathfinder"]
        .iter()
        .map(|n| by_name(n).expect("workload exists"))
        .collect()
}

#[test]
fn every_organization_runs_every_small_workload() {
    for workload in small_workloads() {
        for &org in Organization::all() {
            let config = ExperimentConfig::for_table2(org, 6);
            let result = run_experiment(&workload.kernel, workload.memory(), 1, &config)
                .unwrap_or_else(|e| panic!("{org} on {} failed: {e}", workload.name()));
            assert!(
                result.ipc > 0.0,
                "{org} on {} produced no progress",
                workload.name()
            );
            assert!(
                !result.stats.truncated,
                "{org} on {} hit the cycle cap",
                workload.name()
            );
            assert_eq!(
                result.stats.warps_completed,
                result.stats.warps_resident,
                "{org} on {} did not finish all warps",
                workload.name()
            );
        }
    }
}

#[test]
fn ltrf_recovers_most_of_the_ideal_gain_on_config7() {
    // The paper's headline: on the 8x-capacity 6.3x-latency DWM register
    // file, LTRF performs close to the ideal register file while the
    // conventional design does not.
    let workload = by_name("hotspot").expect("hotspot exists");
    let bl = run_normalized(
        &workload.kernel,
        workload.memory(),
        2,
        &ExperimentConfig::for_table2(Organization::Baseline, 7),
    )
    .unwrap();
    let ltrf = run_normalized(
        &workload.kernel,
        workload.memory(),
        2,
        &ExperimentConfig::for_table2(Organization::Ltrf, 7),
    )
    .unwrap();
    let ideal = run_normalized(
        &workload.kernel,
        workload.memory(),
        2,
        &ExperimentConfig::for_table2(Organization::Ideal, 7),
    )
    .unwrap();
    assert!(
        ltrf.normalized_ipc > bl.normalized_ipc,
        "LTRF ({}) must beat the conventional design ({}) on a slow register file",
        ltrf.normalized_ipc,
        bl.normalized_ipc
    );
    assert!(
        ltrf.normalized_ipc >= ideal.normalized_ipc * 0.80,
        "LTRF ({}) should recover most of the ideal gain ({})",
        ltrf.normalized_ipc,
        ideal.normalized_ipc
    );
}

#[test]
fn ltrf_plus_uses_no_more_mrf_traffic_than_ltrf() {
    let workload = by_name("pathfinder").expect("pathfinder exists");
    let ltrf = run_experiment(
        &workload.kernel,
        workload.memory(),
        3,
        &ExperimentConfig::for_table2(Organization::Ltrf, 7),
    )
    .unwrap();
    let plus = run_experiment(
        &workload.kernel,
        workload.memory(),
        3,
        &ExperimentConfig::for_table2(Organization::LtrfPlus, 7),
    )
    .unwrap();
    let ltrf_mrf = ltrf.stats.regfile_accesses.mrf_total();
    let plus_mrf = plus.stats.regfile_accesses.mrf_total();
    assert!(
        plus_mrf <= ltrf_mrf,
        "liveness awareness must not add main-register-file traffic ({plus_mrf} vs {ltrf_mrf})"
    );
}

#[test]
fn ltrf_filters_most_mrf_accesses() {
    // §4.2: LTRF reduces the number of accesses to the main register file by
    // 4x-6x relative to the baseline (less for irregular, load-dominated
    // kernels whose warps swap in and out of the active pool constantly).
    let workload = by_name("pathfinder").expect("pathfinder exists");
    let bl = run_experiment(
        &workload.kernel,
        workload.memory(),
        4,
        &ExperimentConfig::for_table2(Organization::Baseline, 6),
    )
    .unwrap();
    let ltrf = run_experiment(
        &workload.kernel,
        workload.memory(),
        4,
        &ExperimentConfig::for_table2(Organization::Ltrf, 6),
    )
    .unwrap();
    let bl_mrf = bl.stats.regfile_accesses.mrf_total() as f64;
    let ltrf_mrf = ltrf.stats.regfile_accesses.mrf_total() as f64;
    assert!(
        bl_mrf / ltrf_mrf > 2.0,
        "LTRF should cut main-register-file traffic substantially ({bl_mrf} vs {ltrf_mrf})"
    );
}

#[test]
fn generated_workloads_survive_the_full_pipeline() {
    let mut generator = WorkloadGenerator::new(2024);
    for workload in generator.generate(3) {
        let config = ExperimentConfig::for_table2(Organization::LtrfPlus, 7);
        let result = run_experiment(
            &workload.kernel,
            MemoryBehavior::cache_resident(),
            5,
            &config,
        )
        .expect("generated workloads must compile and simulate");
        assert!(result.ipc > 0.0);
        if let Some(hit_rate) = result.cache_hit_rate {
            assert!(
                hit_rate > 0.9,
                "LTRF+ register-cache hit rate should be near-perfect, got {hit_rate}"
            );
        }
    }
}
