//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the small slice of `rand` the workspace actually uses is vendored here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_range` (over `Range`/`RangeInclusive` of the primitive integers),
//! `gen_bool`, and `gen` for a few primitives.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and of more than sufficient quality for synthetic-workload
//! generation and property-test input generation. It makes no attempt to be
//! bit-compatible with the real `rand::rngs::StdRng` (which is ChaCha12);
//! everything in this workspace that cares about reproducibility pins its own
//! seeds and compares run-to-run, never against externally generated streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the minimal `RngCore` equivalent.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`. `low < high` must hold.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. `low <= high` must hold.
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide);
                low.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as $wide).wrapping_sub(low as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: seeds the main generator and backs `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0xDEAD_BEEF, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| {
            let mut a2 = a.clone();
            a2.gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX)
        });
        assert!(differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(5u16..=9);
            assert!((5..=9).contains(&x));
            let y = rng.gen_range(-3i32..4);
            assert!((-3..4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
