//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros — backed by a plain
//! measure-and-print loop rather than criterion's statistical machinery.
//! Good enough to smoke-test that the benches run and to eyeball relative
//! timings; not a substitute for real confidence intervals.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: None,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name.into(), self.default_sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(10);
        run_one(name.into(), samples, f);
        self
    }

    /// Ends the group (printing nothing extra; kept for API fidelity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: String, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iterations > 0 {
        bencher.total / u32::try_from(bencher.iterations).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    println!(
        "  {name}: {mean:?}/iter over {} iterations",
        bencher.iterations
    );
}

/// Passed to the benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iterations += 1;
            std::hint::black_box(out);
        }
    }
}

/// Collects benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
