//! The owned value tree both traits go through.

use crate::Error;

/// A self-describing value: the intermediate form between Rust types and
/// JSON text.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map), which
/// keeps the JSON encoding canonical: serializing the same Rust value twice
/// yields byte-identical text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A double-precision float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as an `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`: floats directly, integers widened.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The value's string contents, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's pairs, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Renders the value as canonical JSON text.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        crate::json::write_value(self, &mut out);
        out
    }

    /// Parses JSON text into a value.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input.
    pub fn parse_json(text: &str) -> Result<Value, Error> {
        crate::json::parse(text)
    }
}
