//! Canonical JSON encoding and a small recursive-descent parser.
//!
//! Floats are written with Rust's shortest round-trip formatting (`{:?}`), so
//! parse(write(v)) == v bit-for-bit for finite values. Non-finite floats are
//! written as the bare tokens `NaN`, `inf`, and `-inf` (a lenient superset of
//! JSON that the parser also accepts); simulation statistics never produce
//! them in practice, but the cache must not corrupt data if they appear.

use crate::{Error, Value};

pub(crate) fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (key, value)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(value, out);
            }
            out.push('}');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f.is_infinite() {
        out.push_str(if f > 0.0 { "inf" } else { "-inf" });
    } else {
        // `{:?}` is shortest-round-trip and always contains '.' or 'e', so
        // the parser can tell floats from integers.
        out.push_str(&format!("{f:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::Float(f64::INFINITY)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_keyword("inf") {
                return Ok(Value::Float(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::custom(format!("bad float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::custom(format!("bad integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::custom(format!("bad integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("hot\"spot\n".into())),
            ("ipc".into(), Value::Float(1.2345678901234567)),
            ("n".into(), Value::UInt(42)),
            ("d".into(), Value::Int(-7)),
            ("flag".into(), Value::Bool(true)),
            ("opt".into(), Value::Null),
            (
                "xs".into(),
                Value::Array(vec![Value::Float(0.1), Value::UInt(2)]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
        // Canonical: re-encoding is byte-identical.
        assert_eq!(parse(&text).unwrap().to_json(), text);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
