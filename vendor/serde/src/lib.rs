//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! serialization surface the workspace needs with the same *spelling* as
//! serde (`use serde::{Serialize, Deserialize}`, `#[derive(Serialize,
//! Deserialize)]`) but a much simpler model: both traits go through an owned
//! [`Value`] tree, and the crate ships its own canonical JSON encoder/decoder
//! (the role `serde_json` plays upstream).
//!
//! The encoding conventions match serde's defaults so data written by this
//! stand-in remains readable if the real crates are ever restored:
//!
//! * structs → JSON objects in field order,
//! * newtype structs → the inner value,
//! * unit enum variants → `"Variant"`,
//! * newtype/tuple/struct enum variants → `{"Variant": ...}` (externally
//!   tagged),
//! * `Option` → the value or `null`.
//!
//! JSON emission is canonical (field order preserved, shortest round-trip
//! float formatting), which the sweep subsystem relies on for
//! content-addressed cache keys.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

mod json;
mod value;

pub use value::Value;

/// Error produced by deserialization (and by JSON parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Serializes `value` to a canonical JSON string.
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_value().to_json()
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_json_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&Value::parse_json(s)?)
}

/// Looks up a field in an object's pair list (derive-macro support).
///
/// # Errors
///
/// Returns an error if the field is absent.
pub fn get_field<'v>(pairs: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Serialize implementations for std types
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected float, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array of length {LEN}, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serialize_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}
