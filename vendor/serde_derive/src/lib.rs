//! Derive macros for the vendored serde stand-in.
//!
//! The offline build environment has neither `syn` nor `quote`, so the input
//! item is parsed directly from the `proc_macro` token stream and the impl is
//! emitted as a string. The supported shapes are exactly what the workspace
//! derives on: non-generic structs (named, tuple/newtype, unit) and
//! non-generic enums whose variants are unit, tuple, or struct-like.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (the count).
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde_derive (vendored): generic types are not supported; derive on `{name}` by hand"
        );
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde_derive: malformed enum `{name}`"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other} {name}`"),
    }
}

/// Advances past leading `#[...]` attributes and a `pub`/`pub(...)`
/// visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Splits a group's stream at top-level commas (nested groups are opaque
/// token trees, so no depth tracking is needed).
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().expect("non-empty").push(tt),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Extracts field names from a `{ ... }` struct body: in each
/// comma-separated chunk, the identifier immediately before the first `:`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, got `{other:?}`"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got `{other:?}`"),
            };
            i += 1;
            let fields = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                None => Fields::Unit,
                Some(other) => {
                    panic!("serde_derive: unsupported tokens after variant `{name}`: `{other}`")
                }
            };
            Variant { name, fields }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `vec![a, b]` without relying on macros being nameable from generated
/// code: `::std::vec::Vec::from([a, b])`.
fn vec_from(items: &[String]) -> String {
    if items.is_empty() {
        "::std::vec::Vec::new()".to_string()
    } else {
        format!("::std::vec::Vec::from([{}])", items.join(", "))
    }
}

fn object_pairs(pairs: &[(String, String)]) -> String {
    let items: Vec<String> = pairs
        .iter()
        .map(|(key, expr)| format!("(::std::string::String::from(\"{key}\"), {expr})"))
        .collect();
    format!("::serde::Value::Object({})", vec_from(&items))
}

fn generate_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fields) => object_pairs(
                    &fields
                        .iter()
                        .map(|f| {
                            (
                                f.clone(),
                                format!("::serde::Serialize::to_value(&self.{f})"),
                            )
                        })
                        .collect::<Vec<_>>(),
                ),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array({})", vec_from(&items))
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => {},",
                            object_pairs(&[(
                                vname.clone(),
                                "::serde::Serialize::to_value(__f0)".to_string()
                            )])
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => {},",
                                binders.join(", "),
                                object_pairs(&[(
                                    vname.clone(),
                                    format!("::serde::Value::Array({})", vec_from(&items))
                                )])
                            )
                        }
                        Fields::Named(fields) => {
                            let inner = object_pairs(
                                &fields
                                    .iter()
                                    .map(|f| {
                                        (f.clone(), format!("::serde::Serialize::to_value({f})"))
                                    })
                                    .collect::<Vec<_>>(),
                            );
                            format!(
                                "{name}::{vname} {{ {} }} => {},",
                                fields.join(", "),
                                object_pairs(&[(vname.clone(), inner)])
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join("\n")))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_fields_constructor(
    type_and_variant: &str,
    fields: &[String],
    obj_binding: &str,
) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::get_field({obj_binding}, \"{f}\")?)?,"
            )
        })
        .collect();
    format!("{type_and_variant} {{ {} }}", inits.join("\n"))
}

fn tuple_constructor(type_and_variant: &str, n: usize, arr_binding: &str) -> String {
    let inits: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{arr_binding}[{i}])?"))
        .collect();
    format!("{type_and_variant}({})", inits.join(", "))
}

fn generate_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(fields) => format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                     ::std::result::Result::Ok({})",
                    named_fields_constructor(name, fields, "__obj")
                ),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => format!(
                    "let __arr = __v.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"{name}: expected array\"))?;\n\
                     if __arr.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             \"{name}: expected array of length {n}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({})",
                    tuple_constructor(name, *n, "__arr")
                ),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                let path = format!("{name}::{vname}");
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push(format!("\"{vname}\" => ::std::result::Result::Ok({path}),"))
                    }
                    Fields::Tuple(1) => tagged_arms.push(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({path}(\
                             ::serde::Deserialize::from_value(__content)?)),"
                    )),
                    Fields::Tuple(n) => tagged_arms.push(format!(
                        "\"{vname}\" => {{\n\
                             let __arr = __content.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"{path}: expected array\"))?;\n\
                             if __arr.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"{path}: expected array of length {n}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({})\n\
                         }}",
                        tuple_constructor(&path, *n, "__arr")
                    )),
                    Fields::Named(fields) => tagged_arms.push(format!(
                        "\"{vname}\" => {{\n\
                             let __obj = __content.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"{path}: expected object\"))?;\n\
                             ::std::result::Result::Ok({})\n\
                         }}",
                        named_fields_constructor(&path, fields, "__obj")
                    )),
                }
            }
            let body = format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                     return match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                     }};\n\
                 }}\n\
                 if let ::std::option::Option::Some(__pairs) = __v.as_object() {{\n\
                     if __pairs.len() == 1 {{\n\
                         let (__tag, __content) = &__pairs[0];\n\
                         return match __tag.as_str() {{\n\
                             {tagged}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                         }};\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\"{name}: bad enum encoding\"))",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
