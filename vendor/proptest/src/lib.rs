//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: `proptest!` with
//! an optional `#![proptest_config(...)]`, `any::<T>()` for primitives,
//! integer-range strategies, tuple strategies, `prop_map`, `prop_oneof!`,
//! `collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: inputs are generated from a fixed
//! deterministic seed derived from the test name (so failures reproduce), no
//! shrinking is performed, and `prop_assert*` panic immediately (which the
//! default test harness reports like any assertion failure).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Picks uniformly from several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec::Vec::from([
            $($crate::strategy::Strategy::boxed($strategy)),+
        ]))
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Inputs respect their range strategies.
        #[test]
        fn ranges_hold(x in 3u8..9, y in 10usize..=20, (a, b) in (0u32..5, 1i32..4)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!(a < 5);
            prop_assert!((1..4).contains(&b));
        }

        /// Mapped and boxed strategies compose.
        #[test]
        fn combinators_compose(v in crate::collection::vec(any::<u8>().prop_map(u32::from), 0..16)) {
            prop_assert!(v.len() < 16);
            prop_assert!(v.iter().all(|&x| x < 256));
        }

        /// Union picks only from its arms.
        #[test]
        fn oneof_picks_arms(x in prop_oneof![0u32..1, 10u32..11, 20u32..21]) {
            prop_assert!(x == 0 || x == 10 || x == 20);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strategy = (0u64..1000, 0u64..1000);
        let mut a = crate::test_runner::rng_for_test("det");
        let mut b = crate::test_runner::rng_for_test("det");
        for _ in 0..50 {
            assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
        }
    }
}
