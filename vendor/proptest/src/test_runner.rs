//! Test configuration and the deterministic per-test random source.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated input cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps simulator-heavy property
        // tests fast while still exercising a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator for a named test: the same test always sees the
/// same input sequence, so failures reproduce without a persistence file.
#[must_use]
pub fn rng_for_test(name: &str) -> StdRng {
    // FNV-1a over the test name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}
