//! Collection strategies.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for `Vec<T>` with a length drawn from `len`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn uniformly from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = if self.len.is_empty() {
            0
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
