//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// Generates values of an output type from a random source.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Picks uniformly among type-erased strategies (`prop_oneof!` support).
#[derive(Debug)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given options. Must be non-empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);
