//! Differential test layer for the allocation-free, skip-ahead engine.
//!
//! The fast engine ([`ltrf_sim::EngineKind::Fast`], the default) claims
//! bit-identical results to the straightforward reference tick loop
//! ([`ltrf_sim::EngineKind::Reference`]). This suite is the contract behind
//! that claim, extending the PR 3 GPU-vs-single-SM differential pattern:
//! every run is asserted equal under **exact `f64` equality** on every
//! `RunResult`/`GpuStats` field (not tolerance comparison — the engines must
//! perform the same floating-point operations in the same order), swept
//! across
//!
//! * all six register-file organizations,
//! * SM counts {1, 4, 16} (single-SM path, and the lock-step GPU over a
//!   shared L2/DRAM at two scales),
//! * a 32-member generated workload population, and
//! * the three checked-in `examples/traces/` workloads.

use ltrf_core::{
    run_experiment_with_engine, EngineKind, ExperimentConfig, Organization, RunResult,
};
use ltrf_trace::TraceWorkloadId;
use ltrf_workloads::{GeneratorConfig, Workload, WorkloadGenerator};

/// Population size: cycles every organization several times over diverse
/// register pressures, loop nests, and memory profiles.
const POPULATION: usize = 32;

/// The SM-count axis: the single-SM fast path plus two lock-step GPU scales.
const SM_COUNTS: [usize; 3] = [1, 4, 16];

/// Bounds trimmed for test wall-clock time while keeping the space diverse
/// (same bounds as the PR 3 differential suite).
fn test_bounds() -> GeneratorConfig {
    GeneratorConfig {
        min_regs: 12,
        max_regs: 96,
        max_outer_trips: 4,
        max_inner_trips: 10,
        max_body_alu: 10,
        max_body_loads: 4,
    }
}

/// Runs one workload under both engines and asserts exact equality of the
/// complete `RunResult` — including the full `GpuStats` provenance when the
/// experiment is multi-SM, so per-SM statistics and the shared L2/DRAM
/// counters are pinned too, not just the aggregate.
fn assert_engines_agree(workload: &Workload, config: &ExperimentConfig, seed: u64, label: &str) {
    let memory = workload.memory();
    let fast = run_experiment_with_engine(&workload.kernel, memory, seed, config, EngineKind::Fast)
        .unwrap_or_else(|e| panic!("{label}: fast engine failed: {e}"));
    let reference = run_experiment_with_engine(
        &workload.kernel,
        memory,
        seed,
        config,
        EngineKind::Reference,
    )
    .unwrap_or_else(|e| panic!("{label}: reference engine failed: {e}"));
    assert!(
        !fast.stats.truncated,
        "{label}: differential coverage requires completed runs"
    );
    assert_eq!(
        fast, reference,
        "{label}: fast engine diverged from the reference oracle"
    );
}

/// The generated-population sweep: organization and SM count both cycle with
/// the member index, so the first 18 members alone cover the full 6×3
/// organization × SM-count grid and the remaining members re-cover it on
/// different kernels.
#[test]
fn fast_engine_is_bit_identical_across_generated_population() {
    let population = WorkloadGenerator::population_with_config(0xD1FF, POPULATION, test_bounds());
    let organizations = Organization::all();
    for (i, workload) in population.iter().enumerate() {
        let org = organizations[i % organizations.len()];
        let sm_count = SM_COUNTS[(i / organizations.len()) % SM_COUNTS.len()];
        let config = ExperimentConfig::for_table2(org, 6).with_sm_count(sm_count);
        let seed = 1000 + i as u64;
        let label = format!("member {i} ({}, {org}, {sm_count} SMs)", workload.name());
        assert_engines_agree(workload, &config, seed, &label);
    }
}

/// The traced-workload sweep: each of the three checked-in example traces
/// runs under every organization, with the SM count cycling so every trace
/// sees every scale.
#[test]
fn fast_engine_is_bit_identical_across_example_traces() {
    let traces = [
        "divergent_loop.trace",
        "high_register_pressure.trace",
        "straight_line.trace",
    ];
    let organizations = Organization::all();
    for (t, name) in traces.iter().enumerate() {
        let path = format!(
            "{}/../../examples/traces/{name}",
            env!("CARGO_MANIFEST_DIR")
        );
        let workload = TraceWorkloadId::from_path(&path)
            .unwrap_or_else(|e| panic!("{name}: cannot read example trace: {e}"))
            .materialize()
            .unwrap_or_else(|e| panic!("{name}: cannot lower example trace: {e}"));
        for (o, &org) in organizations.iter().enumerate() {
            let sm_count = SM_COUNTS[(t + o) % SM_COUNTS.len()];
            let config = ExperimentConfig::for_table2(org, 6).with_sm_count(sm_count);
            let seed = 2000 + (t * organizations.len() + o) as u64;
            let label = format!("trace {name} ({org}, {sm_count} SMs)");
            assert_engines_agree(&workload, &config, seed, &label);
        }
    }
}

/// The default engine is the fast one, and the default-path results equal an
/// explicit `EngineKind::Fast` run — so every cached campaign artifact keeps
/// its meaning (and its content-addressed cache key) across the engine swap.
#[test]
fn default_engine_is_fast_and_reuses_existing_semantics() {
    assert_eq!(EngineKind::default(), EngineKind::Fast);
    let population = WorkloadGenerator::population_with_config(0xD1FF, 2, test_bounds());
    let workload = &population[0];
    let config = ExperimentConfig::for_table2(Organization::Ltrf, 6);
    let via_default =
        ltrf_core::run_experiment(&workload.kernel, workload.memory(), 5, &config).unwrap();
    let via_fast = run_experiment_with_engine(
        &workload.kernel,
        workload.memory(),
        5,
        &config,
        EngineKind::Fast,
    )
    .unwrap();
    assert_eq!(via_default, via_fast);
    // The engine choice is not cache-key material: the serialized config
    // carries no engine field.
    assert!(!config.cache_key_material().contains("engine"));
    let _: RunResult = via_default;
}
