//! Differential regression test: the whole-GPU engine at `sm_count == 1`
//! against the single-SM engine.
//!
//! PR 2 introduced `ltrf_sim::simulate_gpu` with the guarantee that a one-SM
//! GPU reproduces the validated single-SM path bit for bit (same residency
//! rule, same private hierarchy, statistics aggregation included). That
//! guarantee was originally checked by hand — one CSV comparison of `sweep
//! fig9` output before and after the change. This test automates it the way
//! VADL-style multi-path simulators do: a generated workload population wide
//! enough to hit every organization, loop shape, and memory profile, with
//! every member asserted *bit-identical* across the two paths (exact `f64`
//! equality, not tolerance comparison — the paths must take the same
//! floating-point operations in the same order).

use ltrf_core::{
    run_experiment, run_experiment_via_gpu, ExperimentConfig, Organization, RunResult,
};
use ltrf_workloads::{GeneratorConfig, WorkloadGenerator};

/// Population size: large enough to cycle every organization several times
/// over diverse register pressures, loop nests, and memory profiles.
const POPULATION: usize = 32;

/// Bounds trimmed for test wall-clock time while keeping the space diverse
/// (register pressures from insensitive to sensitive, both loop levels, all
/// memory profiles).
fn test_bounds() -> GeneratorConfig {
    GeneratorConfig {
        min_regs: 12,
        max_regs: 96,
        max_outer_trips: 4,
        max_inner_trips: 10,
        max_body_alu: 10,
        max_body_loads: 4,
    }
}

#[test]
fn gpu_engine_at_one_sm_is_bit_identical_to_the_single_sm_engine() {
    let population = WorkloadGenerator::population_with_config(0xD1FF, POPULATION, test_bounds());
    let organizations = Organization::all();
    for (i, workload) in population.iter().enumerate() {
        let org = organizations[i % organizations.len()];
        let config = ExperimentConfig::for_table2(org, 6);
        assert_eq!(config.sm_count, 1);
        let seed = 1000 + i as u64;
        let memory = workload.memory();

        let single = run_experiment(&workload.kernel, memory, seed, &config)
            .expect("single-SM path runs every generated member");
        let via_gpu = run_experiment_via_gpu(&workload.kernel, memory, seed, &config)
            .expect("GPU path runs every generated member");

        // The classic path records no GPU provenance; the forced path
        // always does, and its one-SM run must carry the very same
        // statistics.
        assert!(single.gpu.is_none());
        let gpu = via_gpu
            .gpu
            .as_ref()
            .unwrap_or_else(|| panic!("member {i}: forced GPU path must carry GpuStats"));
        assert_eq!(gpu.sm_count, 1, "member {i}");
        assert_eq!(
            gpu.per_sm.len(),
            1,
            "member {i}: one SM reports one per-SM entry"
        );
        assert_eq!(
            gpu.per_sm[0],
            single.stats,
            "member {i} ({}, {org}): the delegated SM's statistics drifted",
            workload.name()
        );

        // Bit-identical RunResults apart from the provenance field: every
        // aggregate statistic, the IPC, the power breakdown, and the cache
        // hit rate — all under exact equality.
        let flattened = RunResult {
            gpu: None,
            ..via_gpu.clone()
        };
        assert_eq!(
            flattened,
            single,
            "member {i} ({}, {org}): GPU path at sm_count=1 diverged from the single-SM engine",
            workload.name()
        );
    }
}
