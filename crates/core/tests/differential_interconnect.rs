//! Golden differential test: the multi-SM shared-memory path, pinned
//! exact-f64 against a committed fixture.
//!
//! The interconnect subsystem replaced the implicit modulo-sliced L2 access
//! with an explicit `Interconnect` + `AddressDecoder` pipeline whose `Ideal`
//! topology (the default) must be *bit-identical* to the pre-change path.
//! The fig9/fig12 golden CSVs only pin the single-SM path, which never
//! touches `SharedMemory`; this fixture pins the shared path itself: every
//! organization at 1, 4, and 16 SMs, under both engines, with the timing-
//! and contention-sensitive counters (IPC, cycles, instructions, L2
//! hits/misses, slice queue wait, DRAM traffic) recorded with exact `f64`
//! round-trip formatting.
//!
//! The committed fixture was blessed on the pre-interconnect tree, so a pass
//! here is a proof of bit-identity across the refactor, not a tautology.
//! Re-bless (only for an intentional behaviour change) with:
//!
//! ```text
//! LTRF_BLESS=1 cargo test -p ltrf-core --test differential_interconnect
//! ```

use std::path::PathBuf;

use ltrf_core::{run_experiment_via_gpu_with_engine, ExperimentConfig, Organization};
use ltrf_sim::EngineKind;
use ltrf_workloads::{GeneratorConfig, WorkloadGenerator};
use serde::Value;

/// Generated members per organization: two is enough to cover distinct loop
/// shapes and memory profiles without blowing up the 16-SM wall clock.
const MEMBERS: usize = 2;

const SM_COUNTS: [usize; 3] = [1, 4, 16];

/// Bounds trimmed for wall-clock time while keeping register pressure and
/// memory behaviour diverse (mirrors `differential_gpu.rs`).
fn test_bounds() -> GeneratorConfig {
    GeneratorConfig {
        min_regs: 12,
        max_regs: 96,
        max_outer_trips: 4,
        max_inner_trips: 10,
        max_body_alu: 10,
        max_body_loads: 4,
    }
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/shared-memory-pinned.json")
}

fn engine_label(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Fast => "fast",
        EngineKind::Reference => "reference",
    }
}

/// Runs the full grid and renders one canonical-JSON line per case, in a
/// fixed deterministic order.
fn observed_lines() -> Vec<String> {
    let population = WorkloadGenerator::population_with_config(0xD1FF, MEMBERS, test_bounds());
    let mut lines = Vec::new();
    for org in Organization::all() {
        for (member, workload) in population.iter().enumerate() {
            for sm_count in SM_COUNTS {
                for kind in [EngineKind::Fast, EngineKind::Reference] {
                    let config = ExperimentConfig::for_table2(*org, 6).with_sm_count(sm_count);
                    let seed = 7_000 + member as u64;
                    let result = run_experiment_via_gpu_with_engine(
                        &workload.kernel,
                        workload.memory(),
                        seed,
                        &config,
                        kind,
                    )
                    .expect("shared-memory path runs every member");
                    let gpu = result.gpu.as_ref().expect("forced GPU path carries stats");
                    let fields = vec![
                        ("org".to_string(), Value::Str(org.to_string())),
                        ("member".to_string(), Value::UInt(member as u64)),
                        ("sm_count".to_string(), Value::UInt(sm_count as u64)),
                        (
                            "engine".to_string(),
                            Value::Str(engine_label(kind).to_string()),
                        ),
                        ("ipc".to_string(), Value::Float(result.ipc)),
                        ("cycles".to_string(), Value::UInt(gpu.cycles)),
                        ("instructions".to_string(), Value::UInt(gpu.instructions)),
                        ("l2_hits".to_string(), Value::UInt(gpu.l2.hits)),
                        ("l2_misses".to_string(), Value::UInt(gpu.l2.misses)),
                        (
                            "l2_queue_wait_cycles".to_string(),
                            Value::UInt(gpu.l2_queue_wait_cycles),
                        ),
                        ("dram_requests".to_string(), Value::UInt(gpu.dram.requests)),
                        ("dram_row_hits".to_string(), Value::UInt(gpu.dram.row_hits)),
                        (
                            "dram_queue_wait_cycles".to_string(),
                            Value::UInt(gpu.dram.queue_wait_cycles),
                        ),
                    ];
                    lines.push(Value::Object(fields).to_json());
                }
            }
        }
    }
    lines
}

#[test]
fn shared_memory_path_matches_the_pinned_fixture() {
    let observed = observed_lines().join("\n") + "\n";
    let path = fixture_path();
    if std::env::var("LTRF_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &observed).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read the pinned fixture {} ({e}); bless it with LTRF_BLESS=1",
            path.display()
        )
    });
    let expected_lines: Vec<&str> = expected.lines().collect();
    let observed_lines: Vec<String> = observed.lines().map(str::to_string).collect();
    assert_eq!(
        expected_lines.len(),
        observed_lines.len(),
        "case count drifted from the pinned fixture"
    );
    for (i, (want, got)) in expected_lines.iter().zip(&observed_lines).enumerate() {
        assert_eq!(
            want, got,
            "case {i}: shared-memory timing diverged from the pre-interconnect fixture"
        );
    }
}
