//! Hardware and code-size overheads of LTRF (§4.3 of the paper).

use serde::{Deserialize, Serialize};

use ltrf_compiler::CompileStats;

use crate::wcb::WcbStorageCost;

/// The overhead accounting the paper reports in §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// WCB storage cost.
    pub wcb: WcbStorageCost,
    /// WCB storage as a fraction of the main register file.
    pub wcb_fraction_of_regfile: f64,
    /// Register-file-cache capacity as a fraction of the main register file.
    pub cache_fraction_of_regfile: f64,
    /// Estimated total area overhead of the added structures (WCB, cache,
    /// extra crossbar, allocation units, wider operand collectors) relative
    /// to the baseline register file.
    pub area_overhead: f64,
    /// Code-size overhead of the PREFETCH bit-vectors.
    pub code_size_overhead: f64,
}

/// Parameters of the overhead calculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadInputs {
    /// Warps per SM.
    pub warps: u64,
    /// Architectural registers per warp.
    pub regs_per_warp: u64,
    /// Registers per register-interval (cache banks).
    pub registers_per_interval: u64,
    /// Active warps holding cache partitions.
    pub active_warps: u64,
    /// Main register-file capacity, in bytes.
    pub regfile_bytes: u64,
    /// Register-file-cache capacity, in bytes.
    pub cache_bytes: u64,
}

impl Default for OverheadInputs {
    fn default() -> Self {
        OverheadInputs {
            warps: 64,
            regs_per_warp: 256,
            registers_per_interval: 16,
            active_warps: 8,
            regfile_bytes: 256 * 1024,
            cache_bytes: 16 * 1024,
        }
    }
}

/// Computes the overhead report for an SM configuration and (optionally) the
/// compile statistics of a representative kernel.
#[must_use]
pub fn overhead_report(inputs: &OverheadInputs, compile: Option<&CompileStats>) -> OverheadReport {
    let wcb = WcbStorageCost::compute(
        inputs.warps,
        inputs.regs_per_warp,
        inputs.registers_per_interval,
        inputs.active_warps,
    );
    let wcb_fraction = wcb.fraction_of_regfile(inputs.regfile_bytes);
    let cache_fraction = inputs.cache_bytes as f64 / inputs.regfile_bytes as f64;
    // Beyond the storage arrays, the narrow prefetch crossbar, the address
    // allocation units, the arbiter, and the extra operand-collector fields
    // add a few percent of the baseline register-file area. The paper's total
    // is 16%; storage accounts for ~11%, so peripheral logic is ~5%.
    let peripheral_overhead = 0.05;
    OverheadReport {
        wcb,
        wcb_fraction_of_regfile: wcb_fraction,
        cache_fraction_of_regfile: cache_fraction,
        area_overhead: wcb_fraction + cache_fraction + peripheral_overhead,
        code_size_overhead: compile.map_or(0.0, |c| c.code_size_overhead),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_matches_paper_ballpark() {
        let report = overhead_report(&OverheadInputs::default(), None);
        // WCB ≈ 5% of the 256 KB register file.
        assert!(report.wcb_fraction_of_regfile > 0.04 && report.wcb_fraction_of_regfile < 0.07);
        // Cache is 16 KB / 256 KB = 6.25%.
        assert!((report.cache_fraction_of_regfile - 0.0625).abs() < 1e-9);
        // Total area overhead lands near the paper's 16%.
        assert!(
            report.area_overhead > 0.12 && report.area_overhead < 0.20,
            "area overhead {}",
            report.area_overhead
        );
        assert_eq!(report.code_size_overhead, 0.0);
    }

    #[test]
    fn code_size_comes_from_compile_stats() {
        let stats = CompileStats {
            code_size_overhead: 0.07,
            ..CompileStats::default()
        };
        let report = overhead_report(&OverheadInputs::default(), Some(&stats));
        assert!((report.code_size_overhead - 0.07).abs() < 1e-9);
    }
}
