//! Register-file capacity required for maximum thread-level parallelism
//! (Table 1 of the paper).
//!
//! The paper recompiles its 35 benchmarks with `maxregcount` lifted and asks:
//! how large would the register file have to be for every workload to reach
//! the architecture's maximum warp count? This module performs the same
//! arithmetic over the synthetic suite's unconstrained per-thread register
//! demands.

use serde::Serialize;

/// A GPU architecture's register-related limits, as used in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct GpuArchitecture {
    /// Marketing name.
    pub name: &'static str,
    /// Baseline register-file capacity per SM, in bytes.
    pub baseline_regfile_bytes: u64,
    /// Maximum registers the compiler may allocate per thread.
    pub max_regs_per_thread: u16,
    /// Maximum resident warps per SM.
    pub max_warps: u32,
    /// Threads per warp.
    pub threads_per_warp: u32,
}

impl GpuArchitecture {
    /// The Fermi-like architecture of Table 1 (128 KB, 64 registers/thread).
    #[must_use]
    pub const fn fermi() -> Self {
        GpuArchitecture {
            name: "Fermi",
            baseline_regfile_bytes: 128 * 1024,
            max_regs_per_thread: 64,
            max_warps: 48,
            threads_per_warp: 32,
        }
    }

    /// The Maxwell-like architecture of Table 1 (256 KB, 256 registers/thread).
    #[must_use]
    pub const fn maxwell() -> Self {
        GpuArchitecture {
            name: "Maxwell",
            baseline_regfile_bytes: 256 * 1024,
            max_regs_per_thread: 256,
            max_warps: 64,
            threads_per_warp: 32,
        }
    }

    /// Register-file bytes needed for a kernel demanding `regs_per_thread`
    /// registers to reach the architecture's maximum warp occupancy.
    #[must_use]
    pub fn required_regfile_bytes(&self, regs_per_thread: u16) -> u64 {
        let regs = regs_per_thread.min(self.max_regs_per_thread) as u64;
        regs * 4 * self.threads_per_warp as u64 * self.max_warps as u64
    }

    /// Number of warps the baseline register file can hold for a kernel
    /// demanding `regs_per_thread` registers.
    #[must_use]
    pub fn occupancy_warps(&self, regs_per_thread: u16) -> u32 {
        let regs = regs_per_thread.min(self.max_regs_per_thread).max(1) as u64;
        let per_warp = regs * 4 * self.threads_per_warp as u64;
        ((self.baseline_regfile_bytes / per_warp) as u32).min(self.max_warps)
    }
}

/// The Table 1 row for one architecture over a workload suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CapacityRequirement {
    /// Architecture evaluated.
    pub architecture: GpuArchitecture,
    /// Average required register-file capacity across the suite, in bytes.
    pub average_bytes: u64,
    /// Maximum required capacity across the suite, in bytes.
    pub max_bytes: u64,
}

impl CapacityRequirement {
    /// Average requirement relative to the architecture's baseline capacity.
    #[must_use]
    pub fn average_factor(&self) -> f64 {
        self.average_bytes as f64 / self.architecture.baseline_regfile_bytes as f64
    }

    /// Maximum requirement relative to the architecture's baseline capacity.
    #[must_use]
    pub fn max_factor(&self) -> f64 {
        self.max_bytes as f64 / self.architecture.baseline_regfile_bytes as f64
    }
}

/// Computes the Table 1 row for `architecture` over per-thread register
/// demands of a workload suite.
///
/// Returns `None` if `register_demands` is empty.
#[must_use]
pub fn capacity_requirement(
    architecture: GpuArchitecture,
    register_demands: &[u16],
) -> Option<CapacityRequirement> {
    if register_demands.is_empty() {
        return None;
    }
    let required: Vec<u64> = register_demands
        .iter()
        .map(|&r| architecture.required_regfile_bytes(r))
        .collect();
    let sum: u64 = required.iter().sum();
    Some(CapacityRequirement {
        architecture,
        average_bytes: sum / required.len() as u64,
        max_bytes: *required.iter().max().expect("non-empty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_constants() {
        let fermi = GpuArchitecture::fermi();
        assert_eq!(fermi.baseline_regfile_bytes, 128 * 1024);
        assert_eq!(fermi.max_regs_per_thread, 64);
        let maxwell = GpuArchitecture::maxwell();
        assert_eq!(maxwell.baseline_regfile_bytes, 256 * 1024);
        assert_eq!(maxwell.max_regs_per_thread, 256);
    }

    #[test]
    fn required_capacity_scales_with_register_demand() {
        let maxwell = GpuArchitecture::maxwell();
        // 32 regs/thread × 4 B × 32 threads × 64 warps = 256 KB.
        assert_eq!(maxwell.required_regfile_bytes(32), 256 * 1024);
        assert_eq!(maxwell.required_regfile_bytes(64), 512 * 1024);
        // Demands above the ISA cap are clamped.
        assert_eq!(
            maxwell.required_regfile_bytes(255),
            maxwell.required_regfile_bytes(255)
        );
        assert_eq!(
            GpuArchitecture::fermi().required_regfile_bytes(200),
            GpuArchitecture::fermi().required_regfile_bytes(64)
        );
    }

    #[test]
    fn occupancy_is_capped_by_register_file_and_warp_limit() {
        let maxwell = GpuArchitecture::maxwell();
        assert_eq!(maxwell.occupancy_warps(32), 64);
        assert_eq!(maxwell.occupancy_warps(64), 32);
        assert_eq!(maxwell.occupancy_warps(128), 16);
        // Tiny kernels are capped by the warp limit, not the register file.
        assert_eq!(maxwell.occupancy_warps(8), 64);
    }

    #[test]
    fn table1_style_aggregation() {
        // A suite whose demands straddle the baseline capacity.
        let demands = [24, 32, 48, 64, 96];
        let row = capacity_requirement(GpuArchitecture::maxwell(), &demands).unwrap();
        assert!(row.average_factor() > 1.0, "average demand exceeds 256 KB");
        assert!(row.max_factor() >= row.average_factor());
        assert_eq!(
            row.max_bytes,
            GpuArchitecture::maxwell().required_regfile_bytes(96)
        );
        assert!(capacity_requirement(GpuArchitecture::fermi(), &[]).is_none());
    }
}
