//! Error type for the core LTRF library.

use std::fmt;

use ltrf_compiler::CompileError;

/// Errors produced while building organizations or running experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// Compiling the kernel for a software-managed organization failed.
    Compile(CompileError),
    /// An experiment was configured with an empty latency sweep or another
    /// parameter set that cannot produce a result.
    InvalidExperiment(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Compile(e) => write!(f, "compilation failed: {e}"),
            CoreError::InvalidExperiment(msg) => write!(f, "invalid experiment: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Compile(e) => Some(e),
            CoreError::InvalidExperiment(_) => None,
        }
    }
}

impl From<CompileError> for CoreError {
    fn from(value: CompileError) -> Self {
        CoreError::Compile(value)
    }
}
