//! Maximum tolerable register-file access latency (§6.3, Figure 11).
//!
//! The paper defines the *maximum tolerable register-file access latency* of
//! a design as the largest main-register-file latency (relative to the
//! baseline) that costs at most a given IPC loss (5% by default, with 1% and
//! 10% variants). This module sweeps the latency factor for an organization
//! and finds that point.

use serde::{Deserialize, Serialize};

use ltrf_isa::Kernel;
use ltrf_sim::MemoryBehavior;

use crate::runner::{run_experiment, ExperimentConfig};
use crate::{CoreError, Organization};

/// One point of a latency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySweepPoint {
    /// Main-register-file latency relative to the baseline.
    pub latency_factor: f64,
    /// Absolute IPC at this latency.
    pub ipc: f64,
    /// IPC normalized to the same organization at 1× latency.
    pub relative_ipc: f64,
}

/// Result of a latency sweep for one organization on one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySweep {
    /// The organization swept.
    pub organization: Organization,
    /// The sweep points, in increasing latency order.
    pub points: Vec<LatencySweepPoint>,
}

impl LatencySweep {
    /// Assembles a sweep from raw `(latency factor, IPC)` measurements,
    /// normalizing each point against the 1× factor's IPC. This is the one
    /// place that curve-to-tolerance assembly lives; every driver (the
    /// per-figure harness, the `sweep` CLI) goes through it.
    ///
    /// Returns `None` when no 1× point is present or its IPC is zero — the
    /// relative curve would be meaningless.
    #[must_use]
    pub fn from_ipc_points(organization: Organization, ipc_points: &[(f64, f64)]) -> Option<Self> {
        let reference = ipc_points
            .iter()
            .find(|(factor, _)| (*factor - 1.0).abs() < 1e-12)
            .map(|&(_, ipc)| ipc)
            .filter(|&ipc| ipc > 0.0)?;
        let mut points: Vec<LatencySweepPoint> = ipc_points
            .iter()
            .map(|&(latency_factor, ipc)| LatencySweepPoint {
                latency_factor,
                ipc,
                relative_ipc: ipc / reference,
            })
            .collect();
        points.sort_by(|a, b| {
            a.latency_factor
                .partial_cmp(&b.latency_factor)
                .expect("finite")
        });
        Some(LatencySweep {
            organization,
            points,
        })
    }

    /// The largest latency factor whose IPC loss does not exceed
    /// `allowed_loss` (e.g. `0.05` for the paper's 5% definition).
    ///
    /// Returns the smallest swept factor if even that already exceeds the
    /// loss budget.
    #[must_use]
    pub fn max_tolerable_latency(&self, allowed_loss: f64) -> f64 {
        let threshold = 1.0 - allowed_loss;
        let mut best = self.points.first().map(|p| p.latency_factor).unwrap_or(1.0);
        for p in &self.points {
            if p.relative_ipc >= threshold {
                best = best.max(p.latency_factor);
            }
        }
        best
    }
}

/// Sweeps the main-register-file latency factor for `organization` and
/// reports IPC at every point.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] if `latency_factors` is empty and
/// propagates compiler failures.
pub fn latency_sweep(
    kernel: &Kernel,
    memory: MemoryBehavior,
    seed: u64,
    organization: Organization,
    latency_factors: &[f64],
    base_config: &ExperimentConfig,
) -> Result<LatencySweep, CoreError> {
    if latency_factors.is_empty() {
        return Err(CoreError::InvalidExperiment(
            "latency sweep needs at least one latency factor".to_string(),
        ));
    }
    let measure = |factor: f64| -> Result<f64, CoreError> {
        let config = ExperimentConfig {
            organization,
            ..*base_config
        }
        .with_latency_factor(factor);
        Ok(run_experiment(kernel, memory, seed, &config)?.ipc)
    };
    let mut pairs = Vec::with_capacity(latency_factors.len() + 1);
    for &factor in latency_factors {
        pairs.push((factor, measure(factor)?));
    }
    // The curve is always normalized against the 1x point; measure it
    // separately when the caller's factor list does not include it.
    let had_unity = pairs.iter().any(|(f, _)| (*f - 1.0).abs() < 1e-12);
    if !had_unity {
        pairs.push((1.0, measure(1.0)?));
    }
    let mut sweep = LatencySweep::from_ipc_points(organization, &pairs).unwrap_or_else(|| {
        // Degenerate zero-IPC reference: keep absolute IPCs, report zero
        // relative IPC everywhere.
        let mut points: Vec<LatencySweepPoint> = pairs
            .iter()
            .map(|&(latency_factor, ipc)| LatencySweepPoint {
                latency_factor,
                ipc,
                relative_ipc: 0.0,
            })
            .collect();
        points.sort_by(|a, b| {
            a.latency_factor
                .partial_cmp(&b.latency_factor)
                .expect("finite")
        });
        LatencySweep {
            organization,
            points,
        }
    });
    if !had_unity {
        sweep
            .points
            .retain(|p| (p.latency_factor - 1.0).abs() >= 1e-12);
    }
    Ok(sweep)
}

/// The latency factors swept in the paper's Figures 11–14 (1× through 7×).
#[must_use]
pub fn paper_latency_factors() -> Vec<f64> {
    vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_isa::{ArchReg, KernelBuilder, LaunchConfig, Opcode};

    fn kernel() -> Kernel {
        let mut b = KernelBuilder::new("sweep-test", 24);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        for i in 0..8 {
            b.push(entry, Opcode::Mov, Some(ArchReg::new(i)), &[]);
        }
        b.jump(entry, body);
        b.push(
            body,
            Opcode::LoadGlobal,
            Some(ArchReg::new(10)),
            &[ArchReg::new(0)],
        );
        for i in 0..4 {
            b.push(
                body,
                Opcode::FFma,
                Some(ArchReg::new(11 + i)),
                &[ArchReg::new(10), ArchReg::new(i)],
            );
        }
        b.loop_branch(body, body, exit, 4);
        b.exit(exit);
        b.launch(LaunchConfig::new(8, 1, 0));
        b.build().unwrap()
    }

    #[test]
    fn sweep_is_sorted_and_relative_to_unity() {
        let k = kernel();
        let sweep = latency_sweep(
            &k,
            MemoryBehavior::cache_resident(),
            1,
            Organization::Baseline,
            &[4.0, 1.0, 7.0],
            &ExperimentConfig::new(Organization::Baseline),
        )
        .unwrap();
        assert_eq!(sweep.points.len(), 3);
        assert!((sweep.points[0].latency_factor - 1.0).abs() < 1e-9);
        assert!((sweep.points[0].relative_ipc - 1.0).abs() < 1e-9);
        assert!(sweep.points[2].relative_ipc <= sweep.points[0].relative_ipc);
    }

    #[test]
    fn ltrf_tolerates_more_latency_than_baseline() {
        let k = kernel();
        let factors = [1.0, 2.0, 4.0, 6.0];
        let base = latency_sweep(
            &k,
            MemoryBehavior::cache_resident(),
            2,
            Organization::Baseline,
            &factors,
            &ExperimentConfig::new(Organization::Baseline),
        )
        .unwrap();
        let ltrf = latency_sweep(
            &k,
            MemoryBehavior::cache_resident(),
            2,
            Organization::Ltrf,
            &factors,
            &ExperimentConfig::new(Organization::Ltrf),
        )
        .unwrap();
        let bl_tol = base.max_tolerable_latency(0.05);
        let ltrf_tol = ltrf.max_tolerable_latency(0.05);
        assert!(
            ltrf_tol >= bl_tol,
            "LTRF ({ltrf_tol}) must tolerate at least as much latency as BL ({bl_tol})"
        );
    }

    #[test]
    fn empty_sweep_is_rejected() {
        let k = kernel();
        let err = latency_sweep(
            &k,
            MemoryBehavior::cache_resident(),
            1,
            Organization::Baseline,
            &[],
            &ExperimentConfig::new(Organization::Baseline),
        );
        assert!(matches!(err, Err(CoreError::InvalidExperiment(_))));
    }

    #[test]
    fn tolerance_with_looser_budgets_is_monotone() {
        let sweep = LatencySweep {
            organization: Organization::Ltrf,
            points: vec![
                LatencySweepPoint {
                    latency_factor: 1.0,
                    ipc: 1.0,
                    relative_ipc: 1.0,
                },
                LatencySweepPoint {
                    latency_factor: 3.0,
                    ipc: 0.97,
                    relative_ipc: 0.97,
                },
                LatencySweepPoint {
                    latency_factor: 5.0,
                    ipc: 0.93,
                    relative_ipc: 0.93,
                },
                LatencySweepPoint {
                    latency_factor: 7.0,
                    ipc: 0.85,
                    relative_ipc: 0.85,
                },
            ],
        };
        let strict = sweep.max_tolerable_latency(0.01);
        let default = sweep.max_tolerable_latency(0.05);
        let loose = sweep.max_tolerable_latency(0.10);
        assert!(strict <= default && default <= loose);
        assert!((default - 3.0).abs() < 1e-9);
        assert!((loose - 5.0).abs() < 1e-9);
        assert_eq!(paper_latency_factors().len(), 7);
    }
}
