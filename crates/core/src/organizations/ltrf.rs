//! The Latency-Tolerant Register File (LTRF and LTRF+).
//!
//! LTRF is a two-level register file: a small, fast, partitioned register
//! cache in front of a large, slow main register file (MRF). The compiler
//! partitions each kernel into *register-intervals* whose working-set fits
//! one warp's cache partition; at the entry of every interval a PREFETCH
//! operation bulk-loads that working-set from the MRF, and all register
//! accesses inside the interval are served by the cache. When the two-level
//! scheduler deactivates a warp, its cached registers are written back and
//! its cache banks are released; reactivation refetches the working-set.
//!
//! LTRF+ additionally tracks operand liveness (the dead-operand bits produced
//! by the compiler's liveness pass): dead registers are neither written back
//! on deactivation nor refetched on activation — only cache space is
//! allocated for them.

use ltrf_compiler::CompiledKernel;
use ltrf_isa::{ArchReg, BlockId, RegSet};
use ltrf_sim::{BankArbiter, Cycle, RegFileTiming, RegisterFileModel, WarpId};
use ltrf_tech::AccessCounts;

use crate::address_alloc::AllocationQueue;
use crate::wcb::WarpControlBlock;

/// Parameters of the LTRF hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LtrfParams {
    /// Registers per register-interval — also the number of register-cache
    /// banks and the size of one warp's cache partition (default 16).
    pub registers_per_interval: usize,
    /// Warps that hold register-cache partitions concurrently (default 8).
    pub active_warps: usize,
    /// Whether operand liveness is honoured (LTRF+).
    pub liveness_aware: bool,
}

impl Default for LtrfParams {
    fn default() -> Self {
        LtrfParams {
            registers_per_interval: 16,
            active_warps: 8,
            liveness_aware: false,
        }
    }
}

impl LtrfParams {
    /// Returns parameters for the liveness-aware variant (LTRF+).
    #[must_use]
    pub const fn plus() -> Self {
        LtrfParams {
            registers_per_interval: 16,
            active_warps: 8,
            liveness_aware: true,
        }
    }
}

#[derive(Debug)]
struct LtrfWarpState {
    wcb: WarpControlBlock,
    banks: AllocationQueue,
    current_interval: Option<ltrf_compiler::IntervalId>,
    /// Registers written since the warp last synchronised with the MRF
    /// (needed so write-backs only move data that could have changed).
    dirty: RegSet,
}

impl LtrfWarpState {
    fn new(banks: usize) -> Self {
        LtrfWarpState {
            wcb: WarpControlBlock::new(),
            banks: AllocationQueue::new(banks),
            current_interval: None,
            dirty: RegSet::new(),
        }
    }
}

/// The LTRF / LTRF+ register-file organization.
#[derive(Debug)]
pub struct LtrfRegisterFile {
    compiled: CompiledKernel,
    params: LtrfParams,
    timing: RegFileTiming,
    mrf: BankArbiter,
    cache: BankArbiter,
    warps: Vec<LtrfWarpState>,
    counts: AccessCounts,
    cache_hits: u64,
    cache_misses: u64,
    prefetch_stalls: Cycle,
    name: String,
}

impl LtrfRegisterFile {
    /// Creates an LTRF register file for a compiled kernel.
    #[must_use]
    pub fn new(compiled: CompiledKernel, timing: RegFileTiming, params: LtrfParams) -> Self {
        let name = if params.liveness_aware {
            "LTRF+"
        } else {
            "LTRF"
        };
        LtrfRegisterFile {
            mrf: BankArbiter::new(timing.mrf_banks, timing.mrf_latency()),
            cache: BankArbiter::new(params.registers_per_interval.max(1), timing.rfc_latency),
            compiled,
            params,
            timing,
            warps: Vec::new(),
            counts: AccessCounts::default(),
            cache_hits: 0,
            cache_misses: 0,
            prefetch_stalls: 0,
            name: name.to_string(),
        }
    }

    /// Overrides the reported name (used for the LTRF-with-strands
    /// comparison point so reports can distinguish it).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The parameters this organization was built with.
    #[must_use]
    pub const fn params(&self) -> LtrfParams {
        self.params
    }

    /// The compiled kernel driving PREFETCH placement.
    #[must_use]
    pub fn compiled(&self) -> &CompiledKernel {
        &self.compiled
    }

    fn ensure_warp(&mut self, warp: WarpId) {
        while self.warps.len() <= warp.index() {
            self.warps.push(LtrfWarpState::new(
                self.params.registers_per_interval.max(1),
            ));
        }
    }

    fn mrf_bank(&self, warp: WarpId, reg: ArchReg) -> usize {
        (reg.index() + warp.index()) % self.timing.mrf_banks.max(1)
    }

    /// Reads `fetch` from the MRF into the cache. Returns the cycle at which
    /// the last register arrives in the cache.
    fn prefetch_registers(&mut self, warp: WarpId, fetch: &RegSet, now: Cycle) -> Cycle {
        if fetch.is_empty() {
            return now;
        }
        self.counts.mrf_reads += fetch.len() as u64;
        self.counts.rfc_writes += fetch.len() as u64;
        let mut ready = now;
        for reg in fetch.iter() {
            let bank = self.mrf_bank(warp, reg);
            ready = ready.max(self.mrf.access(bank, now));
        }
        ready + self.timing.prefetch_crossbar_latency
    }

    /// Writes `set` back from the cache to the MRF (buffered through the
    /// MRF's write ports; the warp does not wait for it and it does not
    /// contend with present-time prefetch reads).
    fn write_back(&mut self, set: &RegSet, _now: Cycle) {
        if set.is_empty() {
            return;
        }
        self.counts.rfc_reads += set.len() as u64;
        self.counts.mrf_writes += set.len() as u64;
    }

    /// Allocates cache banks for `set` in the warp's partition and fills the
    /// WCB address table.
    fn map_into_cache(&mut self, warp: WarpId, set: &RegSet) {
        let state = &mut self.warps[warp.index()];
        for reg in set.iter() {
            if state.wcb.is_cached(reg) {
                continue;
            }
            if let Some(bank) = state.banks.allocate() {
                state.wcb.map_register(reg, bank);
            }
        }
    }

    /// Releases the cache banks of `set`.
    fn unmap_from_cache(&mut self, warp: WarpId, set: &RegSet) {
        let state = &mut self.warps[warp.index()];
        for reg in set.iter() {
            if let Some(bank) = state.wcb.unmap_register(reg) {
                state.banks.release(bank);
            }
        }
    }

    /// Registers of `set` that actually need to move between the MRF and the
    /// cache, honouring liveness for LTRF+.
    fn movable(&self, warp: WarpId, set: &RegSet) -> RegSet {
        if self.params.liveness_aware {
            set.intersection(&self.warps[warp.index()].wcb.live_registers())
        } else {
            *set
        }
    }
}

impl RegisterFileModel for LtrfRegisterFile {
    fn name(&self) -> &str {
        &self.name
    }

    fn warp_activated(&mut self, warp: WarpId, block: BlockId, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        let interval = self.compiled.partition.interval_of(block);
        let working_set = self.compiled.partition.interval(interval).working_set;
        self.counts.wcb_accesses += 1;
        self.warps[warp.index()].current_interval = Some(interval);
        self.map_into_cache(warp, &working_set);
        let fetch = self.movable(warp, &working_set);
        let ready = self.prefetch_registers(warp, &fetch, now);
        self.prefetch_stalls += ready.saturating_sub(now);
        ready
    }

    fn warp_deactivated(&mut self, warp: WarpId, now: Cycle) {
        self.ensure_warp(warp);
        let cached = self.warps[warp.index()].wcb.cached_registers();
        let dirty = self.warps[warp.index()].dirty.intersection(&cached);
        let to_write = self.movable(warp, &dirty);
        self.write_back(&to_write, now);
        let state = &mut self.warps[warp.index()];
        state.wcb.unmap_all();
        state.banks.release_all();
        state.dirty.clear();
    }

    fn block_entered(&mut self, warp: WarpId, block: BlockId, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        let interval = self.compiled.partition.interval_of(block);
        if self.warps[warp.index()].current_interval == Some(interval) {
            return now;
        }
        // PREFETCH: write back what leaves the cache, fetch what enters it.
        let new_ws = self.compiled.partition.interval(interval).working_set;
        let old_cached = self.warps[warp.index()].wcb.cached_registers();
        let leaving = old_cached.difference(&new_ws);
        let entering = new_ws.difference(&old_cached);
        let dirty_leaving = self.warps[warp.index()].dirty.intersection(&leaving);
        let to_write = self.movable(warp, &dirty_leaving);
        self.write_back(&to_write, now);
        self.unmap_from_cache(warp, &leaving);
        self.map_into_cache(warp, &new_ws);
        let fetch = self.movable(warp, &entering);
        let ready = self.prefetch_registers(warp, &fetch, now);
        let state = &mut self.warps[warp.index()];
        state.current_interval = Some(interval);
        state.dirty = state.dirty.intersection(&new_ws);
        self.counts.wcb_accesses += 1;
        self.prefetch_stalls += ready.saturating_sub(now);
        ready
    }

    fn read_operands(&mut self, warp: WarpId, regs: &RegSet, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        if regs.is_empty() {
            return now;
        }
        self.counts.wcb_accesses += 1;
        let start = now + self.timing.wcb_latency;
        let mut ready = start;
        for reg in regs.iter() {
            let bank = self.warps[warp.index()].wcb.bank_of(reg);
            match bank {
                Some(bank) => {
                    self.cache_hits += 1;
                    self.counts.rfc_reads += 1;
                    ready = ready.max(self.cache.access(bank as usize, start));
                }
                None => {
                    // Should not happen when the partition covers the kernel;
                    // fall back to a direct MRF access so results stay sound.
                    self.cache_misses += 1;
                    self.counts.mrf_reads += 1;
                    let mrf_bank = self.mrf_bank(warp, reg);
                    ready = ready.max(self.mrf.access(mrf_bank, start));
                }
            }
        }
        ready
    }

    fn write_register(&mut self, warp: WarpId, reg: ArchReg, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        self.counts.rfc_writes += 1;
        if !self.warps[warp.index()].wcb.is_cached(reg) {
            // Writes allocate: the register belongs to the current working
            // set, so a partition slot is guaranteed to be available.
            self.map_into_cache(warp, &RegSet::from_iter([reg]));
        }
        let state = &mut self.warps[warp.index()];
        state.wcb.mark_live(reg);
        state.dirty.insert(reg);
        // Result write-back can arrive far in the future (loads); it uses the
        // cache banks' write ports and does not block present-time reads.
        now + self.timing.rfc_latency
    }

    fn operands_dead(&mut self, warp: WarpId, dying: &RegSet) {
        if !self.params.liveness_aware {
            return;
        }
        self.ensure_warp(warp);
        self.warps[warp.index()].wcb.mark_dead(dying);
    }

    fn access_counts(&self) -> AccessCounts {
        self.counts
    }

    fn register_cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }

    fn prefetch_stall_cycles(&self) -> Cycle {
        self.prefetch_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_compiler::{compile, CompilerOptions};
    use ltrf_isa::{straight_line_kernel, KernelBuilder, Opcode};

    fn compiled_straight(regs: u16, insts: usize) -> CompiledKernel {
        let kernel = straight_line_kernel("k", regs, insts);
        compile(&kernel, &CompilerOptions::default()).unwrap()
    }

    fn regs_of(ids: &[u8]) -> RegSet {
        ids.iter().map(|&i| ArchReg::new(i)).collect()
    }

    #[test]
    fn activation_prefetches_the_entry_working_set() {
        let compiled = compiled_straight(8, 40);
        let timing = RegFileTiming::default().with_latency_factor(6.3);
        let mut rf = LtrfRegisterFile::new(compiled, timing, LtrfParams::default());
        let ready = rf.warp_activated(WarpId(0), BlockId(0), 0);
        assert!(ready > 0, "prefetch takes time");
        assert_eq!(rf.access_counts().mrf_reads, 8);
        assert_eq!(rf.access_counts().rfc_writes, 8);
        assert!(rf.prefetch_stall_cycles() > 0);
    }

    #[test]
    fn reads_inside_an_interval_hit_the_cache() {
        let compiled = compiled_straight(8, 40);
        let timing = RegFileTiming::default().with_latency_factor(6.3);
        let mut rf = LtrfRegisterFile::new(compiled, timing, LtrfParams::default());
        let ready = rf.warp_activated(WarpId(0), BlockId(0), 0);
        let read_done = rf.read_operands(WarpId(0), &regs_of(&[0, 1]), ready);
        // WCB lookup (1) + cache access (1): far faster than the 13-cycle MRF.
        assert!(
            read_done - ready <= 3,
            "cache read took {}",
            read_done - ready
        );
        assert_eq!(rf.register_cache_hit_rate(), Some(1.0));
    }

    #[test]
    fn crossing_an_interval_boundary_triggers_a_prefetch() {
        // 32 registers with a 16-register budget: at least two intervals.
        let compiled = compiled_straight(32, 64);
        assert!(compiled.partition.interval_count() >= 2);
        let timing = RegFileTiming::default().with_latency_factor(6.3);
        let mut rf = LtrfRegisterFile::new(compiled.clone(), timing, LtrfParams::default());
        let t0 = rf.warp_activated(WarpId(0), BlockId(0), 0);
        let reads_before = rf.access_counts().mrf_reads;
        // Find a block in a different interval than the entry block.
        let entry_interval = compiled.partition.interval_of(BlockId(0));
        let other_block = compiled
            .kernel
            .cfg
            .blocks()
            .map(|b| b.id())
            .find(|&b| compiled.partition.interval_of(b) != entry_interval)
            .expect("second interval exists");
        let t1 = rf.block_entered(WarpId(0), other_block, t0);
        assert!(t1 > t0, "PREFETCH stalls the warp");
        assert!(rf.access_counts().mrf_reads > reads_before);
        // Re-entering a block of the same interval is free.
        assert_eq!(rf.block_entered(WarpId(0), other_block, t1), t1);
    }

    #[test]
    fn deactivation_writes_back_only_dirty_registers() {
        let compiled = compiled_straight(8, 40);
        let timing = RegFileTiming::default();
        let mut rf = LtrfRegisterFile::new(compiled, timing, LtrfParams::default());
        let t0 = rf.warp_activated(WarpId(0), BlockId(0), 0);
        let _ = rf.write_register(WarpId(0), ArchReg::new(3), t0);
        rf.warp_deactivated(WarpId(0), t0 + 10);
        assert_eq!(
            rf.access_counts().mrf_writes,
            1,
            "only the written register goes back to the MRF"
        );
    }

    #[test]
    fn ltrf_plus_skips_dead_registers() {
        let compiled = compiled_straight(8, 40);
        let timing = RegFileTiming::default().with_latency_factor(6.3);
        // LTRF+ with nothing live yet: activation fetches nothing.
        let mut plus = LtrfRegisterFile::new(compiled.clone(), timing, LtrfParams::plus());
        let ready = plus.warp_activated(WarpId(0), BlockId(0), 0);
        assert_eq!(ready, 0, "no live registers, nothing to fetch");
        assert_eq!(plus.access_counts().mrf_reads, 0);
        // Base LTRF fetches the full working set.
        let mut base = LtrfRegisterFile::new(compiled, timing, LtrfParams::default());
        let _ = base.warp_activated(WarpId(0), BlockId(0), 0);
        assert_eq!(base.access_counts().mrf_reads, 8);
    }

    #[test]
    fn ltrf_plus_liveness_reduces_writebacks() {
        let compiled = compiled_straight(8, 40);
        let timing = RegFileTiming::default();
        let mut rf = LtrfRegisterFile::new(compiled, timing, LtrfParams::plus());
        let t0 = rf.warp_activated(WarpId(0), BlockId(0), 0);
        let _ = rf.write_register(WarpId(0), ArchReg::new(1), t0);
        let _ = rf.write_register(WarpId(0), ArchReg::new(2), t0 + 1);
        // r1 dies after its last read.
        rf.operands_dead(WarpId(0), &regs_of(&[1]));
        rf.warp_deactivated(WarpId(0), t0 + 10);
        assert_eq!(
            rf.access_counts().mrf_writes,
            1,
            "the dead register is not written back"
        );
        assert_eq!(rf.name(), "LTRF+");
    }

    #[test]
    fn loop_kernel_prefetches_once_for_the_whole_loop() {
        // A loop whose working set fits one interval: executing many
        // iterations must not add MRF traffic beyond the initial prefetch.
        let mut b = KernelBuilder::new("loop", 8);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.push(entry, Opcode::Mov, Some(ArchReg::new(0)), &[]);
        b.jump(entry, body);
        b.push(
            body,
            Opcode::FAlu,
            Some(ArchReg::new(1)),
            &[ArchReg::new(0)],
        );
        b.loop_branch(body, body, exit, 50);
        b.exit(exit);
        let kernel = b.build().unwrap();
        let compiled = compile(&kernel, &CompilerOptions::default()).unwrap();
        assert_eq!(
            compiled.partition.interval_count(),
            1,
            "whole loop fits one interval"
        );
        let mut rf =
            LtrfRegisterFile::new(compiled, RegFileTiming::default(), LtrfParams::default());
        let t = rf.warp_activated(WarpId(0), BlockId(0), 0);
        let initial_mrf = rf.access_counts().mrf_total();
        let mut now = t;
        for _ in 0..50 {
            now = rf.block_entered(WarpId(0), BlockId(1), now);
            now = rf.read_operands(WarpId(0), &regs_of(&[0]), now);
            now = rf.write_register(WarpId(0), ArchReg::new(1), now);
        }
        assert_eq!(
            rf.access_counts().mrf_total(),
            initial_mrf,
            "no MRF traffic inside the interval"
        );
        assert_eq!(rf.register_cache_hit_rate(), Some(1.0));
    }
}
