//! The register-file organizations compared in the paper.
//!
//! | Name | Source | Behaviour |
//! |------|--------|-----------|
//! | `BL` | [`ltrf_sim::DirectRegisterFile`] | conventional non-cached register file |
//! | `RFC` | [`RfcRegisterFile`] | demand-driven hardware register cache |
//! | `SHRF` | [`ShrfRegisterFile`] | compile-time managed hierarchy over strands |
//! | `LTRF` | [`LtrfRegisterFile`] | register-interval prefetching (this paper) |
//! | `LTRF+` | [`LtrfRegisterFile`] with [`LtrfParams::plus`] | LTRF plus operand-liveness awareness |
//! | `Ideal` | [`ltrf_sim::IdealRegisterFile`] | 8× capacity at baseline latency |

mod ltrf;
mod rfc;
mod shrf;

pub use ltrf::{LtrfParams, LtrfRegisterFile};
pub use rfc::RfcRegisterFile;
pub use shrf::ShrfRegisterFile;

use ltrf_compiler::{compile, CompilerOptions, PrefetchSubgraphKind};
use ltrf_isa::Kernel;
use ltrf_sim::{DirectRegisterFile, IdealRegisterFile, RegFileTiming, RegisterFileModel};

use crate::error::CoreError;

/// The register-file organizations evaluated in the paper.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Organization {
    /// Conventional non-cached register file (`BL`).
    Baseline,
    /// Hardware register-file cache without prefetching.
    Rfc,
    /// Software-managed hierarchical register file over strands.
    Shrf,
    /// LTRF with register-interval prefetching.
    Ltrf,
    /// LTRF with operand-liveness awareness.
    LtrfPlus,
    /// LTRF whose PREFETCH subgraphs are strands instead of
    /// register-intervals (the §6.6 ablation).
    LtrfStrand,
    /// Ideal register file: any capacity at baseline latency.
    Ideal,
}

impl Organization {
    /// All organizations, in the order the paper's figures list them.
    #[must_use]
    pub const fn all() -> &'static [Organization] {
        &[
            Organization::Baseline,
            Organization::Rfc,
            Organization::Shrf,
            Organization::Ltrf,
            Organization::LtrfPlus,
            Organization::LtrfStrand,
            Organization::Ideal,
        ]
    }

    /// Display label used in reports and figures.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Organization::Baseline => "BL",
            Organization::Rfc => "RFC",
            Organization::Shrf => "SHRF",
            Organization::Ltrf => "LTRF",
            Organization::LtrfPlus => "LTRF+",
            Organization::LtrfStrand => "LTRF (strand)",
            Organization::Ideal => "Ideal",
        }
    }

    /// Returns `true` if this organization needs the kernel to be compiled
    /// with prefetch subgraphs.
    #[must_use]
    pub const fn needs_compilation(self) -> bool {
        matches!(
            self,
            Organization::Shrf
                | Organization::Ltrf
                | Organization::LtrfPlus
                | Organization::LtrfStrand
        )
    }

    /// The prefetch-subgraph kind this organization compiles with, if any.
    #[must_use]
    pub const fn subgraph_kind(self) -> Option<PrefetchSubgraphKind> {
        match self {
            Organization::Ltrf | Organization::LtrfPlus => {
                Some(PrefetchSubgraphKind::RegisterInterval)
            }
            Organization::Shrf | Organization::LtrfStrand => Some(PrefetchSubgraphKind::Strand),
            _ => None,
        }
    }
}

impl std::fmt::Display for Organization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The kernel to simulate plus the register-file model to simulate it with.
///
/// Organizations that rely on compiler support run the *compiled* kernel
/// (whose basic blocks may have been split), so the kernel and the model are
/// built together.
pub struct BuiltOrganization {
    /// The kernel the simulator must execute.
    pub kernel: Kernel,
    /// The register-file model implementing the organization.
    pub model: Box<dyn RegisterFileModel>,
}

impl std::fmt::Debug for BuiltOrganization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltOrganization")
            .field("kernel", &self.kernel.name())
            .field("model", &self.model.name())
            .finish()
    }
}

/// Compiles `kernel` (when needed) and instantiates the register-file model
/// for `organization`.
///
/// # Errors
///
/// Propagates compiler errors for the organizations that need compilation
/// (for example, a register-interval budget smaller than one instruction's
/// operand count).
pub fn build_organization(
    organization: Organization,
    kernel: &Kernel,
    timing: RegFileTiming,
    params: LtrfParams,
    rfc_entries_per_warp: usize,
) -> Result<BuiltOrganization, CoreError> {
    let (kernel, mut models) = build_organization_fleet(
        organization,
        kernel,
        timing,
        params,
        rfc_entries_per_warp,
        1,
    )?;
    Ok(BuiltOrganization {
        kernel,
        model: models.pop().expect("fleet of one"),
    })
}

/// Like [`build_organization`], but produces `count` independent model
/// instances over a *single* compilation. Multi-SM simulations need one
/// model per SM; compiling the identical kernel once per SM would repeat
/// the same deterministic work `count` times.
///
/// Returns the kernel the simulator must execute (compiled when the
/// organization needs it) and the models, all equivalent and fresh.
///
/// # Errors
///
/// Propagates compiler errors exactly like [`build_organization`].
#[allow(clippy::type_complexity)]
pub fn build_organization_fleet(
    organization: Organization,
    kernel: &Kernel,
    timing: RegFileTiming,
    params: LtrfParams,
    rfc_entries_per_warp: usize,
    count: usize,
) -> Result<(Kernel, Vec<Box<dyn RegisterFileModel>>), CoreError> {
    let count = count.max(1);
    // Compile once for the organizations that need it.
    let compiled = match organization {
        Organization::Shrf | Organization::LtrfStrand => {
            let options = CompilerOptions {
                max_registers_per_interval: params.registers_per_interval,
                subgraph_kind: PrefetchSubgraphKind::Strand,
                reduce_intervals: false,
                annotate_liveness: true,
            };
            Some(compile(kernel, &options)?)
        }
        Organization::Ltrf | Organization::LtrfPlus => {
            let options =
                CompilerOptions::default().with_max_registers(params.registers_per_interval);
            Some(compile(kernel, &options)?)
        }
        Organization::Baseline | Organization::Ideal | Organization::Rfc => None,
    };
    let executed_kernel = compiled
        .as_ref()
        .map_or_else(|| kernel.clone(), |c| c.kernel.clone());
    let mut models: Vec<Box<dyn RegisterFileModel>> = Vec::with_capacity(count);
    for _ in 0..count {
        let model: Box<dyn RegisterFileModel> = match organization {
            Organization::Baseline => Box::new(DirectRegisterFile::new(timing)),
            Organization::Ideal => Box::new(IdealRegisterFile::new(timing)),
            Organization::Rfc => Box::new(RfcRegisterFile::new(timing, rfc_entries_per_warp)),
            Organization::Shrf => Box::new(ShrfRegisterFile::new(
                compiled.clone().expect("SHRF compiles"),
                timing,
            )),
            Organization::Ltrf | Organization::LtrfPlus => {
                let p = LtrfParams {
                    liveness_aware: organization == Organization::LtrfPlus,
                    ..params
                };
                Box::new(LtrfRegisterFile::new(
                    compiled.clone().expect("LTRF compiles"),
                    timing,
                    p,
                ))
            }
            Organization::LtrfStrand => {
                let p = LtrfParams {
                    liveness_aware: false,
                    ..params
                };
                Box::new(
                    LtrfRegisterFile::new(compiled.clone().expect("strands compile"), timing, p)
                        .with_name("LTRF (strand)"),
                )
            }
        };
        models.push(model);
    }
    Ok((executed_kernel, models))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_isa::straight_line_kernel;

    #[test]
    fn labels_and_metadata() {
        assert_eq!(Organization::all().len(), 7);
        assert_eq!(Organization::Ltrf.label(), "LTRF");
        assert_eq!(Organization::LtrfPlus.to_string(), "LTRF+");
        assert!(Organization::Ltrf.needs_compilation());
        assert!(!Organization::Baseline.needs_compilation());
        assert_eq!(
            Organization::LtrfStrand.subgraph_kind(),
            Some(PrefetchSubgraphKind::Strand)
        );
        assert_eq!(Organization::Ideal.subgraph_kind(), None);
    }

    #[test]
    fn build_every_organization() {
        let kernel = straight_line_kernel("k", 24, 60);
        for &org in Organization::all() {
            let built = build_organization(
                org,
                &kernel,
                RegFileTiming::default(),
                LtrfParams::default(),
                16,
            )
            .unwrap();
            assert_eq!(built.model.name(), org.label());
            assert!(built.kernel.static_instruction_count() >= 60);
        }
    }

    #[test]
    fn compiled_organizations_run_the_split_kernel() {
        // 48 registers with a 16-register budget: splitting is guaranteed.
        let kernel = straight_line_kernel("k", 48, 96);
        let built = build_organization(
            Organization::Ltrf,
            &kernel,
            RegFileTiming::default(),
            LtrfParams::default(),
            16,
        )
        .unwrap();
        assert!(built.kernel.cfg.block_count() > kernel.cfg.block_count());
    }

    #[test]
    fn impossible_budget_propagates_an_error() {
        let kernel = straight_line_kernel("k", 24, 60);
        let params = LtrfParams {
            registers_per_interval: 1,
            ..LtrfParams::default()
        };
        let err = build_organization(
            Organization::Ltrf,
            &kernel,
            RegFileTiming::default(),
            params,
            16,
        );
        assert!(err.is_err());
    }
}
