//! The hardware register-file cache (RFC) comparison point.
//!
//! This models the demand-driven register cache the paper compares against: a
//! small per-warp cache that captures recently produced and consumed
//! registers, backed by the main register file. There is no prefetching and
//! no compiler involvement; misses expose the full MRF latency. Because warps
//! lose their cache contents when the two-level scheduler deactivates them,
//! and because register values often have a single consumer, the hit rate is
//! low (8–30% in the paper's Figure 4), which is precisely why RFC cannot
//! tolerate slow main register files.

use std::collections::HashMap;

use ltrf_isa::{ArchReg, BlockId, RegSet};
use ltrf_sim::{BankArbiter, Cycle, RegFileTiming, RegisterFileModel, WarpId};
use ltrf_tech::AccessCounts;

/// One warp's private register-cache state (LRU over a handful of entries).
#[derive(Debug, Default)]
struct RfcWarpState {
    /// Cached registers mapped to their last-use tick and dirty bit.
    entries: HashMap<ArchReg, (u64, bool)>,
}

/// The demand-driven hardware register-file cache.
#[derive(Debug)]
pub struct RfcRegisterFile {
    timing: RegFileTiming,
    entries_per_warp: usize,
    mrf: BankArbiter,
    cache: BankArbiter,
    warps: Vec<RfcWarpState>,
    counts: AccessCounts,
    hits: u64,
    misses: u64,
    tick: u64,
}

impl RfcRegisterFile {
    /// Creates an RFC with `entries_per_warp` register slots per active warp.
    ///
    /// The paper's 16 KB cache shared by 8 active warps corresponds to 16
    /// warp-wide registers per warp.
    #[must_use]
    pub fn new(timing: RegFileTiming, entries_per_warp: usize) -> Self {
        RfcRegisterFile {
            mrf: BankArbiter::new(timing.mrf_banks, timing.mrf_latency()),
            cache: BankArbiter::new(timing.rfc_banks, timing.rfc_latency),
            timing,
            entries_per_warp: entries_per_warp.max(1),
            warps: Vec::new(),
            counts: AccessCounts::default(),
            hits: 0,
            misses: 0,
            tick: 0,
        }
    }

    fn ensure_warp(&mut self, warp: WarpId) {
        while self.warps.len() <= warp.index() {
            self.warps.push(RfcWarpState::default());
        }
    }

    fn mrf_bank(&self, warp: WarpId, reg: ArchReg) -> usize {
        (reg.index() + warp.index()) % self.timing.mrf_banks.max(1)
    }

    fn cache_bank(&self, reg: ArchReg) -> usize {
        reg.index() % self.timing.rfc_banks.max(1)
    }

    /// Inserts `reg` into the warp's cache, evicting the LRU entry if full.
    /// Evicted dirty entries are written back to the MRF (write ports, not
    /// arbitrated against present-time reads).
    fn fill(&mut self, warp: WarpId, reg: ArchReg, dirty: bool) {
        self.tick += 1;
        let capacity = self.entries_per_warp;
        let state = &mut self.warps[warp.index()];
        if state.entries.len() >= capacity && !state.entries.contains_key(&reg) {
            if let Some((&victim, &(_, victim_dirty))) =
                state.entries.iter().min_by_key(|(_, &(t, _))| t)
            {
                state.entries.remove(&victim);
                if victim_dirty {
                    self.counts.rfc_reads += 1;
                    self.counts.mrf_writes += 1;
                }
            }
        }
        let entry = self.warps[warp.index()]
            .entries
            .entry(reg)
            .or_insert((0, false));
        entry.0 = self.tick;
        entry.1 |= dirty;
    }
}

impl RegisterFileModel for RfcRegisterFile {
    fn name(&self) -> &str {
        "RFC"
    }

    fn warp_activated(&mut self, warp: WarpId, _block: BlockId, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        now
    }

    fn warp_deactivated(&mut self, warp: WarpId, _now: Cycle) {
        self.ensure_warp(warp);
        // The warp loses its cache allocation: write back dirty entries and
        // invalidate everything (the thrashing the paper describes).
        let dirty = self.warps[warp.index()]
            .entries
            .values()
            .filter(|&&(_, d)| d)
            .count() as u64;
        self.counts.rfc_reads += dirty;
        self.counts.mrf_writes += dirty;
        self.warps[warp.index()].entries.clear();
    }

    fn block_entered(&mut self, _warp: WarpId, _block: BlockId, now: Cycle) -> Cycle {
        now
    }

    fn read_operands(&mut self, warp: WarpId, regs: &RegSet, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        if regs.is_empty() {
            return now;
        }
        let mut ready = now;
        for reg in regs.iter() {
            let cached = self.warps[warp.index()].entries.contains_key(&reg);
            if cached {
                self.hits += 1;
                self.counts.rfc_reads += 1;
                self.tick += 1;
                let tick = self.tick;
                if let Some(entry) = self.warps[warp.index()].entries.get_mut(&reg) {
                    entry.0 = tick;
                }
                let bank = self.cache_bank(reg);
                ready = ready.max(self.cache.access(bank, now));
            } else {
                // Misses read the MRF but do not allocate: the RFC captures
                // values at production time (write-allocate only), as in the
                // hardware register-cache design the paper compares against.
                self.misses += 1;
                self.counts.mrf_reads += 1;
                let bank = self.mrf_bank(warp, reg);
                let done = self.mrf.access(bank, now);
                ready = ready.max(done);
            }
        }
        ready
    }

    fn write_register(&mut self, warp: WarpId, reg: ArchReg, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        self.counts.rfc_writes += 1;
        self.fill(warp, reg, true);
        now + self.timing.rfc_latency
    }

    fn access_counts(&self) -> AccessCounts {
        self.counts
    }

    fn register_cache_hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs_of(ids: &[u8]) -> RegSet {
        ids.iter().map(|&i| ArchReg::new(i)).collect()
    }

    #[test]
    fn produced_values_hit_but_inherited_values_miss() {
        let mut rf = RfcRegisterFile::new(RegFileTiming::default().with_latency_factor(6.3), 16);
        let t1 = rf.read_operands(WarpId(0), &regs_of(&[1]), 0);
        assert_eq!(
            t1, 13,
            "a value never produced locally pays the slow MRF latency"
        );
        let _ = rf.write_register(WarpId(0), ArchReg::new(1), t1);
        let t2 = rf.read_operands(WarpId(0), &regs_of(&[1]), 20);
        assert_eq!(t2 - 20, 1, "a freshly produced value hits in the cache");
        assert_eq!(rf.register_cache_hit_rate(), Some(0.5));
    }

    #[test]
    fn written_registers_hit_until_evicted() {
        let mut rf = RfcRegisterFile::new(RegFileTiming::default(), 4);
        let _ = rf.write_register(WarpId(0), ArchReg::new(7), 0);
        let t = rf.read_operands(WarpId(0), &regs_of(&[7]), 10);
        assert_eq!(t, 11);
        assert_eq!(rf.register_cache_hit_rate(), Some(1.0));
    }

    #[test]
    fn lru_eviction_writes_back_dirty_entries() {
        let mut rf = RfcRegisterFile::new(RegFileTiming::default(), 2);
        let _ = rf.write_register(WarpId(0), ArchReg::new(0), 0);
        let _ = rf.write_register(WarpId(0), ArchReg::new(1), 1);
        // Touch r0 so r1 becomes LRU, then produce r2: r1 must be written back.
        let _ = rf.read_operands(WarpId(0), &regs_of(&[0]), 2);
        let _ = rf.write_register(WarpId(0), ArchReg::new(2), 3);
        assert_eq!(rf.access_counts().mrf_writes, 1);
        // r0 should still be cached.
        let before = rf.access_counts().mrf_reads;
        let _ = rf.read_operands(WarpId(0), &regs_of(&[0]), 10);
        assert_eq!(rf.access_counts().mrf_reads, before);
    }

    #[test]
    fn read_misses_do_not_allocate() {
        let mut rf = RfcRegisterFile::new(RegFileTiming::default().with_latency_factor(6.3), 8);
        let _ = rf.read_operands(WarpId(0), &regs_of(&[9]), 0);
        let t = rf.read_operands(WarpId(0), &regs_of(&[9]), 20);
        assert_eq!(
            t - 20,
            13,
            "a re-read of a never-written register still misses"
        );
        assert_eq!(rf.register_cache_hit_rate(), Some(0.0));
    }

    #[test]
    fn deactivation_flushes_the_warp_cache() {
        let mut rf = RfcRegisterFile::new(RegFileTiming::default(), 8);
        let _ = rf.write_register(WarpId(0), ArchReg::new(3), 0);
        let _ = rf.read_operands(WarpId(0), &regs_of(&[3]), 1);
        rf.warp_deactivated(WarpId(0), 5);
        assert_eq!(rf.access_counts().mrf_writes, 1, "dirty entry written back");
        // After reactivation the read misses again.
        let _ = rf.warp_activated(WarpId(0), BlockId(0), 6);
        let misses_before = rf.misses;
        let _ = rf.read_operands(WarpId(0), &regs_of(&[3]), 7);
        assert_eq!(rf.misses, misses_before + 1);
    }

    #[test]
    fn warps_have_private_caches() {
        let mut rf = RfcRegisterFile::new(RegFileTiming::default(), 8);
        let _ = rf.write_register(WarpId(0), ArchReg::new(1), 0);
        // Warp 1 reading the same architectural register misses.
        let misses_before = rf.misses;
        let _ = rf.read_operands(WarpId(1), &regs_of(&[1]), 1);
        assert_eq!(rf.misses, misses_before + 1);
        assert_eq!(rf.name(), "RFC");
    }
}
