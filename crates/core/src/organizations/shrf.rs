//! The software-managed hierarchical register file (SHRF) comparison point.
//!
//! SHRF (modelled after the compile-time-managed register-file hierarchy the
//! paper compares against in §6.6) lets the compiler allocate short-lived
//! values to the register-file cache within a *strand* — a prefetch subgraph
//! that ends at every long-latency operation and backward branch. Values
//! produced inside a strand are read from the cache; values that are first
//! read inside a strand (upward-exposed uses) still come from the main
//! register file on demand, because SHRF's goal is reducing background
//! write-back/reload energy, not hiding MRF latency. At a strand boundary the
//! registers written during the strand are written back.
//!
//! The consequence, reproduced here, is that SHRF's effective hit rate is
//! only modestly better than the hardware RFC and its latency tolerance tops
//! out around 2× — the motivation for LTRF's register-intervals.

use ltrf_compiler::CompiledKernel;
use ltrf_isa::{ArchReg, BlockId, RegSet};
use ltrf_sim::{BankArbiter, Cycle, RegFileTiming, RegisterFileModel, WarpId};
use ltrf_tech::AccessCounts;

#[derive(Debug, Default)]
struct ShrfWarpState {
    /// Registers currently allocated to the cache for this strand.
    cached: RegSet,
    /// Registers written during the current strand.
    dirty: RegSet,
    current_strand: Option<ltrf_compiler::IntervalId>,
}

/// The software-managed hierarchical register file.
#[derive(Debug)]
pub struct ShrfRegisterFile {
    compiled: CompiledKernel,
    timing: RegFileTiming,
    mrf: BankArbiter,
    cache: BankArbiter,
    warps: Vec<ShrfWarpState>,
    counts: AccessCounts,
    hits: u64,
    misses: u64,
}

impl ShrfRegisterFile {
    /// Creates an SHRF over a kernel compiled with strand subgraphs.
    #[must_use]
    pub fn new(compiled: CompiledKernel, timing: RegFileTiming) -> Self {
        ShrfRegisterFile {
            mrf: BankArbiter::new(timing.mrf_banks, timing.mrf_latency()),
            cache: BankArbiter::new(timing.rfc_banks, timing.rfc_latency),
            compiled,
            timing,
            warps: Vec::new(),
            counts: AccessCounts::default(),
            hits: 0,
            misses: 0,
        }
    }

    fn ensure_warp(&mut self, warp: WarpId) {
        while self.warps.len() <= warp.index() {
            self.warps.push(ShrfWarpState::default());
        }
    }

    fn mrf_bank(&self, warp: WarpId, reg: ArchReg) -> usize {
        (reg.index() + warp.index()) % self.timing.mrf_banks.max(1)
    }

    fn cache_bank(&self, reg: ArchReg) -> usize {
        reg.index() % self.timing.rfc_banks.max(1)
    }

    /// Ends the current strand: write back registers written during it (via
    /// the MRF write ports) and release the cache allocation.
    fn end_strand(&mut self, warp: WarpId, _now: Cycle) {
        let dirty = self.warps[warp.index()].dirty;
        if !dirty.is_empty() {
            self.counts.rfc_reads += dirty.len() as u64;
            self.counts.mrf_writes += dirty.len() as u64;
        }
        let state = &mut self.warps[warp.index()];
        state.cached.clear();
        state.dirty.clear();
    }
}

impl RegisterFileModel for ShrfRegisterFile {
    fn name(&self) -> &str {
        "SHRF"
    }

    fn warp_activated(&mut self, warp: WarpId, block: BlockId, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        self.warps[warp.index()].current_strand = Some(self.compiled.partition.interval_of(block));
        now
    }

    fn warp_deactivated(&mut self, warp: WarpId, now: Cycle) {
        self.ensure_warp(warp);
        self.end_strand(warp, now);
    }

    fn block_entered(&mut self, warp: WarpId, block: BlockId, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        let strand = self.compiled.partition.interval_of(block);
        if self.warps[warp.index()].current_strand != Some(strand) {
            self.end_strand(warp, now);
            self.warps[warp.index()].current_strand = Some(strand);
        }
        now
    }

    fn read_operands(&mut self, warp: WarpId, regs: &RegSet, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        if regs.is_empty() {
            return now;
        }
        let mut ready = now;
        for reg in regs.iter() {
            if self.warps[warp.index()].cached.contains(reg) {
                self.hits += 1;
                self.counts.rfc_reads += 1;
                let bank = self.cache_bank(reg);
                ready = ready.max(self.cache.access(bank, now));
            } else {
                // Upward-exposed use: fetched from the MRF on demand, then
                // kept in the cache for the rest of the strand.
                self.misses += 1;
                self.counts.mrf_reads += 1;
                self.counts.rfc_writes += 1;
                let bank = self.mrf_bank(warp, reg);
                let done = self.mrf.access(bank, now);
                ready = ready.max(done);
                self.warps[warp.index()].cached.insert(reg);
            }
        }
        ready
    }

    fn write_register(&mut self, warp: WarpId, reg: ArchReg, now: Cycle) -> Cycle {
        self.ensure_warp(warp);
        self.counts.rfc_writes += 1;
        let state = &mut self.warps[warp.index()];
        state.cached.insert(reg);
        state.dirty.insert(reg);
        now + self.timing.rfc_latency
    }

    fn access_counts(&self) -> AccessCounts {
        self.counts
    }

    fn register_cache_hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_compiler::{compile, CompilerOptions};
    use ltrf_isa::{ArchReg, KernelBuilder, Opcode};

    fn strand_compiled() -> CompiledKernel {
        let mut b = KernelBuilder::new("k", 16);
        let e = b.entry_block();
        b.push(e, Opcode::Mov, Some(ArchReg::new(0)), &[]);
        b.push(
            e,
            Opcode::LoadGlobal,
            Some(ArchReg::new(1)),
            &[ArchReg::new(0)],
        );
        b.push(e, Opcode::FAlu, Some(ArchReg::new(2)), &[ArchReg::new(1)]);
        b.push(
            e,
            Opcode::FAlu,
            Some(ArchReg::new(3)),
            &[ArchReg::new(2), ArchReg::new(0)],
        );
        b.exit(e);
        let kernel = b.build().unwrap();
        compile(&kernel, &CompilerOptions::default().with_strands()).unwrap()
    }

    fn regs_of(ids: &[u8]) -> RegSet {
        ids.iter().map(|&i| ArchReg::new(i)).collect()
    }

    #[test]
    fn values_produced_in_a_strand_hit() {
        let compiled = strand_compiled();
        let mut rf =
            ShrfRegisterFile::new(compiled, RegFileTiming::default().with_latency_factor(6.3));
        let _ = rf.warp_activated(WarpId(0), BlockId(0), 0);
        let _ = rf.write_register(WarpId(0), ArchReg::new(0), 0);
        let t = rf.read_operands(WarpId(0), &regs_of(&[0]), 5);
        assert_eq!(t, 6, "value produced this strand is cached");
        assert_eq!(rf.register_cache_hit_rate(), Some(1.0));
    }

    #[test]
    fn upward_exposed_reads_pay_mrf_latency() {
        let compiled = strand_compiled();
        let mut rf =
            ShrfRegisterFile::new(compiled, RegFileTiming::default().with_latency_factor(6.3));
        let _ = rf.warp_activated(WarpId(0), BlockId(0), 0);
        let t = rf.read_operands(WarpId(0), &regs_of(&[5]), 0);
        assert_eq!(t, 13, "first read of an inherited value goes to the MRF");
        assert_eq!(rf.register_cache_hit_rate(), Some(0.0));
        assert_eq!(rf.name(), "SHRF");
    }

    #[test]
    fn strand_boundary_writes_back_and_clears() {
        let compiled = strand_compiled();
        // The load splits the block: block 0 and the split tail are different
        // strands.
        assert!(compiled.partition.interval_count() >= 2);
        let entry_strand = compiled.partition.interval_of(BlockId(0));
        let other = compiled
            .kernel
            .cfg
            .blocks()
            .map(|b| b.id())
            .find(|&b| compiled.partition.interval_of(b) != entry_strand)
            .unwrap();
        let mut rf = ShrfRegisterFile::new(compiled, RegFileTiming::default());
        let _ = rf.warp_activated(WarpId(0), BlockId(0), 0);
        let _ = rf.write_register(WarpId(0), ArchReg::new(0), 0);
        let t = rf.block_entered(WarpId(0), other, 10);
        assert_eq!(t, 10, "no prefetch stall in SHRF");
        assert_eq!(
            rf.access_counts().mrf_writes,
            1,
            "dirty register written back"
        );
        // The register now misses in the new strand.
        let misses_before = rf.access_counts().mrf_reads;
        let _ = rf.read_operands(WarpId(0), &regs_of(&[0]), 11);
        assert_eq!(rf.access_counts().mrf_reads, misses_before + 1);
    }
}
