//! The Warp Control Block (WCB).
//!
//! The WCB is the per-warp metadata structure at the heart of the LTRF
//! hardware (Figure 7 of the paper). For each warp it holds
//!
//! * the **register cache address table**: for every architectural register,
//!   the register-file-cache bank that currently holds it (if any),
//! * the **warp-offset address**: which slot inside each cache bank belongs
//!   to this warp,
//! * the **working-set bit-vector**: which registers of the current prefetch
//!   subgraph have been fetched (valid bits), and
//! * the **liveness bit-vector** (LTRF+): which registers currently hold live
//!   values.
//!
//! The structure here is a functional model — it tracks exactly the state the
//! hardware tables would hold and exposes the storage-cost arithmetic used in
//! §4.3 of the paper.

use ltrf_isa::{ArchReg, RegSet, MAX_ARCH_REGS};
use serde::{Deserialize, Serialize};

/// Per-warp Warp Control Block state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpControlBlock {
    /// Register-cache bank number per architectural register (`None` when the
    /// register is not cached).
    bank_of: Vec<Option<u8>>,
    /// Slot within every cache bank that belongs to this warp.
    warp_offset: Option<u8>,
    /// Valid bits: registers of the current working set already fetched.
    working_set: RegSet,
    /// Liveness bits (LTRF+).
    liveness: RegSet,
}

impl WarpControlBlock {
    /// Creates an empty WCB.
    #[must_use]
    pub fn new() -> Self {
        WarpControlBlock {
            bank_of: vec![None; MAX_ARCH_REGS],
            warp_offset: None,
            working_set: RegSet::new(),
            liveness: RegSet::new(),
        }
    }

    /// Returns the cache bank currently holding `reg`, if any.
    #[must_use]
    pub fn bank_of(&self, reg: ArchReg) -> Option<u8> {
        self.bank_of[reg.index()]
    }

    /// Records that `reg` now lives in cache bank `bank`.
    pub fn map_register(&mut self, reg: ArchReg, bank: u8) {
        self.bank_of[reg.index()] = Some(bank);
        self.working_set.insert(reg);
    }

    /// Removes the mapping of `reg`, returning the bank it occupied.
    pub fn unmap_register(&mut self, reg: ArchReg) -> Option<u8> {
        self.working_set.remove(reg);
        self.bank_of[reg.index()].take()
    }

    /// Removes every mapping, returning the freed banks. Used when a warp is
    /// deactivated and releases its register-cache slots.
    pub fn unmap_all(&mut self) -> Vec<u8> {
        let mut freed = Vec::new();
        for slot in self.bank_of.iter_mut() {
            if let Some(bank) = slot.take() {
                freed.push(bank);
            }
        }
        self.working_set.clear();
        freed
    }

    /// Registers currently mapped into the cache.
    #[must_use]
    pub fn cached_registers(&self) -> RegSet {
        self.working_set
    }

    /// Returns `true` if `reg` is currently cached.
    #[must_use]
    pub fn is_cached(&self, reg: ArchReg) -> bool {
        self.working_set.contains(reg)
    }

    /// The warp-offset address (slot index inside each bank).
    #[must_use]
    pub const fn warp_offset(&self) -> Option<u8> {
        self.warp_offset
    }

    /// Assigns the warp-offset address.
    pub fn set_warp_offset(&mut self, offset: Option<u8>) {
        self.warp_offset = offset;
    }

    /// Marks `reg` live (it has been written).
    pub fn mark_live(&mut self, reg: ArchReg) {
        self.liveness.insert(reg);
    }

    /// Marks the registers in `dying` dead (their last read has happened).
    pub fn mark_dead(&mut self, dying: &RegSet) {
        self.liveness = self.liveness.difference(dying);
    }

    /// The current liveness bit-vector.
    #[must_use]
    pub fn live_registers(&self) -> RegSet {
        self.liveness
    }

    /// Clears the liveness bit-vector (warp start).
    pub fn clear_liveness(&mut self) {
        self.liveness.clear();
    }
}

impl Default for WarpControlBlock {
    fn default() -> Self {
        WarpControlBlock::new()
    }
}

/// Storage cost of the WCB structures, as accounted in §4.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WcbStorageCost {
    /// Bits per warp.
    pub bits_per_warp: u64,
    /// Total bits for all warps of an SM.
    pub total_bits: u64,
}

impl WcbStorageCost {
    /// Computes the storage cost for an SM supporting `warps` warps with
    /// `regs_per_warp` architectural registers each and
    /// `registers_per_interval` register-cache banks.
    ///
    /// Each register needs ⌈log2(#banks)⌉ bits in the address table plus one
    /// working-set bit plus one liveness bit; each warp additionally stores a
    /// ⌈log2(#active-warps)⌉-bit warp-offset address.
    #[must_use]
    pub fn compute(
        warps: u64,
        regs_per_warp: u64,
        registers_per_interval: u64,
        active_warps: u64,
    ) -> Self {
        let bank_bits = (registers_per_interval.max(2) as f64).log2().ceil() as u64;
        let offset_bits = (active_warps.max(2) as f64).log2().ceil() as u64;
        // Address-table entry includes a valid bit alongside the bank number,
        // giving the 5 bits/register of the paper's example (4-bit bank + 1).
        let bits_per_warp = regs_per_warp * (bank_bits + 1) + offset_bits + 2 * regs_per_warp;
        WcbStorageCost {
            bits_per_warp,
            total_bits: bits_per_warp * warps,
        }
    }

    /// Storage cost in bytes.
    #[must_use]
    pub const fn total_bytes(&self) -> u64 {
        self.total_bits / 8
    }

    /// Storage as a fraction of a register file of `regfile_bytes` bytes.
    #[must_use]
    pub fn fraction_of_regfile(&self, regfile_bytes: u64) -> f64 {
        self.total_bytes() as f64 / regfile_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    #[test]
    fn mapping_round_trip() {
        let mut wcb = WarpControlBlock::new();
        assert!(!wcb.is_cached(r(5)));
        wcb.map_register(r(5), 3);
        assert_eq!(wcb.bank_of(r(5)), Some(3));
        assert!(wcb.is_cached(r(5)));
        assert_eq!(wcb.cached_registers().len(), 1);
        assert_eq!(wcb.unmap_register(r(5)), Some(3));
        assert!(!wcb.is_cached(r(5)));
        assert_eq!(wcb.unmap_register(r(5)), None);
    }

    #[test]
    fn unmap_all_frees_every_bank() {
        let mut wcb = WarpControlBlock::new();
        wcb.map_register(r(0), 0);
        wcb.map_register(r(1), 1);
        wcb.map_register(r(9), 2);
        let mut freed = wcb.unmap_all();
        freed.sort_unstable();
        assert_eq!(freed, vec![0, 1, 2]);
        assert!(wcb.cached_registers().is_empty());
    }

    #[test]
    fn liveness_tracking() {
        let mut wcb = WarpControlBlock::new();
        wcb.mark_live(r(1));
        wcb.mark_live(r(2));
        assert_eq!(wcb.live_registers().len(), 2);
        wcb.mark_dead(&[r(1)].into_iter().collect());
        assert!(!wcb.live_registers().contains(r(1)));
        assert!(wcb.live_registers().contains(r(2)));
        wcb.clear_liveness();
        assert!(wcb.live_registers().is_empty());
    }

    #[test]
    fn warp_offset_assignment() {
        let mut wcb = WarpControlBlock::new();
        assert_eq!(wcb.warp_offset(), None);
        wcb.set_warp_offset(Some(5));
        assert_eq!(wcb.warp_offset(), Some(5));
        let default_wcb = WarpControlBlock::default();
        assert_eq!(default_wcb.warp_offset(), None);
    }

    #[test]
    fn storage_cost_matches_paper_example() {
        // 64 warps × 256 registers, 16 registers per interval, 8 active
        // warps: the paper reports 114 880 bits.
        let cost = WcbStorageCost::compute(64, 256, 16, 8);
        assert_eq!(cost.bits_per_warp, 256 * 5 + 3 + 2 * 256);
        assert_eq!(cost.total_bits, 114_880);
        // ≈ 5% of a 256 KB register file.
        let frac = cost.fraction_of_regfile(256 * 1024);
        assert!(frac > 0.04 && frac < 0.07, "fraction {frac}");
    }
}
