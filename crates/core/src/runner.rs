//! The experiment runner: simulate a kernel under a register-file
//! organization and a Table 2 design point, and report IPC and power.

use serde::{Deserialize, Serialize};

use ltrf_isa::Kernel;
use ltrf_sim::{
    simulate_gpu_with, simulate_with, EngineKind, GpuConfig, GpuStats, InterconnectConfig,
    MemoryBehavior, SimStats, SimWorkload, SmConfig,
};
use ltrf_tech::{PowerBreakdown, PowerParams, RegFileConfig, RegFilePowerModel};

use crate::organizations::{
    build_organization, build_organization_fleet, LtrfParams, Organization,
};
use crate::CoreError;

/// Everything needed to run one kernel under one register-file design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The register-file organization under test.
    pub organization: Organization,
    /// The Table 2 main-register-file design point (capacity and latency).
    pub mrf_config: RegFileConfig,
    /// Override of the main-register-file latency factor; `None` uses the
    /// design point's calibrated factor. Latency-sweep experiments
    /// (Figures 11–14) set this explicitly.
    pub latency_factor_override: Option<f64>,
    /// Registers per register-interval (the cache partition size, default 16).
    pub registers_per_interval: usize,
    /// Number of warps holding cache partitions concurrently (default 8).
    pub active_warps: usize,
    /// RFC capacity in registers per warp (default 16, i.e. a 16 KB cache
    /// shared by 8 warps).
    pub rfc_entries_per_warp: usize,
    /// Number of SMs to simulate (default 1, the historical single-SM
    /// configuration). With more than one SM the kernel's grid is weak-scaled
    /// by the SM count and the SMs contend for a shared L2 and DRAM.
    pub sm_count: usize,
    /// The power-model calibration the run is evaluated under (the `sweep
    /// power` knobs). Part of this configuration's serialized form, and
    /// therefore of every content-addressed cache key — results computed
    /// under different calibrations never alias.
    pub power: PowerParams,
    /// The SM↔L2 interconnect model multi-SM runs contend through. The
    /// default (`Ideal` topology) is bit-identical to the historical direct
    /// slice access and is *elided* from cache-key material so pre-existing
    /// keys stay stable; any non-default field makes every key miss.
    pub interconnect: InterconnectConfig,
}

impl ExperimentConfig {
    /// An experiment on the baseline SRAM design point (configuration #1).
    #[must_use]
    pub fn new(organization: Organization) -> Self {
        ExperimentConfig {
            organization,
            mrf_config: RegFileConfig::baseline(),
            latency_factor_override: None,
            registers_per_interval: 16,
            active_warps: 8,
            rfc_entries_per_warp: 16,
            sm_count: 1,
            power: PowerParams::default(),
            interconnect: InterconnectConfig::default(),
        }
    }

    /// An experiment on Table 2 configuration `id` (1–7).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `1..=7`.
    #[must_use]
    pub fn for_table2(organization: Organization, id: u8) -> Self {
        ExperimentConfig {
            mrf_config: RegFileConfig::from_table(id),
            ..ExperimentConfig::new(organization)
        }
    }

    /// Overrides the main-register-file latency factor.
    #[must_use]
    pub fn with_latency_factor(mut self, factor: f64) -> Self {
        self.latency_factor_override = Some(factor);
        self
    }

    /// Sets the register-interval size (Figure 12 sweep).
    #[must_use]
    pub fn with_registers_per_interval(mut self, n: usize) -> Self {
        self.registers_per_interval = n;
        self
    }

    /// Sets the active-warp count (Figure 13 sweep).
    #[must_use]
    pub fn with_active_warps(mut self, warps: usize) -> Self {
        self.active_warps = warps;
        self
    }

    /// Sets the number of SMs (the multi-SM / GPU-scale sweep axis).
    #[must_use]
    pub fn with_sm_count(mut self, sm_count: usize) -> Self {
        self.sm_count = sm_count.max(1);
        self
    }

    /// Sets the power-model calibration (the `sweep power` knobs).
    #[must_use]
    pub fn with_power_params(mut self, params: PowerParams) -> Self {
        self.power = params;
        self
    }

    /// Sets the SM↔L2 interconnect model (the `sweep interconnect` knobs).
    #[must_use]
    pub fn with_interconnect(mut self, interconnect: InterconnectConfig) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// The effective main-register-file latency factor of this experiment.
    #[must_use]
    pub fn latency_factor(&self) -> f64 {
        match self.organization {
            // The ideal design has the baseline latency regardless of size.
            Organization::Ideal => 1.0,
            _ => self
                .latency_factor_override
                .unwrap_or(self.mrf_config.latency_factor),
        }
    }

    /// The canonical serialized form of this configuration, used by
    /// `ltrf-sweep` to derive content-addressed cache keys. Field order is
    /// declaration order and floats use shortest round-trip formatting, so
    /// equal configurations always produce identical material.
    ///
    /// The `interconnect` field is *removed* when it equals the default
    /// (`Ideal` topology): default-configured experiments keep producing the
    /// exact key material they produced before the interconnect existed, so
    /// historical caches stay warm — while any non-default field changes the
    /// material and forces a recompute.
    #[must_use]
    pub fn cache_key_value(&self) -> serde::Value {
        let value = Serialize::to_value(self);
        if self.interconnect != InterconnectConfig::default() {
            return value;
        }
        match value {
            serde::Value::Object(fields) => serde::Value::Object(
                fields
                    .into_iter()
                    .filter(|(name, _)| name != "interconnect")
                    .collect(),
            ),
            other => other,
        }
    }

    /// [`Self::cache_key_value`] rendered as canonical JSON text.
    #[must_use]
    pub fn cache_key_material(&self) -> String {
        self.cache_key_value().to_json()
    }

    /// Builds the per-SM simulator configuration for this experiment.
    #[must_use]
    pub fn sm_config(&self) -> SmConfig {
        let mut sm = SmConfig::default()
            .with_regfile_capacity_factor(self.mrf_config.capacity_factor)
            .with_mrf_latency_factor(self.latency_factor())
            .with_active_warps(self.active_warps);
        // The Table 2 design points change the bank count as well as the
        // latency (the 8x designs use 8x as many banks behind a flattened
        // butterfly), which is what keeps their aggregate bandwidth usable.
        sm.regfile.mrf_banks = ((16.0 * self.mrf_config.bank_count_factor).round() as usize).max(1);
        // The baseline comparison point of the paper adds the 16 KB of cache
        // capacity to the main register file instead.
        if matches!(
            self.organization,
            Organization::Baseline | Organization::Ideal
        ) {
            sm.regfile_bytes += sm.regfile_cache_bytes;
        }
        sm
    }

    /// Builds the whole-GPU simulator configuration for this experiment:
    /// `sm_count` copies of [`Self::sm_config`] over the default shared-L2
    /// contention model.
    #[must_use]
    pub fn gpu_config(&self) -> GpuConfig {
        GpuConfig {
            sm_count: self.sm_count.max(1),
            sm: self.sm_config(),
            interconnect: self.interconnect,
            ..GpuConfig::default()
        }
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The organization that was simulated.
    pub organization: Organization,
    /// Simulation statistics. For a multi-SM experiment these are the
    /// whole-GPU aggregate ([`GpuStats::aggregate`]): instruction and
    /// register-file counters summed across SMs, `memory.llc`/`memory.dram`
    /// carrying the shared structures' totals.
    pub stats: SimStats,
    /// Full per-SM and shared-memory statistics, present when the
    /// experiment simulated more than one SM.
    pub gpu: Option<GpuStats>,
    /// Instructions per cycle (whole-GPU IPC for multi-SM runs).
    pub ipc: f64,
    /// Register-file energy/power breakdown for the run. For multi-SM runs
    /// this is the *per-SM average* (the power model describes one register
    /// file, leakage included), which keeps it directly comparable to
    /// single-SM results; multiply by `sm_count` for chip totals.
    pub power: PowerBreakdown,
    /// Register-cache hit rate, if the organization has a cache.
    pub cache_hit_rate: Option<f64>,
}

/// The LTRF compiler/runtime parameters of an experiment configuration.
fn ltrf_params(config: &ExperimentConfig) -> LtrfParams {
    LtrfParams {
        registers_per_interval: config.registers_per_interval,
        active_warps: config.active_warps,
        liveness_aware: config.organization == Organization::LtrfPlus,
    }
}

/// Runs one kernel under one experiment configuration.
///
/// With `sm_count == 1` this takes the classic single-SM path
/// ([`ltrf_sim::simulate`], `gpu: None`); with more SMs it runs the
/// whole-GPU engine. [`run_experiment_via_gpu`] forces the latter at any SM
/// count, and the differential regression tests pin the two paths to each
/// other at `sm_count == 1`.
///
/// # Errors
///
/// Propagates compiler failures for software-managed organizations.
pub fn run_experiment(
    kernel: &Kernel,
    memory: MemoryBehavior,
    seed: u64,
    config: &ExperimentConfig,
) -> Result<RunResult, CoreError> {
    run_experiment_with_engine(kernel, memory, seed, config, EngineKind::default())
}

/// [`run_experiment`] with an explicitly chosen simulator engine.
///
/// The engine kind is deliberately *not* part of [`ExperimentConfig`] (whose
/// serialized form is content-addressed cache-key material): both engines
/// produce bit-identical results, so a cached point is valid under either.
/// The differential test suite passes [`EngineKind::Reference`] here to pin
/// the fast path against the oracle.
///
/// # Errors
///
/// Propagates compiler failures for software-managed organizations.
pub fn run_experiment_with_engine(
    kernel: &Kernel,
    memory: MemoryBehavior,
    seed: u64,
    config: &ExperimentConfig,
    engine: EngineKind,
) -> Result<RunResult, CoreError> {
    if config.sm_count.max(1) == 1 {
        let sm = config.sm_config();
        let mut built = build_organization(
            config.organization,
            kernel,
            sm.regfile,
            ltrf_params(config),
            config.rfc_entries_per_warp,
        )?;
        let workload = SimWorkload::new(built.kernel.clone())
            .with_memory(memory)
            .with_seed(seed);
        let stats = simulate_with(&workload, &sm, built.model.as_mut(), engine);
        Ok(finish_run(stats, None, config))
    } else {
        run_experiment_via_gpu_with_engine(kernel, memory, seed, config, engine)
    }
}

/// Runs one kernel through the whole-GPU engine ([`ltrf_sim::simulate_gpu`])
/// regardless of `sm_count` — with one SM this exercises the engine's
/// single-SM delegation and its statistics aggregation instead of calling
/// [`ltrf_sim::simulate`] directly.
///
/// The result must be bit-identical to [`run_experiment`]'s at
/// `sm_count == 1` apart from the `gpu` provenance field (which this path
/// always populates); the differential regression test in
/// `tests/differential_gpu.rs` asserts exactly that across a generated
/// workload population.
///
/// # Errors
///
/// Propagates compiler failures for software-managed organizations.
pub fn run_experiment_via_gpu(
    kernel: &Kernel,
    memory: MemoryBehavior,
    seed: u64,
    config: &ExperimentConfig,
) -> Result<RunResult, CoreError> {
    run_experiment_via_gpu_with_engine(kernel, memory, seed, config, EngineKind::default())
}

/// [`run_experiment_via_gpu`] with an explicitly chosen simulator engine
/// (see [`run_experiment_with_engine`] for why the engine kind is not part
/// of the experiment configuration).
///
/// # Errors
///
/// Propagates compiler failures for software-managed organizations.
pub fn run_experiment_via_gpu_with_engine(
    kernel: &Kernel,
    memory: MemoryBehavior,
    seed: u64,
    config: &ExperimentConfig,
    engine: EngineKind,
) -> Result<RunResult, CoreError> {
    let sm = config.sm_config();
    let sm_count = config.sm_count.max(1);
    // Weak scaling: the grid *and* the memory footprint grow with the
    // SM count, so every SM receives the same per-SM work — including
    // the same per-warp streaming region size, and therefore the same
    // intrinsic locality — as the single-SM campaigns. What changes
    // with SM count is only the cross-SM contention for the shared
    // L2/DRAM, which is the quantity under study. (At one SM both
    // scalings are the identity.)
    let scaled = kernel.with_grid_scaled(u32::try_from(sm_count).unwrap_or(u32::MAX));
    let scaled_memory = MemoryBehavior {
        footprint_bytes: memory.footprint_bytes.saturating_mul(sm_count as u64),
        ..memory
    };
    // One compilation, one model instance per SM.
    let (compiled_kernel, mut models) = build_organization_fleet(
        config.organization,
        &scaled,
        sm.regfile,
        ltrf_params(config),
        config.rfc_entries_per_warp,
        sm_count,
    )?;
    let workload = SimWorkload::new(compiled_kernel)
        .with_memory(scaled_memory)
        .with_seed(seed);
    let gpu = config.gpu_config();
    let gpu_stats = simulate_gpu_with(&workload, &gpu, &mut models, engine);
    Ok(finish_run(gpu_stats.aggregate(), Some(gpu_stats), config))
}

/// Folds simulation statistics into a [`RunResult`]: IPC, the register-file
/// power evaluation, and the cache-hit provenance — shared by the single-SM
/// and whole-GPU paths so the reporting conventions cannot drift.
fn finish_run(
    stats: SimStats,
    gpu_stats: Option<GpuStats>,
    config: &ExperimentConfig,
) -> RunResult {
    let sm = config.sm_config();
    let sm_count = config.sm_count.max(1);
    let rfc_kib = if matches!(
        config.organization,
        Organization::Baseline | Organization::Ideal
    ) {
        0.0
    } else {
        sm.regfile_cache_bytes as f64 / 1024.0
    };
    let power_model = RegFilePowerModel::for_config_with(
        &config.mrf_config,
        rfc_kib,
        sm.core_clock_mhz,
        &config.power,
    );
    // The power model describes ONE register file (its leakage term is per
    // instance), so feed it per-SM mean access counts: for sm_count = 1
    // this is the raw counts; for multi-SM runs it yields the per-SM
    // average power, keeping the dynamic and leakage components on the
    // same one-RF basis (summing counts would scale dynamic energy by N
    // but leakage by 1).
    let per_sm_counts = ltrf_tech::AccessCounts {
        mrf_reads: stats.regfile_accesses.mrf_reads / sm_count as u64,
        mrf_writes: stats.regfile_accesses.mrf_writes / sm_count as u64,
        rfc_reads: stats.regfile_accesses.rfc_reads / sm_count as u64,
        rfc_writes: stats.regfile_accesses.rfc_writes / sm_count as u64,
        wcb_accesses: stats.regfile_accesses.wcb_accesses / sm_count as u64,
        cycles: stats.regfile_accesses.cycles,
    };
    let power = power_model.evaluate(&per_sm_counts);
    RunResult {
        organization: config.organization,
        ipc: stats.ipc(),
        cache_hit_rate: stats.register_cache_hit_rate,
        stats,
        gpu: gpu_stats,
        power,
    }
}

/// Runs the reference baseline the paper normalizes against: the conventional
/// register file on configuration #1 with the 16 KB cache capacity folded
/// into the main register file, simulated at the same SM count as the
/// experiment being normalized.
///
/// # Errors
///
/// Never fails in practice (the baseline needs no compilation); the result is
/// a `Result` for uniformity with [`run_experiment`].
pub fn run_baseline_reference(
    kernel: &Kernel,
    memory: MemoryBehavior,
    seed: u64,
) -> Result<RunResult, CoreError> {
    run_baseline_reference_at(kernel, memory, seed, 1)
}

/// [`run_baseline_reference`] at an explicit SM count (multi-SM experiments
/// normalize against a baseline contending for the same shared memory).
///
/// # Errors
///
/// See [`run_baseline_reference`].
pub fn run_baseline_reference_at(
    kernel: &Kernel,
    memory: MemoryBehavior,
    seed: u64,
    sm_count: usize,
) -> Result<RunResult, CoreError> {
    run_experiment(
        kernel,
        memory,
        seed,
        &ExperimentConfig::new(Organization::Baseline).with_sm_count(sm_count),
    )
}

/// A pair of runs: an organization and the baseline it is normalized to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizedResult {
    /// The organization's run.
    pub result: RunResult,
    /// IPC relative to the baseline reference.
    pub normalized_ipc: f64,
    /// Register-file power relative to the baseline reference.
    pub normalized_power: f64,
}

/// Runs `config` and normalizes it against the baseline reference on the same
/// kernel, memory behaviour, and seed.
///
/// # Errors
///
/// Propagates compiler failures for software-managed organizations.
pub fn run_normalized(
    kernel: &Kernel,
    memory: MemoryBehavior,
    seed: u64,
    config: &ExperimentConfig,
) -> Result<NormalizedResult, CoreError> {
    // The reference runs at the same SM count *and* under the same
    // power-model calibration, so a `sweep power` recalibration moves the
    // numerator and the denominator together.
    let baseline = run_experiment(
        kernel,
        memory,
        seed,
        &ExperimentConfig::new(Organization::Baseline)
            .with_sm_count(config.sm_count.max(1))
            .with_power_params(config.power),
    )?;
    let result = run_experiment(kernel, memory, seed, config)?;
    let normalized_ipc = if baseline.ipc > 0.0 {
        result.ipc / baseline.ipc
    } else {
        0.0
    };
    let normalized_power = if baseline.power.average_power_mw > 0.0 {
        result.power.average_power_mw / baseline.power.average_power_mw
    } else {
        0.0
    };
    Ok(NormalizedResult {
        result,
        normalized_ipc,
        normalized_power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_isa::{ArchReg, KernelBuilder, LaunchConfig, Opcode};

    /// A small register-heavy kernel with a loop and a load, sized so the
    /// unit tests stay fast.
    fn test_kernel() -> Kernel {
        let mut b = KernelBuilder::new("runner-test", 32);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        for i in 0..12 {
            b.push(entry, Opcode::Mov, Some(ArchReg::new(i)), &[]);
        }
        b.jump(entry, body);
        b.push(
            body,
            Opcode::LoadGlobal,
            Some(ArchReg::new(16)),
            &[ArchReg::new(0)],
        );
        for i in 0..6 {
            b.push(
                body,
                Opcode::FFma,
                Some(ArchReg::new(17 + i)),
                &[ArchReg::new(16), ArchReg::new(i)],
            );
        }
        b.loop_branch(body, body, exit, 6);
        b.push(
            exit,
            Opcode::StoreGlobal,
            None,
            &[ArchReg::new(0), ArchReg::new(17)],
        );
        b.exit(exit);
        b.launch(LaunchConfig::new(8, 2, 0));
        b.build().unwrap()
    }

    #[test]
    fn experiment_config_builders() {
        let cfg = ExperimentConfig::for_table2(Organization::Ltrf, 7)
            .with_latency_factor(4.0)
            .with_registers_per_interval(32)
            .with_active_warps(16);
        assert_eq!(cfg.mrf_config.id.0, 7);
        assert!((cfg.latency_factor() - 4.0).abs() < 1e-9);
        assert_eq!(cfg.registers_per_interval, 32);
        assert_eq!(cfg.active_warps, 16);
        // Ideal ignores latency factors.
        let ideal = ExperimentConfig::for_table2(Organization::Ideal, 7);
        assert!((ideal.latency_factor() - 1.0).abs() < 1e-9);
        // The baseline folds the cache capacity into the main register file.
        let bl = ExperimentConfig::new(Organization::Baseline).sm_config();
        assert_eq!(bl.regfile_bytes, (256 + 16) * 1024);
        let ltrf = ExperimentConfig::new(Organization::Ltrf).sm_config();
        assert_eq!(ltrf.regfile_bytes, 256 * 1024);
        // The GPU-level configuration carries the SM count.
        let gpu = ExperimentConfig::new(Organization::Ltrf)
            .with_sm_count(4)
            .gpu_config();
        assert_eq!(gpu.sm_count, 4);
        assert_eq!(gpu.sm.regfile_bytes, 256 * 1024);
        assert_eq!(ExperimentConfig::new(Organization::Ltrf).sm_count, 1);
    }

    #[test]
    fn sm_count_changes_the_cache_key() {
        let one = ExperimentConfig::new(Organization::Ltrf);
        let four = one.with_sm_count(4);
        assert_ne!(one.cache_key_material(), four.cache_key_material());
        assert!(four.cache_key_material().contains("\"sm_count\":4"));
    }

    #[test]
    fn default_interconnect_is_elided_from_the_cache_key() {
        // Pre-interconnect caches must stay warm: the all-default network
        // configuration contributes nothing to key material...
        let default_cfg = ExperimentConfig::new(Organization::Ltrf);
        assert!(
            !default_cfg.cache_key_material().contains("interconnect"),
            "default interconnect must not appear in key material"
        );
        // ...while changing any single field makes the key miss.
        use ltrf_sim::{InterleaveMode, Topology};
        let base = InterconnectConfig::default();
        let variants = [
            InterconnectConfig {
                topology: Topology::Crossbar,
                ..base
            },
            InterconnectConfig {
                link_width: 16,
                ..base
            },
            InterconnectConfig {
                queue_depth: 4,
                ..base
            },
            InterconnectConfig {
                interleave: InterleaveMode::XorFold,
                ..base
            },
        ];
        for variant in variants {
            let changed = default_cfg.with_interconnect(variant);
            let material = changed.cache_key_material();
            assert!(material.contains("interconnect"), "{variant:?}");
            assert_ne!(material, default_cfg.cache_key_material(), "{variant:?}");
        }
        // Distinct non-default configurations also never alias each other.
        let a = default_cfg
            .with_interconnect(variants[0])
            .cache_key_material();
        let b = default_cfg
            .with_interconnect(variants[1])
            .cache_key_material();
        assert_ne!(a, b);
    }

    #[test]
    fn power_params_change_the_cache_key_and_scale_reported_power() {
        let default_cfg = ExperimentConfig::for_table2(Organization::Ltrf, 7);
        let recalibrated = default_cfg.with_power_params(ltrf_tech::PowerParams {
            base_access_pj: 100.0,
            ..ltrf_tech::PowerParams::default()
        });
        assert_ne!(
            default_cfg.cache_key_material(),
            recalibrated.cache_key_material(),
            "the calibration is key material"
        );
        assert!(default_cfg
            .cache_key_material()
            .contains("\"base_access_pj\":50.0"));

        let kernel = test_kernel();
        let memory = MemoryBehavior::cache_resident();
        let base = run_experiment(&kernel, memory, 3, &default_cfg).unwrap();
        let hot = run_experiment(&kernel, memory, 3, &recalibrated).unwrap();
        // Same timing, more dynamic energy.
        assert_eq!(base.ipc, hot.ipc);
        assert!(hot.power.mrf_dynamic_pj > base.power.mrf_dynamic_pj);
        // Normalization recalibrates the baseline reference too, so the
        // leakage-free part of the ratio is calibration-invariant; assert the
        // ratios stay close rather than drifting with the knob.
        let norm_base = run_normalized(&kernel, memory, 3, &default_cfg).unwrap();
        let norm_hot = run_normalized(&kernel, memory, 3, &recalibrated).unwrap();
        assert_eq!(norm_base.normalized_ipc, norm_hot.normalized_ipc);
        assert!((norm_base.normalized_power - norm_hot.normalized_power).abs() < 0.2);
    }

    #[test]
    fn multi_sm_experiments_run_every_organization() {
        let kernel = test_kernel();
        for &org in Organization::all() {
            let result = run_experiment(
                &kernel,
                MemoryBehavior::cache_resident(),
                1,
                &ExperimentConfig::for_table2(org, 6).with_sm_count(2),
            )
            .unwrap();
            assert!(!result.stats.truncated, "{org} multi-SM run was truncated");
            assert!(result.ipc > 0.0, "{org} produced zero GPU IPC");
            let gpu = result.gpu.as_ref().expect("multi-SM runs carry GpuStats");
            assert_eq!(gpu.sm_count, 2);
            assert_eq!(gpu.per_sm.len(), 2);
            assert!(gpu.ctas_per_sm.iter().all(|&c| c > 0));
        }
    }

    #[test]
    fn single_sm_experiment_has_no_gpu_stats_and_matches_legacy_path() {
        let kernel = test_kernel();
        let config = ExperimentConfig::for_table2(Organization::Ltrf, 6);
        let result = run_experiment(&kernel, MemoryBehavior::cache_resident(), 2, &config).unwrap();
        assert!(result.gpu.is_none());
        let explicit_one = run_experiment(
            &kernel,
            MemoryBehavior::cache_resident(),
            2,
            &config.with_sm_count(1),
        )
        .unwrap();
        assert_eq!(result, explicit_one);
    }

    #[test]
    fn multi_sm_normalization_uses_a_multi_sm_baseline() {
        let kernel = test_kernel();
        let normalized = run_normalized(
            &kernel,
            MemoryBehavior::cache_resident(),
            5,
            &ExperimentConfig::for_table2(Organization::Ltrf, 6).with_sm_count(2),
        )
        .unwrap();
        assert!(normalized.normalized_ipc > 0.0);
        assert!(normalized.normalized_power > 0.0);
        assert_eq!(normalized.result.gpu.as_ref().unwrap().sm_count, 2);
    }

    #[test]
    fn every_organization_completes_the_test_kernel() {
        let kernel = test_kernel();
        for &org in Organization::all() {
            let result = run_experiment(
                &kernel,
                MemoryBehavior::cache_resident(),
                1,
                &ExperimentConfig::for_table2(org, 6),
            )
            .unwrap();
            assert!(!result.stats.truncated, "{org} run was truncated");
            assert!(result.ipc > 0.0, "{org} produced zero IPC");
            assert!(result.power.average_power_mw >= 0.0);
        }
    }

    #[test]
    fn ltrf_beats_baseline_on_a_slow_register_file() {
        let kernel = test_kernel();
        let memory = MemoryBehavior::cache_resident();
        let bl = run_experiment(
            &kernel,
            memory,
            3,
            &ExperimentConfig::for_table2(Organization::Baseline, 7),
        )
        .unwrap();
        let ltrf = run_experiment(
            &kernel,
            memory,
            3,
            &ExperimentConfig::for_table2(Organization::Ltrf, 7),
        )
        .unwrap();
        assert!(
            ltrf.ipc > bl.ipc,
            "LTRF ({}) should beat BL ({}) at 6.3x register-file latency",
            ltrf.ipc,
            bl.ipc
        );
    }

    #[test]
    fn normalization_against_the_baseline_reference() {
        let kernel = test_kernel();
        let normalized = run_normalized(
            &kernel,
            MemoryBehavior::cache_resident(),
            5,
            &ExperimentConfig::for_table2(Organization::Ltrf, 6),
        )
        .unwrap();
        assert!(normalized.normalized_ipc > 0.0);
        assert!(normalized.normalized_power > 0.0);
    }

    #[test]
    fn ltrf_cache_hit_rate_is_near_perfect() {
        let kernel = test_kernel();
        let result = run_experiment(
            &kernel,
            MemoryBehavior::cache_resident(),
            9,
            &ExperimentConfig::for_table2(Organization::Ltrf, 6),
        )
        .unwrap();
        let hit_rate = result.cache_hit_rate.expect("LTRF has a register cache");
        assert!(
            hit_rate > 0.95,
            "LTRF hit rate should be near 1.0, got {hit_rate}"
        );
        // The RFC hit rate on the same kernel is clearly lower.
        let rfc = run_experiment(
            &kernel,
            MemoryBehavior::cache_resident(),
            9,
            &ExperimentConfig::for_table2(Organization::Rfc, 6),
        )
        .unwrap();
        let rfc_rate = rfc.cache_hit_rate.expect("RFC has a register cache");
        assert!(rfc_rate < hit_rate);
    }
}
