//! # ltrf-core
//!
//! The Latency-Tolerant Register File (LTRF) — the primary contribution of
//! the ASPLOS 2018 paper this repository reproduces — together with every
//! register-file organization it is compared against and the experiment
//! machinery that evaluates them.
//!
//! ## What LTRF is
//!
//! GPUs need enormous register files to keep thousands of threads resident,
//! but large register files are slow and power-hungry. LTRF makes a *slow*
//! main register file tolerable by placing a small, partitioned register
//! cache in front of it and prefetching, under software control, the
//! register working-set of each *register-interval* (a single-entry CFG
//! region computed by `ltrf-compiler`) at the interval's entry. The prefetch
//! latency of one warp is overlapped with the execution of the other active
//! warps selected by a two-level scheduler, so the core almost always sees
//! the cache's latency. LTRF+ further exploits operand liveness to skip
//! writing back and refetching dead registers.
//!
//! ## Crate layout
//!
//! * [`organizations`] — the register-file models: `BL`, `RFC`, `SHRF`,
//!   `LTRF`, `LTRF+`, `LTRF (strand)`, and `Ideal`, all implementing
//!   [`ltrf_sim::RegisterFileModel`].
//! * [`wcb`] / [`address_alloc`] — the Warp Control Block and Address
//!   Allocation Unit hardware structures (Figures 7 and 8).
//! * [`runner`] — run one kernel under one organization and Table 2 design
//!   point; report IPC and register-file power.
//! * [`latency_tolerance`] — the maximum-tolerable-latency metric (Figure 11).
//! * [`occupancy`] — the Table 1 capacity-requirement arithmetic.
//! * [`overheads`] — the §4.3 area/storage/code-size accounting.
//!
//! ## Example
//!
//! ```
//! use ltrf_core::{run_experiment, ExperimentConfig, Organization};
//! use ltrf_isa::straight_line_kernel;
//! use ltrf_sim::MemoryBehavior;
//!
//! let kernel = straight_line_kernel("demo", 24, 120);
//! let config = ExperimentConfig::for_table2(Organization::Ltrf, 7);
//! let result = run_experiment(&kernel, MemoryBehavior::cache_resident(), 1, &config).unwrap();
//! assert!(result.ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address_alloc;
mod error;
pub mod latency_tolerance;
pub mod occupancy;
pub mod organizations;
pub mod overheads;
pub mod runner;
pub mod wcb;

pub use error::CoreError;
pub use latency_tolerance::{
    latency_sweep, paper_latency_factors, LatencySweep, LatencySweepPoint,
};
pub use ltrf_sim::EngineKind;
pub use ltrf_sim::{InterconnectConfig, InterconnectStats, InterleaveMode, Topology};
pub use occupancy::{capacity_requirement, CapacityRequirement, GpuArchitecture};
pub use organizations::{
    build_organization, build_organization_fleet, BuiltOrganization, LtrfParams, LtrfRegisterFile,
    Organization, RfcRegisterFile, ShrfRegisterFile,
};
pub use overheads::{overhead_report, OverheadInputs, OverheadReport};
pub use runner::{
    run_baseline_reference, run_baseline_reference_at, run_experiment, run_experiment_via_gpu,
    run_experiment_via_gpu_with_engine, run_experiment_with_engine, run_normalized,
    ExperimentConfig, NormalizedResult, RunResult,
};
pub use wcb::{WarpControlBlock, WcbStorageCost};
