//! The Address Allocation Unit (Figure 8 of the paper).
//!
//! Register-file-cache space is allocated one bank per cached register (the
//! registers of a warp are interleaved across banks). The hardware keeps two
//! queues per warp — *unused* and *occupied* bank indices — and a global unit
//! of the same shape allocates warp-offset addresses (the per-warp slot
//! inside every bank). Both are modelled by [`AllocationQueue`].

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// A FIFO allocator over a fixed pool of small indices (cache banks or
/// warp-offset slots).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationQueue {
    unused: VecDeque<u8>,
    occupied: Vec<u8>,
    capacity: usize,
}

impl AllocationQueue {
    /// Creates an allocator over indices `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or greater than 256.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0 && capacity <= 256, "capacity must be 1..=256");
        AllocationQueue {
            unused: (0..capacity as u16).map(|i| i as u8).collect(),
            occupied: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Total number of slots managed.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of slots currently free.
    #[must_use]
    pub fn free(&self) -> usize {
        self.unused.len()
    }

    /// Number of slots currently allocated.
    #[must_use]
    pub fn allocated(&self) -> usize {
        self.occupied.len()
    }

    /// Allocates the next free slot, moving it to the occupied queue.
    /// Returns `None` if every slot is in use.
    pub fn allocate(&mut self) -> Option<u8> {
        let slot = self.unused.pop_front()?;
        self.occupied.push(slot);
        Some(slot)
    }

    /// Releases a previously allocated slot.
    ///
    /// Releasing a slot that is not currently allocated is ignored (the
    /// hardware cannot express this situation; the model tolerates it so
    /// teardown code can be unconditional).
    pub fn release(&mut self, slot: u8) {
        if let Some(pos) = self.occupied.iter().position(|&s| s == slot) {
            self.occupied.swap_remove(pos);
            self.unused.push_back(slot);
        }
    }

    /// Releases every allocated slot.
    pub fn release_all(&mut self) {
        for slot in self.occupied.drain(..) {
            self.unused.push_back(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_exhausts_and_replenishes() {
        let mut q = AllocationQueue::new(3);
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.free(), 3);
        let a = q.allocate().unwrap();
        let b = q.allocate().unwrap();
        let c = q.allocate().unwrap();
        assert_eq!(q.allocate(), None, "pool exhausted");
        assert_eq!(q.allocated(), 3);
        let mut all = vec![a, b, c];
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
        q.release(b);
        assert_eq!(q.free(), 1);
        assert_eq!(q.allocate(), Some(b), "released slot is reused");
    }

    #[test]
    fn release_all_resets_the_pool() {
        let mut q = AllocationQueue::new(4);
        let _ = q.allocate();
        let _ = q.allocate();
        q.release_all();
        assert_eq!(q.free(), 4);
        assert_eq!(q.allocated(), 0);
    }

    #[test]
    fn double_release_is_ignored() {
        let mut q = AllocationQueue::new(2);
        let a = q.allocate().unwrap();
        q.release(a);
        q.release(a);
        assert_eq!(q.free(), 2, "double release must not duplicate slots");
    }

    #[test]
    #[should_panic(expected = "1..=256")]
    fn zero_capacity_panics() {
        let _ = AllocationQueue::new(0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = AllocationQueue::new(3);
        assert_eq!(q.allocate(), Some(0));
        q.release(0);
        // 0 went to the back of the unused queue: 1 and 2 come first.
        assert_eq!(q.allocate(), Some(1));
        assert_eq!(q.allocate(), Some(2));
        assert_eq!(q.allocate(), Some(0));
    }
}
