//! Property-based tests: register-interval partitions formed over random
//! kernels always satisfy the paper's structural invariants.

use ltrf_compiler::{compile, CompilerOptions, PrefetchSubgraphKind};
use ltrf_isa::{ArchReg, BranchBehavior, Kernel, KernelBuilder, Opcode};
use proptest::prelude::*;

/// A compact description of a random kernel: a chain of "segments", each of
/// which is either a straight-line block, a loop, or an if/else diamond, with
/// a random register footprint.
#[derive(Debug, Clone)]
enum Segment {
    Straight {
        insts: usize,
        base_reg: u8,
    },
    Loop {
        insts: usize,
        base_reg: u8,
        trips: u32,
    },
    Diamond {
        insts: usize,
        base_reg: u8,
    },
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        (1usize..12, 0u8..56).prop_map(|(insts, base_reg)| Segment::Straight { insts, base_reg }),
        (1usize..10, 0u8..56, 1u32..6).prop_map(|(insts, base_reg, trips)| Segment::Loop {
            insts,
            base_reg,
            trips
        }),
        (1usize..8, 0u8..56).prop_map(|(insts, base_reg)| Segment::Diamond { insts, base_reg }),
    ]
}

fn build_kernel(segments: &[Segment]) -> Kernel {
    let mut b = KernelBuilder::new("random", 64);
    let mut current = b.entry_block();
    for seg in segments {
        match *seg {
            Segment::Straight { insts, base_reg } => {
                for i in 0..insts {
                    let dst = ArchReg::new(base_reg + (i % 8) as u8);
                    let src = ArchReg::new(base_reg + ((i + 1) % 8) as u8);
                    b.push(current, Opcode::FAlu, Some(dst), &[src]);
                }
            }
            Segment::Loop {
                insts,
                base_reg,
                trips,
            } => {
                let header = b.add_block();
                let after = b.add_block();
                b.jump(current, header);
                for i in 0..insts {
                    let dst = ArchReg::new(base_reg + (i % 8) as u8);
                    b.push(header, Opcode::FAlu, Some(dst), &[ArchReg::new(base_reg)]);
                }
                b.loop_branch(header, header, after, trips);
                current = after;
            }
            Segment::Diamond { insts, base_reg } => {
                let left = b.add_block();
                let right = b.add_block();
                let join = b.add_block();
                b.branch(current, left, right, BranchBehavior::balanced());
                for i in 0..insts {
                    b.push(
                        left,
                        Opcode::IAlu,
                        Some(ArchReg::new(base_reg + (i % 4) as u8)),
                        &[],
                    );
                    b.push(
                        right,
                        Opcode::IAlu,
                        Some(ArchReg::new(base_reg + 4 + (i % 4) as u8)),
                        &[],
                    );
                }
                b.jump(left, join);
                b.jump(right, join);
                current = join;
            }
        }
    }
    b.exit(current);
    b.build().expect("random kernels are structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Register-interval partitions over random kernels never violate the
    /// structural invariants (full coverage, single entry, budget respected)
    /// and never lose instructions when splitting blocks.
    #[test]
    fn register_interval_partition_invariants(
        segments in proptest::collection::vec(arb_segment(), 1..8),
        budget in 8usize..33,
    ) {
        let kernel = build_kernel(&segments);
        let opts = CompilerOptions::default().with_max_registers(budget);
        let compiled = compile(&kernel, &opts).unwrap();
        let violations = compiled.partition.invariant_violations(&compiled.kernel.cfg);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
        prop_assert_eq!(
            compiled.kernel.static_instruction_count(),
            kernel.static_instruction_count()
        );
        prop_assert!(compiled.stats.max_working_set <= budget);
        // Dynamic coverage: every dynamic instruction falls in some interval,
        // so real interval lengths sum to the dynamic instruction count.
        let lengths = ltrf_compiler::trace_analysis::real_interval_lengths(
            &compiled.kernel, &compiled.partition, 17);
        let total: u64 = lengths.iter().sum();
        let stats = ltrf_isa::trace::trace_stats(&compiled.kernel, 17);
        prop_assert_eq!(total, stats.dynamic_instructions);
    }

    /// Strand partitions satisfy the same invariants and are never coarser
    /// than register-interval partitions.
    #[test]
    fn strand_partition_invariants(
        segments in proptest::collection::vec(arb_segment(), 1..6),
        budget in 8usize..33,
    ) {
        let kernel = build_kernel(&segments);
        let ri = compile(&kernel, &CompilerOptions::default().with_max_registers(budget)).unwrap();
        let st = compile(
            &kernel,
            &CompilerOptions {
                max_registers_per_interval: budget,
                subgraph_kind: PrefetchSubgraphKind::Strand,
                reduce_intervals: false,
                annotate_liveness: true,
            },
        )
        .unwrap();
        let violations = st.partition.invariant_violations(&st.kernel.cfg);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
        prop_assert!(st.stats.interval_count >= ri.stats.interval_count);
        prop_assert!(st.stats.max_working_set <= budget);
    }

    /// Liveness-annotated kernels never mark a loop-carried operand dead on
    /// the back edge path: re-running the analysis after annotation yields
    /// identical live sets (annotation is metadata only).
    #[test]
    fn liveness_annotation_is_pure_metadata(
        segments in proptest::collection::vec(arb_segment(), 1..6),
    ) {
        let kernel = build_kernel(&segments);
        let before = ltrf_compiler::Liveness::analyze(&kernel);
        let compiled = compile(&kernel, &CompilerOptions::default()).unwrap();
        let after = ltrf_compiler::Liveness::analyze(&compiled.kernel);
        // Block counts can differ (splitting), but the entry live-in must be
        // identical and empty-ness of exit live-out preserved.
        prop_assert_eq!(
            before.live_in(kernel.cfg.entry()).len(),
            after.live_in(compiled.kernel.cfg.entry()).len()
        );
    }
}
