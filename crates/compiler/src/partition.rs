//! Data structures describing a prefetch-subgraph partition of a kernel CFG.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use ltrf_isa::{BlockId, Cfg, RegSet};

/// Identifier of a register-interval (or strand) within a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IntervalId(pub u32);

impl IntervalId {
    /// Returns the interval index as a `usize`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IntervalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ri{}", self.0)
    }
}

/// One prefetch subgraph: a set of basic blocks entered through a single
/// header block, together with its register working-set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterInterval {
    /// This interval's identifier.
    pub id: IntervalId,
    /// The single control-flow entry block of the interval.
    pub header: BlockId,
    /// All blocks belonging to the interval (the header is always first).
    pub blocks: Vec<BlockId>,
    /// The registers that may be accessed while executing inside the
    /// interval; this is the PREFETCH working-set.
    pub working_set: RegSet,
}

impl RegisterInterval {
    /// Returns the number of registers in the interval's working-set.
    #[must_use]
    pub fn working_set_size(&self) -> usize {
        self.working_set.len()
    }

    /// Returns `true` if `block` belongs to this interval.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(&block)
    }
}

/// A complete partition of a kernel's CFG into prefetch subgraphs.
///
/// Every basic block belongs to exactly one interval; the partition also
/// records the per-interval register budget (`N`) it was formed under so the
/// invariant `working_set ≤ N` can be re-checked at any time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterIntervalPartition {
    intervals: Vec<RegisterInterval>,
    assignment: Vec<IntervalId>,
    max_registers: usize,
}

impl RegisterIntervalPartition {
    /// Builds a partition from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` references an interval that does not exist or
    /// interval ids are not dense.
    #[must_use]
    pub fn new(
        intervals: Vec<RegisterInterval>,
        assignment: Vec<IntervalId>,
        max_registers: usize,
    ) -> Self {
        for (i, interval) in intervals.iter().enumerate() {
            assert_eq!(interval.id.index(), i, "interval ids must be dense");
        }
        for id in &assignment {
            assert!(id.index() < intervals.len(), "dangling interval id {id}");
        }
        RegisterIntervalPartition {
            intervals,
            assignment,
            max_registers,
        }
    }

    /// Returns the number of intervals in the partition.
    #[must_use]
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// Returns the per-interval register budget the partition was formed
    /// under.
    #[must_use]
    pub const fn max_registers(&self) -> usize {
        self.max_registers
    }

    /// Returns the interval containing `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not covered by the partition.
    #[must_use]
    pub fn interval_of(&self, block: BlockId) -> IntervalId {
        self.assignment[block.index()]
    }

    /// Returns the interval with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn interval(&self, id: IntervalId) -> &RegisterInterval {
        &self.intervals[id.index()]
    }

    /// Iterates over all intervals.
    pub fn intervals(&self) -> impl Iterator<Item = &RegisterInterval> {
        self.intervals.iter()
    }

    /// Returns the working-set of the interval that contains `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not covered by the partition.
    #[must_use]
    pub fn working_set_of_block(&self, block: BlockId) -> &RegSet {
        &self.interval(self.interval_of(block)).working_set
    }

    /// Returns the mean working-set size across intervals.
    #[must_use]
    pub fn mean_working_set(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .intervals
            .iter()
            .map(RegisterInterval::working_set_size)
            .sum();
        total as f64 / self.intervals.len() as f64
    }

    /// Returns the largest working-set size across intervals.
    #[must_use]
    pub fn max_working_set(&self) -> usize {
        self.intervals
            .iter()
            .map(RegisterInterval::working_set_size)
            .max()
            .unwrap_or(0)
    }

    /// Checks the structural invariants of the partition against `cfg`:
    ///
    /// 1. every block is assigned to exactly one interval and appears in that
    ///    interval's block list,
    /// 2. every interval's working-set fits the register budget,
    /// 3. every interval has a single control-flow entry point: edges from
    ///    outside the interval may only target its header.
    ///
    /// Returns a list of human-readable violations (empty when valid). This
    /// is used heavily by property-based tests.
    #[must_use]
    pub fn invariant_violations(&self, cfg: &Cfg) -> Vec<String> {
        let mut violations = Vec::new();
        if self.assignment.len() != cfg.block_count() {
            violations.push(format!(
                "assignment covers {} blocks but the CFG has {}",
                self.assignment.len(),
                cfg.block_count()
            ));
            return violations;
        }
        for (idx, interval_id) in self.assignment.iter().enumerate() {
            let block = BlockId(idx as u32);
            if !self.interval(*interval_id).contains(block) {
                violations.push(format!(
                    "{block} is assigned to {interval_id} but missing from its block list"
                ));
            }
        }
        for interval in &self.intervals {
            if interval.working_set_size() > self.max_registers {
                violations.push(format!(
                    "{} has a working-set of {} registers, budget is {}",
                    interval.id,
                    interval.working_set_size(),
                    self.max_registers
                ));
            }
            let members: HashSet<BlockId> = interval.blocks.iter().copied().collect();
            if !members.contains(&interval.header) {
                violations.push(format!(
                    "{} does not contain its own header {}",
                    interval.id, interval.header
                ));
            }
            for &block in &interval.blocks {
                if block != interval.header {
                    for &pred in cfg.predecessors(block) {
                        if !members.contains(&pred) {
                            violations.push(format!(
                                "{} is entered at non-header block {block} from {pred}",
                                interval.id
                            ));
                        }
                    }
                }
                // The working-set must cover every register the block touches.
                let touched = cfg.block(block).touched_registers();
                if !touched.is_subset(&interval.working_set) {
                    violations.push(format!(
                        "{} working-set misses registers touched by {block}",
                        interval.id
                    ));
                }
            }
        }
        violations
    }

    /// Returns the number of static PREFETCH sites: one per interval header.
    #[must_use]
    pub fn prefetch_site_count(&self) -> usize {
        self.intervals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_isa::straight_line_kernel;

    fn single_interval_partition(cfg: &Cfg, n: usize) -> RegisterIntervalPartition {
        let blocks: Vec<BlockId> = (0..cfg.block_count()).map(|i| BlockId(i as u32)).collect();
        let interval = RegisterInterval {
            id: IntervalId(0),
            header: cfg.entry(),
            blocks: blocks.clone(),
            working_set: cfg.all_registers(),
        };
        RegisterIntervalPartition::new(vec![interval], vec![IntervalId(0); cfg.block_count()], n)
    }

    #[test]
    fn accessors_and_stats() {
        let kernel = straight_line_kernel("k", 8, 10);
        let p = single_interval_partition(&kernel.cfg, 16);
        assert_eq!(p.interval_count(), 1);
        assert_eq!(p.max_registers(), 16);
        assert_eq!(p.interval_of(BlockId(0)), IntervalId(0));
        assert_eq!(p.working_set_of_block(BlockId(0)).len(), 8);
        assert!((p.mean_working_set() - 8.0).abs() < f64::EPSILON);
        assert_eq!(p.max_working_set(), 8);
        assert_eq!(p.prefetch_site_count(), 1);
        assert_eq!(IntervalId(3).to_string(), "ri3");
    }

    #[test]
    fn invariants_hold_for_whole_kernel_interval() {
        let kernel = straight_line_kernel("k", 8, 10);
        let p = single_interval_partition(&kernel.cfg, 16);
        assert!(p.invariant_violations(&kernel.cfg).is_empty());
    }

    #[test]
    fn invariants_catch_budget_overflow() {
        let kernel = straight_line_kernel("k", 8, 10);
        let p = single_interval_partition(&kernel.cfg, 4);
        let violations = p.invariant_violations(&kernel.cfg);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("budget"));
    }

    #[test]
    fn invariants_catch_incomplete_working_set() {
        let kernel = straight_line_kernel("k", 8, 10);
        let interval = RegisterInterval {
            id: IntervalId(0),
            header: BlockId(0),
            blocks: vec![BlockId(0)],
            working_set: RegSet::new(),
        };
        let p = RegisterIntervalPartition::new(vec![interval], vec![IntervalId(0)], 16);
        let violations = p.invariant_violations(&kernel.cfg);
        assert!(violations.iter().any(|v| v.contains("misses registers")));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_interval_ids_panic() {
        let interval = RegisterInterval {
            id: IntervalId(1),
            header: BlockId(0),
            blocks: vec![BlockId(0)],
            working_set: RegSet::new(),
        };
        let _ = RegisterIntervalPartition::new(vec![interval], vec![], 16);
    }
}
