//! Register-interval reduction (Algorithm 2 of the LTRF paper).
//!
//! The second formation pass works on the *register-interval CFG* produced by
//! Algorithm 1 and repeatedly merges an interval into its unique external
//! predecessor when the union of the two working-sets still fits the register
//! budget. Unlike pass 1, this pass never splits anything. Each repetition
//! can reduce the depth of a loop nest by one — in the paper's Figure 6
//! example, the outer loop's preheader interval merges into the loop-body
//! interval, leaving a single PREFETCH for the whole nest.

use std::collections::BTreeSet;

use ltrf_isa::{BlockId, Kernel};

use crate::{IntervalId, RegisterInterval, RegisterIntervalPartition};

/// Applies Algorithm 2 to `partition` until no further merge is possible.
///
/// Returns a new partition over the same kernel. The kernel's entry interval
/// is never merged away: it is the one interval that is always entered from
/// "outside" (kernel launch), so its PREFETCH cannot be subsumed.
#[must_use]
pub fn reduce_intervals(
    kernel: &Kernel,
    partition: &RegisterIntervalPartition,
    max_registers: usize,
) -> RegisterIntervalPartition {
    let block_count = kernel.cfg.block_count();
    // Union-find style representative per original interval id.
    let mut rep: Vec<usize> = (0..partition.interval_count()).collect();
    let mut working_sets: Vec<_> = partition.intervals().map(|i| i.working_set).collect();
    let entry_interval = partition.interval_of(kernel.cfg.entry()).index();

    fn find(rep: &mut [usize], mut x: usize) -> usize {
        while rep[x] != x {
            rep[x] = rep[rep[x]];
            x = rep[x];
        }
        x
    }

    loop {
        let mut merged_any = false;
        // Recompute, per representative interval, the set of external
        // predecessor representatives.
        let interval_count = partition.interval_count();
        let mut ext_preds: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); interval_count];
        for idx in 0..block_count {
            let block = BlockId(idx as u32);
            let to = find(&mut rep, partition.interval_of(block).index());
            for &pred in kernel.cfg.predecessors(block) {
                let from = find(&mut rep, partition.interval_of(pred).index());
                if from != to {
                    ext_preds[to].insert(from);
                }
            }
        }
        #[allow(clippy::needless_range_loop)]
        // `target` also names intervals, not just indexes `ext_preds`
        for target in 0..interval_count {
            let target_rep = find(&mut rep, target);
            if target_rep != target {
                continue; // already merged into something else this round
            }
            if target == find(&mut rep, entry_interval) {
                continue; // never merge the entry interval away
            }
            let preds = &ext_preds[target];
            if preds.len() != 1 {
                continue;
            }
            let source = *preds.iter().next().expect("len checked");
            let source_rep = find(&mut rep, source);
            if source_rep == target_rep {
                continue;
            }
            let union = working_sets[source_rep].union(&working_sets[target_rep]);
            if union.len() <= max_registers {
                rep[target_rep] = source_rep;
                working_sets[source_rep] = union;
                merged_any = true;
            }
        }
        if !merged_any {
            break;
        }
    }

    // Rebuild a dense partition from the representatives.
    let mut new_ids: Vec<Option<u32>> = vec![None; partition.interval_count()];
    let mut intervals: Vec<RegisterInterval> = Vec::new();
    let mut assignment = Vec::with_capacity(block_count);
    // Assign new ids in representative-discovery order based on block order so
    // the result is deterministic.
    for idx in 0..block_count {
        let block = BlockId(idx as u32);
        let old = partition.interval_of(block).index();
        let root = find(&mut rep, old);
        let new_id = match new_ids[root] {
            Some(id) => id,
            None => {
                let id = intervals.len() as u32;
                new_ids[root] = Some(id);
                // The merged interval's header is the header of the
                // representative (the interval everything merged *into*).
                intervals.push(RegisterInterval {
                    id: IntervalId(id),
                    header: partition.interval(IntervalId(root as u32)).header,
                    blocks: Vec::new(),
                    working_set: working_sets[root],
                });
                id
            }
        };
        assignment.push(IntervalId(new_id));
        intervals[new_id as usize].blocks.push(block);
    }
    // Put each interval's header first in its block list.
    for interval in &mut intervals {
        let header = interval.header;
        if let Some(pos) = interval.blocks.iter().position(|&b| b == header) {
            interval.blocks.swap(0, pos);
        }
    }
    RegisterIntervalPartition::new(intervals, assignment, max_registers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register_interval::form_register_intervals;
    use ltrf_isa::{ArchReg, KernelBuilder, Opcode};

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    /// Nested loop as in the paper's Figure 6: after pass 1 the preheader A
    /// and the loop {B, C} are separate intervals; pass 2 merges them when
    /// the combined working-set fits.
    fn nested_loop(regs_a: u8, regs_loop: u8) -> Kernel {
        let mut b = KernelBuilder::new("nest", 64);
        let a = b.entry_block();
        let body = b.add_block();
        let latch = b.add_block();
        let exit = b.add_block();
        for i in 0..regs_a {
            b.push(a, Opcode::IAlu, Some(r(i)), &[]);
        }
        b.jump(a, body);
        for i in 0..regs_loop {
            b.push(body, Opcode::FAlu, Some(r(16 + i)), &[r(0)]);
        }
        b.loop_branch(body, body, latch, 4);
        b.loop_branch(latch, a, exit, 2);
        b.exit(exit);
        b.build().unwrap()
    }

    #[test]
    fn pass2_merges_preheader_into_loop_when_it_fits() {
        let kernel = nested_loop(3, 4);
        let (k2, p1) = form_register_intervals(&kernel, 16).unwrap();
        assert!(p1.interval_count() >= 2, "pass 1 keeps the loop separate");
        let p2 = reduce_intervals(&k2, &p1, 16);
        assert!(
            p2.interval_count() < p1.interval_count(),
            "pass 2 should merge at least one interval"
        );
        assert!(p2.invariant_violations(&k2.cfg).is_empty());
        // The entry block and the loop body now share an interval.
        assert_eq!(
            p2.interval_of(kernel.cfg.entry()),
            p2.interval_of(ltrf_isa::BlockId(1))
        );
    }

    #[test]
    fn pass2_respects_budget() {
        // 10 + 10 registers cannot merge under a 16-register budget.
        let kernel = nested_loop(10, 10);
        let (k2, p1) = form_register_intervals(&kernel, 16).unwrap();
        let p2 = reduce_intervals(&k2, &p1, 16);
        assert!(p2.invariant_violations(&k2.cfg).is_empty());
        assert!(p2.max_working_set() <= 16);
        // entry and loop body remain in different intervals
        assert_ne!(
            p2.interval_of(kernel.cfg.entry()),
            p2.interval_of(ltrf_isa::BlockId(1))
        );
    }

    #[test]
    fn pass2_is_idempotent() {
        let kernel = nested_loop(3, 4);
        let (k2, p1) = form_register_intervals(&kernel, 16).unwrap();
        let p2 = reduce_intervals(&k2, &p1, 16);
        let p3 = reduce_intervals(&k2, &p2, 16);
        assert_eq!(p2.interval_count(), p3.interval_count());
    }

    #[test]
    fn pass2_never_merges_entry_away() {
        let kernel = nested_loop(2, 2);
        let (k2, p1) = form_register_intervals(&kernel, 16).unwrap();
        let p2 = reduce_intervals(&k2, &p1, 16);
        // The interval containing the entry block must still contain it.
        let entry_interval = p2.interval_of(k2.cfg.entry());
        assert!(p2.interval(entry_interval).contains(k2.cfg.entry()));
    }
}
