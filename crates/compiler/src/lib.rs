//! # ltrf-compiler
//!
//! Compile-time support for the Latency-Tolerant Register File (LTRF).
//!
//! The LTRF paper's software half is a set of compiler passes that run over a
//! kernel's control-flow graph:
//!
//! * **Liveness analysis** ([`liveness`]) computes per-block live-in/live-out
//!   register sets and annotates every instruction's *dead-operand bits*, the
//!   information LTRF+ uses to avoid writing back and refetching dead
//!   registers.
//! * **Register-interval formation** ([`register_interval`], Algorithm 1 of
//!   the paper) partitions the CFG into single-entry subgraphs whose register
//!   working-set fits within one warp's register-file-cache partition,
//!   splitting basic blocks whose working-set alone overflows the partition.
//! * **Register-interval reduction** ([`reduce`], Algorithm 2) repeatedly
//!   merges intervals that are reachable only from a single other interval
//!   while the merged working-set still fits, so that entire loop nests
//!   collapse into a single PREFETCH region.
//! * **Strand formation** ([`strand`]) builds the more-constrained prefetch
//!   subgraphs used by the SHRF / LTRF(strand) comparison points (§6.6).
//! * **PREFETCH scheduling** ([`prefetch`]) derives the per-interval 256-bit
//!   PREFETCH bit-vectors and the code-size overhead they impose (§4.3).
//! * **Trace analysis** ([`trace_analysis`]) measures *real* and *optimal*
//!   register-interval lengths over dynamic traces (Table 4).
//!
//! The top-level entry point is [`compile`], which runs the passes in order
//! and returns a [`CompiledKernel`] consumed by the register-file
//! organizations in `ltrf-core`.
//!
//! ```
//! use ltrf_compiler::{compile, CompilerOptions};
//! use ltrf_isa::straight_line_kernel;
//!
//! let kernel = straight_line_kernel("demo", 24, 200);
//! let compiled = compile(&kernel, &CompilerOptions::default()).unwrap();
//! assert!(compiled.partition.interval_count() >= 1);
//! for interval in compiled.partition.intervals() {
//!     assert!(interval.working_set.len() <= 16);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod liveness;
mod partition;
pub mod prefetch;
pub mod reduce;
pub mod register_interval;
pub mod strand;
pub mod trace_analysis;

use serde::{Deserialize, Serialize};

pub use error::CompileError;
pub use liveness::Liveness;
pub use partition::{IntervalId, RegisterInterval, RegisterIntervalPartition};
pub use prefetch::{CodeSizeModel, PrefetchSchedule};

use ltrf_isa::Kernel;

/// How prefetch subgraphs are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetchSubgraphKind {
    /// Register-intervals (the paper's contribution; Algorithms 1 and 2).
    RegisterInterval,
    /// Strands as in the software-managed hierarchical register file
    /// comparison point: terminated at long-latency operations and backward
    /// branches.
    Strand,
}

/// Options controlling compilation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompilerOptions {
    /// Maximum number of registers allowed in a prefetch subgraph (the size
    /// of one warp's register-file-cache partition). The paper's default is
    /// 16.
    pub max_registers_per_interval: usize,
    /// How prefetch subgraphs are formed.
    pub subgraph_kind: PrefetchSubgraphKind,
    /// Whether Algorithm 2 (interval reduction) runs after Algorithm 1.
    pub reduce_intervals: bool,
    /// Whether liveness analysis annotates dead-operand bits (required by
    /// LTRF+).
    pub annotate_liveness: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            max_registers_per_interval: 16,
            subgraph_kind: PrefetchSubgraphKind::RegisterInterval,
            reduce_intervals: true,
            annotate_liveness: true,
        }
    }
}

impl CompilerOptions {
    /// Returns options with a different register budget per interval.
    #[must_use]
    pub fn with_max_registers(mut self, n: usize) -> Self {
        self.max_registers_per_interval = n;
        self
    }

    /// Returns options that form strands instead of register-intervals.
    #[must_use]
    pub fn with_strands(mut self) -> Self {
        self.subgraph_kind = PrefetchSubgraphKind::Strand;
        self
    }
}

/// Aggregate statistics about a compiled kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CompileStats {
    /// Number of prefetch subgraphs (register-intervals or strands).
    pub interval_count: usize,
    /// Number of basic blocks after any splitting performed by Algorithm 1.
    pub block_count: usize,
    /// Mean working-set size across intervals, in registers.
    pub mean_working_set: f64,
    /// Largest working-set size across intervals, in registers.
    pub max_working_set: usize,
    /// Static instructions in the kernel (after splitting; splitting never
    /// changes this number).
    pub static_instructions: usize,
    /// Relative code-size increase caused by PREFETCH bit-vectors, e.g.
    /// `0.07` for the paper's 7%.
    pub code_size_overhead: f64,
}

/// The result of compiling a kernel for LTRF execution.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The kernel, possibly with basic blocks split by Algorithm 1.
    pub kernel: Kernel,
    /// The prefetch-subgraph partition of the kernel's CFG.
    pub partition: RegisterIntervalPartition,
    /// Liveness information (always computed; dead-operand bits are only
    /// written into the kernel when [`CompilerOptions::annotate_liveness`]
    /// is set).
    pub liveness: Liveness,
    /// PREFETCH bit-vectors and code-size accounting.
    pub prefetch: PrefetchSchedule,
    /// Aggregate statistics.
    pub stats: CompileStats,
}

/// Compiles a kernel: forms prefetch subgraphs, computes liveness, and
/// schedules PREFETCH operations.
///
/// # Errors
///
/// Returns [`CompileError::IntervalBudgetTooSmall`] if a single instruction
/// of the kernel touches more registers than
/// [`CompilerOptions::max_registers_per_interval`] allows, and propagates any
/// structural error discovered while re-validating a split kernel.
pub fn compile(kernel: &Kernel, options: &CompilerOptions) -> Result<CompiledKernel, CompileError> {
    let n = options.max_registers_per_interval;
    let (mut kernel, mut partition) = match options.subgraph_kind {
        PrefetchSubgraphKind::RegisterInterval => {
            register_interval::form_register_intervals(kernel, n)?
        }
        PrefetchSubgraphKind::Strand => strand::form_strands(kernel, n)?,
    };
    if options.reduce_intervals && options.subgraph_kind == PrefetchSubgraphKind::RegisterInterval {
        partition = reduce::reduce_intervals(&kernel, &partition, n);
    }
    let mut liveness = Liveness::analyze(&kernel);
    if options.annotate_liveness {
        liveness.annotate_dead_operands(&mut kernel);
        // Re-analyze so the returned liveness reflects the annotated kernel
        // (the sets themselves are unchanged by annotation).
        liveness = Liveness::analyze(&kernel);
    }
    let prefetch = PrefetchSchedule::build(&kernel, &partition, &CodeSizeModel::default());
    let stats = CompileStats {
        interval_count: partition.interval_count(),
        block_count: kernel.cfg.block_count(),
        mean_working_set: partition.mean_working_set(),
        max_working_set: partition.max_working_set(),
        static_instructions: kernel.static_instruction_count(),
        code_size_overhead: prefetch.code_size_overhead(),
    };
    Ok(CompiledKernel {
        kernel,
        partition,
        liveness,
        prefetch,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_isa::straight_line_kernel;

    #[test]
    fn compile_straight_line_default_options() {
        let kernel = straight_line_kernel("k", 32, 300);
        let compiled = compile(&kernel, &CompilerOptions::default()).unwrap();
        assert!(
            compiled.stats.interval_count >= 2,
            "32 registers cannot fit in one 16-register interval"
        );
        assert!(compiled.stats.max_working_set <= 16);
        assert_eq!(compiled.stats.static_instructions, 300);
        assert!(compiled.stats.code_size_overhead > 0.0);
    }

    #[test]
    fn compile_with_strands_produces_partition() {
        let kernel = straight_line_kernel("k", 16, 100);
        let opts = CompilerOptions::default().with_strands();
        let compiled = compile(&kernel, &opts).unwrap();
        assert!(compiled.stats.interval_count >= 1);
        assert!(compiled.stats.max_working_set <= 16);
    }

    #[test]
    fn options_builders() {
        let o = CompilerOptions::default()
            .with_max_registers(32)
            .with_strands();
        assert_eq!(o.max_registers_per_interval, 32);
        assert_eq!(o.subgraph_kind, PrefetchSubgraphKind::Strand);
    }

    #[test]
    fn interval_budget_too_small_is_an_error() {
        let kernel = straight_line_kernel("k", 8, 10);
        let opts = CompilerOptions::default().with_max_registers(1);
        assert!(matches!(
            compile(&kernel, &opts),
            Err(CompileError::IntervalBudgetTooSmall { .. })
        ));
    }
}
