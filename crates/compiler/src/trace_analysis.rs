//! Dynamic register-interval length measurement (Table 4 of the paper).
//!
//! Two quantities are measured over a kernel's dynamic trace:
//!
//! * the **real** register-interval length: the number of dynamic
//!   instructions executed between two PREFETCH operations, i.e. between
//!   entries into different register-intervals of the static partition, and
//! * the **optimal** register-interval length: the length of the longest
//!   consecutive runs of dynamic instructions whose combined register
//!   working-set fits the budget, computed greedily over the raw trace with
//!   no control-flow constraints at all.
//!
//! The ratio of the two exposes how much the single-entry control-flow
//! constraint of register-intervals costs relative to an oracle partitioning
//! of the dynamic instruction stream.

use serde::{Deserialize, Serialize};

use ltrf_isa::trace::TraceWalker;
use ltrf_isa::{Kernel, RegSet};

use crate::RegisterIntervalPartition;

/// Length statistics over a set of dynamic interval lengths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct IntervalLengthStats {
    /// Number of dynamic intervals observed.
    pub count: u64,
    /// Mean length in dynamic instructions.
    pub mean: f64,
    /// Minimum length.
    pub min: u64,
    /// Maximum length.
    pub max: u64,
}

impl IntervalLengthStats {
    /// Computes statistics from a list of lengths. Returns the default (all
    /// zeros) for an empty list.
    #[must_use]
    pub fn from_lengths(lengths: &[u64]) -> Self {
        if lengths.is_empty() {
            return IntervalLengthStats::default();
        }
        let count = lengths.len() as u64;
        let sum: u64 = lengths.iter().sum();
        IntervalLengthStats {
            count,
            mean: sum as f64 / count as f64,
            min: *lengths.iter().min().expect("non-empty"),
            max: *lengths.iter().max().expect("non-empty"),
        }
    }
}

/// Result of the Table 4 measurement for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct IntervalLengthReport {
    /// Lengths of the intervals actually produced by the compiler partition.
    pub real: IntervalLengthStats,
    /// Lengths of the oracle (control-flow-unconstrained) partitioning.
    pub optimal: IntervalLengthStats,
}

impl IntervalLengthReport {
    /// Ratio of real to optimal mean lengths (≤ 1.0 in practice).
    #[must_use]
    pub fn mean_ratio(&self) -> f64 {
        if self.optimal.mean == 0.0 {
            return 0.0;
        }
        self.real.mean / self.optimal.mean
    }
}

/// Measures real register-interval lengths: dynamic instructions executed
/// between interval crossings of `partition`, walking the kernel with the
/// given seed.
#[must_use]
pub fn real_interval_lengths(
    kernel: &Kernel,
    partition: &RegisterIntervalPartition,
    seed: u64,
) -> Vec<u64> {
    let mut lengths = Vec::new();
    let mut current_interval = None;
    let mut run: u64 = 0;
    TraceWalker::new(kernel, seed).walk(|entry| {
        let interval = partition.interval_of(entry.block);
        match current_interval {
            Some(ci) if ci == interval => run += 1,
            Some(_) => {
                lengths.push(run);
                current_interval = Some(interval);
                run = 1;
            }
            None => {
                current_interval = Some(interval);
                run = 1;
            }
        }
    });
    if run > 0 {
        lengths.push(run);
    }
    lengths
}

/// Measures optimal register-interval lengths: the greedy partitioning of the
/// dynamic instruction stream into maximal runs whose register working-set
/// fits `max_registers`.
#[must_use]
pub fn optimal_interval_lengths(kernel: &Kernel, max_registers: usize, seed: u64) -> Vec<u64> {
    let mut lengths = Vec::new();
    let mut working_set = RegSet::new();
    let mut run: u64 = 0;
    TraceWalker::new(kernel, seed).walk(|entry| {
        let touched = entry.instruction.touched();
        let candidate = working_set.union(&touched);
        if candidate.len() <= max_registers {
            working_set = candidate;
            run += 1;
        } else {
            if run > 0 {
                lengths.push(run);
            }
            working_set = touched;
            run = 1;
        }
    });
    if run > 0 {
        lengths.push(run);
    }
    lengths
}

/// Produces the full Table 4 style report for one kernel.
#[must_use]
pub fn interval_length_report(
    kernel: &Kernel,
    partition: &RegisterIntervalPartition,
    max_registers: usize,
    seed: u64,
) -> IntervalLengthReport {
    IntervalLengthReport {
        real: IntervalLengthStats::from_lengths(&real_interval_lengths(kernel, partition, seed)),
        optimal: IntervalLengthStats::from_lengths(&optimal_interval_lengths(
            kernel,
            max_registers,
            seed,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompilerOptions};
    use ltrf_isa::{straight_line_kernel, ArchReg, KernelBuilder, Opcode};

    #[test]
    fn stats_from_lengths() {
        let s = IntervalLengthStats::from_lengths(&[2, 4, 6]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 4.0).abs() < f64::EPSILON);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 6);
        assert_eq!(IntervalLengthStats::from_lengths(&[]).count, 0);
    }

    #[test]
    fn real_lengths_cover_whole_trace() {
        let kernel = straight_line_kernel("k", 32, 120);
        let compiled = compile(&kernel, &CompilerOptions::default()).unwrap();
        let lengths = real_interval_lengths(&compiled.kernel, &compiled.partition, 3);
        let total: u64 = lengths.iter().sum();
        assert_eq!(
            total, 120,
            "every dynamic instruction belongs to an interval"
        );
        assert!(lengths.len() >= 2);
    }

    #[test]
    fn optimal_lengths_cover_whole_trace_and_dominate_real() {
        // Loop-heavy kernel: real intervals are constrained by control flow.
        let mut b = KernelBuilder::new("loopy", 48);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        for i in 0..8 {
            b.push(entry, Opcode::Mov, Some(ArchReg::new(i)), &[]);
        }
        b.jump(entry, body);
        for i in 0..10 {
            b.push(
                body,
                Opcode::FAlu,
                Some(ArchReg::new(16 + i)),
                &[ArchReg::new(i % 8)],
            );
        }
        b.loop_branch(body, body, exit, 20);
        b.exit(exit);
        let kernel = b.build().unwrap();
        let compiled = compile(&kernel, &CompilerOptions::default()).unwrap();
        let report = interval_length_report(&compiled.kernel, &compiled.partition, 16, 7);
        let real_total = report.real.mean * report.real.count as f64;
        let optimal_total = report.optimal.mean * report.optimal.count as f64;
        assert!(
            (real_total - optimal_total).abs() < 1e-6,
            "both partition the same trace"
        );
        assert!(
            report.optimal.mean >= report.real.mean * 0.99,
            "optimal mean ({}) must be at least the real mean ({})",
            report.optimal.mean,
            report.real.mean
        );
        assert!(report.mean_ratio() <= 1.01);
        assert!(report.mean_ratio() > 0.0);
    }

    #[test]
    fn optimal_respects_budget() {
        let kernel = straight_line_kernel("k", 64, 256);
        let lengths = optimal_interval_lengths(&kernel, 16, 5);
        let total: u64 = lengths.iter().sum();
        assert_eq!(total, 256);
        // With 64 registers cycling and a 16-register budget, segments are
        // bounded by roughly the number of instructions that fit 16 regs.
        assert!(lengths.iter().all(|&l| l <= 64));
    }
}
