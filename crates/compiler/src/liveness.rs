//! Static register-liveness analysis.
//!
//! LTRF+ (the operand-liveness-aware variant of LTRF) relies on knowing, at
//! every instruction, which source operands will never be read again — the
//! *dead operand bit* of each operand. The hardware uses these bits to keep a
//! per-warp liveness bit-vector in the Warp Control Block so that dead
//! registers are neither written back when a warp is deactivated nor fetched
//! when it is reactivated.
//!
//! This module implements the classic backward data-flow liveness analysis
//! over the kernel CFG and derives the conservative dead-operand bits the
//! paper assumes are produced at compile time.

use serde::{Deserialize, Serialize};

use ltrf_isa::{BlockId, Kernel, RegSet};

/// Per-block liveness information.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
}

impl Liveness {
    /// Runs the backward data-flow analysis to a fixpoint.
    #[must_use]
    pub fn analyze(kernel: &Kernel) -> Self {
        let cfg = &kernel.cfg;
        let n = cfg.block_count();
        let mut use_sets = Vec::with_capacity(n);
        let mut def_sets = Vec::with_capacity(n);
        for block in cfg.blocks() {
            let (u, d) = block.use_def_sets();
            use_sets.push(u);
            def_sets.push(d);
        }
        let mut live_in = vec![RegSet::new(); n];
        let mut live_out = vec![RegSet::new(); n];
        // Iterate in reverse of reverse-postorder (i.e. roughly postorder) so
        // the backward analysis converges quickly.
        let order: Vec<BlockId> = cfg.reverse_postorder().into_iter().rev().collect();
        loop {
            let mut changed = false;
            for &b in &order {
                let idx = b.index();
                let mut out = RegSet::new();
                for s in cfg.successors(b) {
                    out.union_with(&live_in[s.index()]);
                }
                let inn = use_sets[idx].union(&out.difference(&def_sets[idx]));
                if out != live_out[idx] || inn != live_in[idx] {
                    live_out[idx] = out;
                    live_in[idx] = inn;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live at the entry of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range for the analyzed kernel.
    #[must_use]
    pub fn live_in(&self, block: BlockId) -> &RegSet {
        &self.live_in[block.index()]
    }

    /// Registers live at the exit of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range for the analyzed kernel.
    #[must_use]
    pub fn live_out(&self, block: BlockId) -> &RegSet {
        &self.live_out[block.index()]
    }

    /// Number of blocks covered by the analysis.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.live_in.len()
    }

    /// Writes conservative dead-operand bits into every instruction of
    /// `kernel`.
    ///
    /// A source operand is marked dead when, walking the block backwards from
    /// its live-out set, the register is not live immediately after the
    /// instruction. This is exactly the "dead operand bit" information the
    /// paper's LTRF+ consumes.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` has a different number of blocks than the kernel
    /// this analysis was computed for.
    pub fn annotate_dead_operands(&self, kernel: &mut Kernel) {
        assert_eq!(
            kernel.cfg.block_count(),
            self.live_in.len(),
            "liveness was computed for a different kernel"
        );
        for idx in 0..kernel.cfg.block_count() {
            let block_id = BlockId(idx as u32);
            let mut live = *self.live_out(block_id);
            let block = kernel.cfg.block_mut(block_id);
            // Walk instructions backwards.
            let count = block.instructions().len();
            for i in (0..count).rev() {
                let (dead_mask, reads, writes) = {
                    let inst = &block.instructions()[i];
                    let writes = inst.writes();
                    // Live set just after this instruction is `live`.
                    let mut mask = 0u8;
                    for (op_idx, &src) in inst.srcs().iter().enumerate() {
                        if !live.contains(src) {
                            mask |= 1 << op_idx;
                        }
                    }
                    (mask, inst.reads(), writes)
                };
                let inst = &mut block.instructions_mut()[i];
                inst.set_dead_mask(dead_mask);
                // Update live set for the instruction above: kill defs, gen uses.
                live = live.difference(&writes).union(&reads);
            }
        }
    }

    /// Returns the maximum number of simultaneously live registers at any
    /// block boundary. This is a lower bound on the register pressure the
    /// register allocator produced.
    #[must_use]
    pub fn peak_block_pressure(&self) -> usize {
        self.live_in
            .iter()
            .chain(self.live_out.iter())
            .map(RegSet::len)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_isa::{ArchReg, BranchBehavior, KernelBuilder, Opcode};

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    /// r0 defined in entry, used in both branch sides; r1 defined and used
    /// only on the left side; r2 defined in entry but never used.
    fn diamond_kernel() -> Kernel {
        let mut b = KernelBuilder::new("d", 8);
        let entry = b.entry_block();
        let left = b.add_block();
        let right = b.add_block();
        let join = b.add_block();
        b.push(entry, Opcode::Mov, Some(r(0)), &[]);
        b.push(entry, Opcode::Mov, Some(r(2)), &[]);
        b.branch(entry, left, right, BranchBehavior::balanced());
        b.push(left, Opcode::IAlu, Some(r(1)), &[r(0)]);
        b.push(left, Opcode::IAlu, Some(r(3)), &[r(1)]);
        b.jump(left, join);
        b.push(right, Opcode::IAlu, Some(r(3)), &[r(0)]);
        b.jump(right, join);
        b.push(join, Opcode::StoreGlobal, None, &[r(3)]);
        b.exit(join);
        b.build().unwrap()
    }

    #[test]
    fn live_sets_of_diamond() {
        let k = diamond_kernel();
        let l = Liveness::analyze(&k);
        // r0 is live out of the entry block (used on both sides).
        assert!(l.live_out(BlockId(0)).contains(r(0)));
        // r2 is dead everywhere after its definition.
        assert!(!l.live_out(BlockId(0)).contains(r(2)));
        // r3 is live into the join block.
        assert!(l.live_in(BlockId(3)).contains(r(3)));
        // Nothing is live out of the exit block.
        assert!(l.live_out(BlockId(3)).is_empty());
        // Nothing is live into the entry block (no upward-exposed uses).
        assert!(l.live_in(BlockId(0)).is_empty());
        assert_eq!(l.block_count(), 4);
        assert!(l.peak_block_pressure() >= 1);
    }

    #[test]
    fn loop_carried_register_stays_live() {
        let mut b = KernelBuilder::new("loop", 8);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.push(entry, Opcode::Mov, Some(r(0)), &[]);
        b.jump(entry, body);
        // r0 is both read and written in the loop: live around the back edge.
        b.push(body, Opcode::IAlu, Some(r(0)), &[r(0)]);
        b.loop_branch(body, body, exit, 10);
        b.push(exit, Opcode::StoreGlobal, None, &[r(0)]);
        b.exit(exit);
        let k = b.build().unwrap();
        let l = Liveness::analyze(&k);
        assert!(l.live_in(BlockId(1)).contains(r(0)));
        assert!(l.live_out(BlockId(1)).contains(r(0)));
    }

    #[test]
    fn dead_operand_annotation_marks_last_uses() {
        let mut k = diamond_kernel();
        let l = Liveness::analyze(&k);
        l.annotate_dead_operands(&mut k);
        // In the left block, the first instruction reads r0; r0 is not used
        // again on that path, so the operand is dead.
        let left = k.cfg.block(BlockId(1));
        assert!(
            left.instructions()[0].is_src_dead(0),
            "r0 dies at its last use"
        );
        // The second instruction reads r1, which dies immediately.
        assert!(left.instructions()[1].is_src_dead(0));
        // In the join block the store reads r3 and nothing follows: dead.
        let join = k.cfg.block(BlockId(3));
        assert!(join.instructions()[0].is_src_dead(0));
    }

    #[test]
    fn loop_carried_operand_is_not_dead() {
        let mut b = KernelBuilder::new("loop", 8);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.push(entry, Opcode::Mov, Some(r(0)), &[]);
        b.jump(entry, body);
        b.push(body, Opcode::IAlu, Some(r(1)), &[r(0)]);
        b.loop_branch(body, body, exit, 10);
        b.exit(exit);
        let mut k = b.build().unwrap();
        let l = Liveness::analyze(&k);
        l.annotate_dead_operands(&mut k);
        // r0 is read again on the next loop iteration, so it is NOT dead.
        assert!(!k.cfg.block(BlockId(1)).instructions()[0].is_src_dead(0));
    }

    #[test]
    fn analysis_reaches_fixpoint_on_straight_line() {
        let k = ltrf_isa::straight_line_kernel("s", 16, 100);
        let l = Liveness::analyze(&k);
        assert_eq!(l.block_count(), 1);
        assert!(l.live_out(BlockId(0)).is_empty());
    }
}
