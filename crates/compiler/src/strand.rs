//! Strand formation: the more constrained prefetch subgraphs used by the
//! software-managed hierarchical register file (SHRF) comparison point.
//!
//! A *strand* (following the terminology the paper adopts from the
//! compile-time-managed register-hierarchy work it compares against) is a
//! prefetch subgraph that, unlike a register-interval, may not contain
//! long-/variable-latency operations in its interior and may not contain
//! backward branches. In practice a strand therefore ends at
//!
//! * every long-latency instruction (global/local memory access, barrier),
//! * every basic-block boundary (we conservatively never let a strand span
//!   blocks, because any successor might be a loop header or a join point),
//! * and whenever its register working-set would exceed the budget.
//!
//! The consequence — much smaller working-sets and far more frequent
//! PREFETCH points — is exactly the effect §6.6 of the paper measures when it
//! compares LTRF (register-interval) against LTRF (strand) and SHRF.

use ltrf_isa::{Kernel, RegSet, RegisterSensitivity};

use crate::{CompileError, IntervalId, RegisterInterval, RegisterIntervalPartition};

/// Forms strands over `kernel` with a per-strand register budget of
/// `max_registers`.
///
/// Blocks are split so every strand is exactly one basic block; the returned
/// kernel therefore usually has more blocks than the input. The partition
/// maps every block to its strand.
///
/// # Errors
///
/// Returns [`CompileError::IntervalBudgetTooSmall`] if a single instruction
/// touches more than `max_registers` registers.
pub fn form_strands(
    kernel: &Kernel,
    max_registers: usize,
) -> Result<(Kernel, RegisterIntervalPartition), CompileError> {
    for block in kernel.cfg.blocks() {
        for inst in block.instructions() {
            let needed = inst.touched().len();
            if needed > max_registers {
                return Err(CompileError::IntervalBudgetTooSmall {
                    block: block.id(),
                    required: needed,
                    budget: max_registers,
                });
            }
        }
    }

    let mut cfg = kernel.cfg.clone();
    // Split every block at strand boundaries: after each long-latency
    // instruction and whenever the register budget would overflow.
    // Newly created blocks are appended to the CFG, so iterate until no block
    // needs further splitting.
    let mut cursor = 0;
    while cursor < cfg.block_count() {
        let block_id = ltrf_isa::BlockId(cursor as u32);
        let split_at = {
            let block = cfg.block(block_id);
            let mut ws = RegSet::new();
            let mut cut = None;
            for (idx, inst) in block.instructions().iter().enumerate() {
                let candidate = ws.union(&inst.touched());
                if candidate.len() > max_registers {
                    cut = Some(idx);
                    break;
                }
                ws = candidate;
                // A long-latency operation ends the strand *after* itself.
                if inst.opcode().is_long_latency() && idx + 1 < block.instructions().len() {
                    cut = Some(idx + 1);
                    break;
                }
            }
            cut
        };
        if let Some(at) = split_at {
            cfg.split_block(block_id, at);
        }
        cursor += 1;
    }

    // Every (possibly split) block is its own strand.
    let mut intervals = Vec::with_capacity(cfg.block_count());
    let mut assignment = Vec::with_capacity(cfg.block_count());
    for block in cfg.blocks() {
        let id = IntervalId(block.id().0);
        intervals.push(RegisterInterval {
            id,
            header: block.id(),
            blocks: vec![block.id()],
            working_set: block.touched_registers(),
        });
        assignment.push(id);
    }
    let partition = RegisterIntervalPartition::new(intervals, assignment, max_registers);
    let rebuilt = Kernel::new(
        kernel.name().to_string(),
        cfg,
        kernel.regs_per_thread(),
        kernel.launch(),
        if kernel.is_register_sensitive() {
            RegisterSensitivity::Sensitive
        } else {
            RegisterSensitivity::Insensitive
        },
    )?;
    Ok((rebuilt, partition))
}

/// A partition formed by [`form_strands`]; alias kept for readability at call
/// sites that want to emphasise strands rather than register-intervals.
pub type StrandPartition = RegisterIntervalPartition;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register_interval::form_register_intervals;
    use ltrf_isa::{straight_line_kernel, ArchReg, KernelBuilder, Opcode};

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    #[test]
    fn strands_split_at_long_latency_ops() {
        let mut b = KernelBuilder::new("mem", 16);
        let e = b.entry_block();
        b.push(e, Opcode::FAlu, Some(r(0)), &[r(1)]);
        b.push(e, Opcode::LoadGlobal, Some(r(2)), &[r(0)]);
        b.push(e, Opcode::FAlu, Some(r(3)), &[r(2)]);
        b.push(e, Opcode::FAlu, Some(r(4)), &[r(3)]);
        b.exit(e);
        let kernel = b.build().unwrap();
        let (k2, p) = form_strands(&kernel, 16).unwrap();
        // The load ends the first strand, so there are at least 2 blocks.
        assert!(k2.cfg.block_count() >= 2);
        assert_eq!(p.interval_count(), k2.cfg.block_count());
        assert!(p.invariant_violations(&k2.cfg).is_empty());
    }

    #[test]
    fn strands_respect_register_budget() {
        let kernel = straight_line_kernel("wide", 32, 64);
        let (k2, p) = form_strands(&kernel, 8).unwrap();
        assert!(p.max_working_set() <= 8);
        assert!(p.invariant_violations(&k2.cfg).is_empty());
        assert_eq!(
            k2.static_instruction_count(),
            kernel.static_instruction_count()
        );
    }

    #[test]
    fn strands_are_finer_than_register_intervals() {
        // A loop whose body fits in one register-interval but contains a
        // global load: the register-interval keeps one PREFETCH for the loop,
        // the strand partition needs at least one per block.
        let mut b = KernelBuilder::new("loop", 16);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.push(entry, Opcode::Mov, Some(r(0)), &[]);
        b.jump(entry, body);
        b.push(body, Opcode::LoadGlobal, Some(r(1)), &[r(0)]);
        b.push(body, Opcode::FAlu, Some(r(2)), &[r(1)]);
        b.loop_branch(body, body, exit, 8);
        b.exit(exit);
        let kernel = b.build().unwrap();
        let (_, ri) = form_register_intervals(&kernel, 16).unwrap();
        let (_, strands) = form_strands(&kernel, 16).unwrap();
        assert!(strands.interval_count() > ri.interval_count());
    }

    #[test]
    fn strand_budget_error() {
        let mut b = KernelBuilder::new("wide", 8);
        let e = b.entry_block();
        b.push(e, Opcode::FFma, Some(r(0)), &[r(1), r(2), r(3)]);
        b.exit(e);
        let kernel = b.build().unwrap();
        assert!(form_strands(&kernel, 2).is_err());
    }
}
