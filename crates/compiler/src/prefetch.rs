//! PREFETCH scheduling and code-size accounting.
//!
//! Each register-interval begins with one PREFETCH operation carrying a
//! 256-bit bit-vector naming the interval's register working-set. The
//! hardware decodes the bit-vector into register indices, allocates
//! register-file-cache space, and fills the cache from the main register
//! file. This module derives those bit-vectors from a
//! [`RegisterIntervalPartition`] and models the code-size overhead (§4.3 of
//! the paper: ~7% when only bit-vectors are embedded, ~9% with an explicit
//! prefetch instruction per site).

use serde::{Deserialize, Serialize};

use ltrf_isa::{BlockId, Kernel, RegSet};

use crate::{IntervalId, RegisterIntervalPartition};

/// How PREFETCH operations are encoded in the instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetchEncoding {
    /// Only the 256-bit bit-vector is embedded; every ordinary instruction
    /// carries an extra bit announcing that a bit-vector follows it.
    EmbeddedBitVector,
    /// An explicit PREFETCH instruction precedes each bit-vector.
    ExplicitInstruction,
}

/// Models the static code-size cost of PREFETCH operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeSizeModel {
    /// Size of an ordinary instruction, in bytes.
    pub instruction_bytes: usize,
    /// Size of a PREFETCH bit-vector, in bytes (256 bits).
    pub bitvector_bytes: usize,
    /// Encoding scheme in use.
    pub encoding: PrefetchEncoding,
}

impl Default for CodeSizeModel {
    fn default() -> Self {
        CodeSizeModel {
            instruction_bytes: 8,
            bitvector_bytes: 32,
            encoding: PrefetchEncoding::EmbeddedBitVector,
        }
    }
}

impl CodeSizeModel {
    /// Bytes added per PREFETCH site under this model.
    #[must_use]
    pub const fn bytes_per_site(&self) -> usize {
        match self.encoding {
            PrefetchEncoding::EmbeddedBitVector => self.bitvector_bytes,
            PrefetchEncoding::ExplicitInstruction => self.bitvector_bytes + self.instruction_bytes,
        }
    }
}

/// The PREFETCH schedule of a compiled kernel: which bit-vector is issued at
/// the entry of which block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefetchSchedule {
    /// Bit-vector per interval, indexed by interval id.
    bitvectors: Vec<RegSet>,
    /// For every block, the interval whose PREFETCH fires when the block is
    /// entered from a different interval.
    block_interval: Vec<IntervalId>,
    /// Static code size of the original kernel, in bytes.
    original_code_bytes: usize,
    /// Static code size including PREFETCH overhead, in bytes.
    augmented_code_bytes: usize,
}

impl PrefetchSchedule {
    /// Builds the schedule for `kernel` under `partition`.
    #[must_use]
    pub fn build(
        kernel: &Kernel,
        partition: &RegisterIntervalPartition,
        code_model: &CodeSizeModel,
    ) -> Self {
        let bitvectors = partition.intervals().map(|i| i.working_set).collect();
        let block_interval = (0..kernel.cfg.block_count())
            .map(|i| partition.interval_of(BlockId(i as u32)))
            .collect();
        let original_code_bytes = kernel.static_instruction_count() * code_model.instruction_bytes;
        let augmented_code_bytes =
            original_code_bytes + partition.prefetch_site_count() * code_model.bytes_per_site();
        PrefetchSchedule {
            bitvectors,
            block_interval,
            original_code_bytes,
            augmented_code_bytes,
        }
    }

    /// Returns the PREFETCH bit-vector of an interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is out of range.
    #[must_use]
    pub fn bitvector(&self, interval: IntervalId) -> &RegSet {
        &self.bitvectors[interval.index()]
    }

    /// Returns the interval a block belongs to (and therefore which PREFETCH
    /// covers it).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn interval_of(&self, block: BlockId) -> IntervalId {
        self.block_interval[block.index()]
    }

    /// Returns `true` if moving from `from` to `to` crosses an interval
    /// boundary and therefore triggers a PREFETCH.
    ///
    /// # Panics
    ///
    /// Panics if either block is out of range.
    #[must_use]
    pub fn crosses_interval(&self, from: BlockId, to: BlockId) -> bool {
        self.interval_of(from) != self.interval_of(to)
    }

    /// Number of PREFETCH sites in the kernel.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.bitvectors.len()
    }

    /// Relative code-size increase caused by PREFETCH metadata (e.g. `0.07`
    /// for 7%).
    #[must_use]
    pub fn code_size_overhead(&self) -> f64 {
        if self.original_code_bytes == 0 {
            return 0.0;
        }
        (self.augmented_code_bytes - self.original_code_bytes) as f64
            / self.original_code_bytes as f64
    }

    /// Static code size without PREFETCH metadata, in bytes.
    #[must_use]
    pub const fn original_code_bytes(&self) -> usize {
        self.original_code_bytes
    }

    /// Static code size including PREFETCH metadata, in bytes.
    #[must_use]
    pub const fn augmented_code_bytes(&self) -> usize {
        self.augmented_code_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register_interval::form_register_intervals;
    use ltrf_isa::straight_line_kernel;

    #[test]
    fn schedule_covers_all_intervals_and_blocks() {
        let kernel = straight_line_kernel("k", 32, 200);
        let (k2, p) = form_register_intervals(&kernel, 16).unwrap();
        let sched = PrefetchSchedule::build(&k2, &p, &CodeSizeModel::default());
        assert_eq!(sched.site_count(), p.interval_count());
        for block in k2.cfg.blocks() {
            let interval = sched.interval_of(block.id());
            let bv = sched.bitvector(interval);
            assert!(block.touched_registers().is_subset(bv));
        }
    }

    #[test]
    fn code_size_overhead_scales_with_sites() {
        let kernel = straight_line_kernel("k", 64, 400);
        let (k2, p) = form_register_intervals(&kernel, 16).unwrap();
        let embedded = PrefetchSchedule::build(&k2, &p, &CodeSizeModel::default());
        let explicit = PrefetchSchedule::build(
            &k2,
            &p,
            &CodeSizeModel {
                encoding: PrefetchEncoding::ExplicitInstruction,
                ..CodeSizeModel::default()
            },
        );
        assert!(embedded.code_size_overhead() > 0.0);
        assert!(explicit.code_size_overhead() > embedded.code_size_overhead());
        assert!(explicit.augmented_code_bytes() > explicit.original_code_bytes());
    }

    #[test]
    fn crossing_detection() {
        let kernel = straight_line_kernel("k", 32, 64);
        let (k2, p) = form_register_intervals(&kernel, 16).unwrap();
        let sched = PrefetchSchedule::build(&k2, &p, &CodeSizeModel::default());
        // The split produced at least two blocks in different intervals.
        let b0 = BlockId(0);
        let mut found_crossing = false;
        for s in k2.cfg.successors(b0) {
            if sched.crosses_interval(b0, s) {
                found_crossing = true;
            }
        }
        assert!(
            found_crossing,
            "split straight-line kernel must cross intervals"
        );
        assert!(!sched.crosses_interval(b0, b0));
    }

    #[test]
    fn bytes_per_site_depends_on_encoding() {
        let m = CodeSizeModel::default();
        assert_eq!(m.bytes_per_site(), 32);
        let e = CodeSizeModel {
            encoding: PrefetchEncoding::ExplicitInstruction,
            ..m
        };
        assert_eq!(e.bytes_per_site(), 40);
    }
}
