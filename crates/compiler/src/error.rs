//! Errors produced by the LTRF compiler passes.

use std::fmt;

use ltrf_isa::{BlockId, IsaError};

/// Errors produced while forming prefetch subgraphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// A single instruction touches more registers than the per-interval
    /// register budget allows, so no valid partition exists.
    IntervalBudgetTooSmall {
        /// The block containing the offending instruction.
        block: BlockId,
        /// Registers touched by the offending instruction.
        required: usize,
        /// The configured per-interval register budget.
        budget: usize,
    },
    /// A kernel produced by block splitting failed re-validation. This
    /// indicates a bug in the splitting logic rather than bad user input.
    InvalidSplitKernel(IsaError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::IntervalBudgetTooSmall {
                block,
                required,
                budget,
            } => write!(
                f,
                "an instruction in {block} touches {required} registers but the register-interval budget is only {budget}"
            ),
            CompileError::InvalidSplitKernel(e) => {
                write!(f, "internal error: split kernel failed validation: {e}")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::InvalidSplitKernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for CompileError {
    fn from(value: IsaError) -> Self {
        CompileError::InvalidSplitKernel(value)
    }
}
