//! Register-interval formation (Algorithm 1 of the LTRF paper).
//!
//! A *register-interval* is a subgraph of the kernel's CFG that
//!
//! 1. has a single control-flow entry point, and
//! 2. uses at most `N` registers, where `N` is the size of one warp's
//!    partition of the register-file cache.
//!
//! The first pass of the paper's formation algorithm grows each interval
//! greedily from a header block: a candidate block joins the current interval
//! when *all* of its predecessors already belong to the interval and the
//! accumulated register list still fits the budget. Basic blocks whose own
//! register demand overflows the budget are split. Blocks that cannot join
//! (loop headers reached through back edges, join points with predecessors in
//! other intervals) become headers of new intervals. The second pass
//! ([`crate::reduce`]) later merges intervals whose union still fits.
//!
//! ## Deviation from the paper's pseudo-code
//!
//! The paper admits a block into an interval when the union of its
//! predecessors' `output_list`s fits the budget, which bounds every *path*
//! through the interval but can let the union over divergent paths slightly
//! exceed `N`. Because the hardware sizes each warp's register-cache
//! partition to exactly `N` registers, this implementation uses the slightly
//! stronger condition that the union of the *entire interval's* working-set
//! with the candidate block's registers fits, so the partition invariant
//! `|working_set| ≤ N` always holds. This makes the intervals marginally more
//! conservative (never larger) than the paper's.

use std::collections::BTreeSet;

use ltrf_isa::{BlockId, Cfg, Kernel, RegSet, RegisterSensitivity};

use crate::{CompileError, IntervalId, RegisterInterval, RegisterIntervalPartition};

/// Per-block bookkeeping used while forming intervals.
#[derive(Debug, Clone, Default)]
struct BlockState {
    interval: Option<u32>,
    input_list: RegSet,
    output_list: RegSet,
    traversed: bool,
}

/// Forms register-intervals over `kernel` with a per-interval budget of
/// `max_registers`.
///
/// Returns the (possibly block-split) kernel together with the partition.
///
/// # Errors
///
/// Returns [`CompileError::IntervalBudgetTooSmall`] if a single instruction
/// touches more than `max_registers` registers, and
/// [`CompileError::InvalidSplitKernel`] if block splitting produced an
/// invalid kernel (which would be an internal bug).
pub fn form_register_intervals(
    kernel: &Kernel,
    max_registers: usize,
) -> Result<(Kernel, RegisterIntervalPartition), CompileError> {
    // Reject impossible budgets up front so the splitter cannot loop.
    for block in kernel.cfg.blocks() {
        for inst in block.instructions() {
            let needed = inst.touched().len();
            if needed > max_registers {
                return Err(CompileError::IntervalBudgetTooSmall {
                    block: block.id(),
                    required: needed,
                    budget: max_registers,
                });
            }
        }
    }

    let mut cfg = kernel.cfg.clone();
    let mut states: Vec<BlockState> = vec![BlockState::default(); cfg.block_count()];
    let mut interval_ws: Vec<RegSet> = Vec::new();
    let mut interval_header: Vec<BlockId> = Vec::new();

    let mut worklist: Vec<BlockId> = Vec::new();
    let entry = cfg.entry();
    new_interval(&mut interval_ws, &mut interval_header, entry, &mut states);
    worklist.push(entry);

    while let Some(block) = worklist.pop() {
        let interval = states[block.index()]
            .interval
            .expect("worklist blocks always have an interval");
        traverse(
            &mut cfg,
            &mut states,
            &mut interval_ws,
            &mut interval_header,
            &mut worklist,
            block,
            max_registers,
        );
        // Greedily absorb blocks whose predecessors all belong to `interval`.
        loop {
            let candidate = find_absorbable(&cfg, &states, &interval_ws, interval, max_registers);
            let Some(h) = candidate else { break };
            let input = union_of_pred_outputs(&cfg, &states, h);
            states[h.index()].interval = Some(interval);
            states[h.index()].input_list = input;
            traverse(
                &mut cfg,
                &mut states,
                &mut interval_ws,
                &mut interval_header,
                &mut worklist,
                h,
                max_registers,
            );
        }
        // Seed new intervals from the interval's external successors.
        let successors = interval_successors(&cfg, &states, interval);
        for s in successors {
            if states[s.index()].interval.is_none() {
                new_interval(&mut interval_ws, &mut interval_header, s, &mut states);
                worklist.push(s);
            }
        }
    }

    // Any block not yet assigned (possible only if unreachable, which
    // validation forbids) gets its own interval for robustness.
    for idx in 0..cfg.block_count() {
        if states[idx].interval.is_none() {
            let b = BlockId(idx as u32);
            new_interval(&mut interval_ws, &mut interval_header, b, &mut states);
            let touched = cfg.block(b).touched_registers();
            states[idx].output_list = touched;
            let id = states[idx].interval.unwrap();
            interval_ws[id as usize] = touched;
        }
    }

    let partition = build_partition(&cfg, &states, &interval_ws, &interval_header, max_registers);
    let rebuilt = Kernel::new(
        kernel.name().to_string(),
        cfg,
        kernel.regs_per_thread(),
        kernel.launch(),
        if kernel.is_register_sensitive() {
            RegisterSensitivity::Sensitive
        } else {
            RegisterSensitivity::Insensitive
        },
    )?;
    Ok((rebuilt, partition))
}

fn new_interval(
    interval_ws: &mut Vec<RegSet>,
    interval_header: &mut Vec<BlockId>,
    header: BlockId,
    states: &mut [BlockState],
) -> u32 {
    let id = interval_ws.len() as u32;
    interval_ws.push(RegSet::new());
    interval_header.push(header);
    states[header.index()].interval = Some(id);
    states[header.index()].input_list = RegSet::new();
    id
}

fn union_of_pred_outputs(cfg: &Cfg, states: &[BlockState], block: BlockId) -> RegSet {
    let mut set = RegSet::new();
    for &p in cfg.predecessors(block) {
        set.union_with(&states[p.index()].output_list);
    }
    set
}

/// Finds a block that can be absorbed into `interval`: unassigned, all
/// predecessors already in `interval` and traversed, and the interval's
/// working-set together with the block's own registers still fits the budget.
fn find_absorbable(
    cfg: &Cfg,
    states: &[BlockState],
    interval_ws: &[RegSet],
    interval: u32,
    max_registers: usize,
) -> Option<BlockId> {
    for idx in 0..cfg.block_count() {
        let block = BlockId(idx as u32);
        if states[idx].interval.is_some() {
            continue;
        }
        let preds = cfg.predecessors(block);
        if preds.is_empty() {
            continue;
        }
        let all_in = preds
            .iter()
            .all(|p| states[p.index()].interval == Some(interval) && states[p.index()].traversed);
        if !all_in {
            continue;
        }
        let combined = interval_ws[interval as usize].union(&cfg.block(block).touched_registers());
        if combined.len() <= max_registers {
            return Some(block);
        }
    }
    None
}

/// Walks a block's instructions, accumulating its register list on top of its
/// `input_list`, splitting the block if the accumulated list overflows the
/// budget. The tail created by a split becomes the header of a new interval
/// and is pushed onto the worklist (Algorithm 1, lines 30–37).
#[allow(clippy::too_many_arguments)]
fn traverse(
    cfg: &mut Cfg,
    states: &mut Vec<BlockState>,
    interval_ws: &mut Vec<RegSet>,
    interval_header: &mut Vec<BlockId>,
    worklist: &mut Vec<BlockId>,
    block: BlockId,
    max_registers: usize,
) {
    let interval = states[block.index()]
        .interval
        .expect("traverse requires an assigned interval");
    let mut register_list = states[block.index()].input_list;
    let mut split_at: Option<usize> = None;
    for (idx, inst) in cfg.block(block).instructions().iter().enumerate() {
        let candidate = register_list.union(&inst.touched());
        if candidate.len() > max_registers {
            split_at = Some(idx);
            break;
        }
        register_list = candidate;
    }
    states[block.index()].output_list = register_list;
    states[block.index()].traversed = true;
    interval_ws[interval as usize].union_with(&register_list);

    if let Some(at) = split_at {
        let new_block = cfg.split_block(block, at);
        states.push(BlockState::default());
        debug_assert_eq!(new_block.index(), states.len() - 1);
        let id = new_interval(interval_ws, interval_header, new_block, states);
        let _ = id;
        worklist.push(new_block);
    }
}

/// Returns the blocks outside `interval` that are targets of an edge leaving
/// `interval`, in deterministic order.
fn interval_successors(cfg: &Cfg, states: &[BlockState], interval: u32) -> Vec<BlockId> {
    let mut out = BTreeSet::new();
    for idx in 0..cfg.block_count() {
        if states[idx].interval != Some(interval) {
            continue;
        }
        for s in cfg.successors(BlockId(idx as u32)) {
            if states[s.index()].interval != Some(interval) {
                out.insert(s);
            }
        }
    }
    out.into_iter().collect()
}

fn build_partition(
    cfg: &Cfg,
    states: &[BlockState],
    interval_ws: &[RegSet],
    interval_header: &[BlockId],
    max_registers: usize,
) -> RegisterIntervalPartition {
    let mut members: Vec<Vec<BlockId>> = vec![Vec::new(); interval_ws.len()];
    let mut assignment = Vec::with_capacity(cfg.block_count());
    for (idx, state) in states.iter().enumerate().take(cfg.block_count()) {
        let id = state.interval.expect("all blocks assigned");
        assignment.push(IntervalId(id));
        members[id as usize].push(BlockId(idx as u32));
    }
    // Some intervals may have ended up empty if their header was re-absorbed
    // (cannot happen with the current algorithm, but renumber defensively so
    // ids stay dense and every interval is non-empty).
    let mut intervals = Vec::new();
    let mut remap: Vec<Option<u32>> = vec![None; interval_ws.len()];
    for (old_id, blocks) in members.iter().enumerate() {
        if blocks.is_empty() {
            continue;
        }
        let new_id = intervals.len() as u32;
        remap[old_id] = Some(new_id);
        let header = interval_header[old_id];
        let mut ordered = vec![header];
        ordered.extend(blocks.iter().copied().filter(|&b| b != header));
        intervals.push(RegisterInterval {
            id: IntervalId(new_id),
            header,
            blocks: ordered,
            working_set: interval_ws[old_id],
        });
    }
    let assignment = assignment
        .into_iter()
        .map(|old| IntervalId(remap[old.index()].expect("non-empty interval")))
        .collect();
    RegisterIntervalPartition::new(intervals, assignment, max_registers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_isa::{straight_line_kernel, ArchReg, BranchBehavior, KernelBuilder, Opcode};

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    /// The nested-loop example of the paper's Figure 6: A -> B -> C, with a
    /// back edge C -> B (inner loop) and C -> A (outer loop).
    fn figure6_kernel(regs_a: u8, regs_b: u8, regs_c: u8) -> Kernel {
        let mut b = KernelBuilder::new("fig6", 64);
        let a = b.entry_block();
        let bb = b.add_block();
        let c = b.add_block();
        let latch = b.add_block();
        let exit = b.add_block();
        for i in 0..regs_a {
            b.push(a, Opcode::IAlu, Some(r(i)), &[]);
        }
        b.jump(a, bb);
        for i in 0..regs_b {
            b.push(bb, Opcode::FAlu, Some(r(20 + i)), &[r(0)]);
        }
        b.jump(bb, c);
        for i in 0..regs_c {
            b.push(c, Opcode::FAlu, Some(r(40 + i)), &[r(20)]);
        }
        // inner loop: C -> B
        b.loop_branch(c, bb, latch, 3);
        // outer loop: latch -> A
        b.loop_branch(latch, a, exit, 2);
        b.exit(exit);
        b.build().unwrap()
    }

    #[test]
    fn single_block_within_budget_is_one_interval() {
        let kernel = straight_line_kernel("k", 8, 40);
        let (k2, p) = form_register_intervals(&kernel, 16).unwrap();
        assert_eq!(p.interval_count(), 1);
        assert_eq!(p.max_working_set(), 8);
        assert!(p.invariant_violations(&k2.cfg).is_empty());
    }

    #[test]
    fn overflowing_block_is_split() {
        // 32 distinct registers in one block with a 16-register budget must
        // produce at least two intervals and split the block.
        let kernel = straight_line_kernel("k", 32, 64);
        let (k2, p) = form_register_intervals(&kernel, 16).unwrap();
        assert!(p.interval_count() >= 2);
        assert!(k2.cfg.block_count() > kernel.cfg.block_count());
        assert_eq!(
            k2.static_instruction_count(),
            kernel.static_instruction_count(),
            "splitting must not lose instructions"
        );
        assert!(p.max_working_set() <= 16);
        assert!(p.invariant_violations(&k2.cfg).is_empty());
    }

    #[test]
    fn loop_headers_start_new_intervals() {
        let kernel = figure6_kernel(2, 2, 2);
        let (k2, p) = form_register_intervals(&kernel, 16).unwrap();
        assert!(p.invariant_violations(&k2.cfg).is_empty());
        // A is alone in its interval because B has a back edge from C.
        let a_interval = p.interval_of(BlockId(0));
        let b_interval = p.interval_of(BlockId(1));
        assert_ne!(
            a_interval, b_interval,
            "loop header B must start a new interval"
        );
        // B and C share an interval (C's only predecessor is B).
        assert_eq!(p.interval_of(BlockId(2)), b_interval);
    }

    #[test]
    fn branch_diamond_keeps_budget() {
        // entry branches to two sides which join; every working set <= N.
        let mut b = KernelBuilder::new("diamond", 32);
        let entry = b.entry_block();
        let left = b.add_block();
        let right = b.add_block();
        let join = b.add_block();
        for i in 0..6 {
            b.push(entry, Opcode::IAlu, Some(r(i)), &[]);
        }
        b.branch(entry, left, right, BranchBehavior::balanced());
        for i in 0..6 {
            b.push(left, Opcode::FAlu, Some(r(10 + i)), &[r(0)]);
        }
        b.jump(left, join);
        for i in 0..6 {
            b.push(right, Opcode::FAlu, Some(r(20 + i)), &[r(1)]);
        }
        b.jump(right, join);
        b.push(join, Opcode::FAlu, Some(r(30)), &[r(2)]);
        b.exit(join);
        let kernel = b.build().unwrap();
        let (k2, p) = form_register_intervals(&kernel, 16).unwrap();
        assert!(p.invariant_violations(&k2.cfg).is_empty());
        for interval in p.intervals() {
            assert!(interval.working_set_size() <= 16);
        }
    }

    #[test]
    fn budget_smaller_than_an_instruction_errors() {
        let mut b = KernelBuilder::new("wide", 8);
        let e = b.entry_block();
        b.push(e, Opcode::FFma, Some(r(0)), &[r(1), r(2), r(3)]);
        b.exit(e);
        let kernel = b.build().unwrap();
        let err = form_register_intervals(&kernel, 2).unwrap_err();
        assert!(matches!(
            err,
            CompileError::IntervalBudgetTooSmall {
                required: 4,
                budget: 2,
                ..
            }
        ));
    }

    #[test]
    fn every_block_is_assigned_exactly_once() {
        let kernel = figure6_kernel(4, 5, 6);
        let (k2, p) = form_register_intervals(&kernel, 8).unwrap();
        assert!(p.invariant_violations(&k2.cfg).is_empty());
        let mut seen = std::collections::HashSet::new();
        for interval in p.intervals() {
            for b in &interval.blocks {
                assert!(seen.insert(*b), "block {b} in two intervals");
            }
        }
        assert_eq!(seen.len(), k2.cfg.block_count());
    }
}
