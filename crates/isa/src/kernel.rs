//! Whole kernels: a CFG plus launch metadata.

use serde::{Deserialize, Serialize};

use crate::{Cfg, IsaError, RegSet, MAX_ARCH_REGS};

/// Kernel launch configuration (grid shape flattened to warp counts).
///
/// The LTRF evaluation does not depend on the 3-D structure of CUDA grids,
/// only on how many warps a kernel can supply to each SM and how many
/// registers each of its threads needs; `LaunchConfig` captures exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of warps in a thread block (CTA).
    pub warps_per_block: u32,
    /// Number of thread blocks in the grid.
    pub blocks_per_grid: u32,
    /// Shared memory used by each block, in bytes (limits occupancy).
    pub shared_mem_per_block: u32,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    #[must_use]
    pub const fn new(
        warps_per_block: u32,
        blocks_per_grid: u32,
        shared_mem_per_block: u32,
    ) -> Self {
        LaunchConfig {
            warps_per_block,
            blocks_per_grid,
            shared_mem_per_block,
        }
    }

    /// Total number of warps launched by the kernel.
    #[must_use]
    pub const fn total_warps(&self) -> u64 {
        self.warps_per_block as u64 * self.blocks_per_grid as u64
    }

    /// Returns the launch with `factor` times as many thread blocks
    /// (saturating). Multi-SM simulations scale the grid this way so each
    /// SM receives the same per-SM work regardless of how many SMs share
    /// the chip (weak scaling).
    #[must_use]
    pub const fn with_grid_scaled(mut self, factor: u32) -> Self {
        self.blocks_per_grid = self.blocks_per_grid.saturating_mul(factor);
        self
    }
}

impl Default for LaunchConfig {
    fn default() -> Self {
        // 8 warps (256 threads) per block, 64 blocks: a typical mid-size grid.
        LaunchConfig::new(8, 64, 0)
    }
}

/// Whether a kernel's achievable thread-level parallelism is limited by the
/// register file (the paper's two workload categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegisterSensitivity {
    /// TLP improves when the register file grows.
    Sensitive,
    /// TLP is limited by something other than the register file.
    Insensitive,
}

/// A GPU kernel: name, control-flow graph, per-thread register demand, and
/// launch configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    /// The kernel's control-flow graph.
    pub cfg: Cfg,
    regs_per_thread: u16,
    launch: LaunchConfig,
    sensitivity: RegisterSensitivity,
}

impl Kernel {
    /// Creates a kernel and validates it.
    ///
    /// # Errors
    ///
    /// Returns an error if the CFG fails [`Cfg::validate`] or declares more
    /// than 256 registers per thread.
    pub fn new(
        name: impl Into<String>,
        cfg: Cfg,
        regs_per_thread: u16,
        launch: LaunchConfig,
        sensitivity: RegisterSensitivity,
    ) -> Result<Self, IsaError> {
        if regs_per_thread as usize > MAX_ARCH_REGS {
            return Err(IsaError::TooManyRegisters {
                declared: regs_per_thread,
            });
        }
        cfg.validate(regs_per_thread)?;
        Ok(Kernel {
            name: name.into(),
            cfg,
            regs_per_thread,
            launch,
            sensitivity,
        })
    }

    /// Returns the kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of architectural registers each thread of this
    /// kernel is allocated.
    #[must_use]
    pub const fn regs_per_thread(&self) -> u16 {
        self.regs_per_thread
    }

    /// Returns the launch configuration.
    #[must_use]
    pub const fn launch(&self) -> LaunchConfig {
        self.launch
    }

    /// Returns whether the kernel is register-sensitive.
    #[must_use]
    pub const fn sensitivity(&self) -> RegisterSensitivity {
        self.sensitivity
    }

    /// Returns `true` if the kernel's TLP is limited by register capacity.
    #[must_use]
    pub const fn is_register_sensitive(&self) -> bool {
        matches!(self.sensitivity, RegisterSensitivity::Sensitive)
    }

    /// Returns the set of registers actually referenced by the kernel's code.
    #[must_use]
    pub fn referenced_registers(&self) -> RegSet {
        self.cfg.all_registers()
    }

    /// Number of static instructions in the kernel.
    #[must_use]
    pub fn static_instruction_count(&self) -> usize {
        self.cfg.static_instruction_count()
    }

    /// Register-file bytes needed per *warp* (32 threads × 4 bytes × regs).
    #[must_use]
    pub const fn regfile_bytes_per_warp(&self) -> u64 {
        self.regs_per_thread as u64 * 32 * 4
    }

    /// Returns a copy whose grid launches `factor` times as many thread
    /// blocks (the CTA-count plumbing behind multi-SM weak scaling: an
    /// `sm_count`-SM campaign scales the grid by `sm_count` so every SM
    /// sees the same per-SM workload as the single-SM campaigns).
    #[must_use]
    pub fn with_grid_scaled(&self, factor: u32) -> Self {
        let mut scaled = self.clone();
        scaled.launch = scaled.launch.with_grid_scaled(factor.max(1));
        scaled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchReg, BasicBlock, BlockId, Instruction, Opcode, Terminator};

    fn simple_cfg(regs: u8) -> Cfg {
        let mut b = BasicBlock::new(BlockId(0));
        for i in 0..regs {
            b.push(Instruction::new(Opcode::IAlu, Some(ArchReg::new(i)), &[]));
        }
        b.set_terminator(Terminator::Exit);
        Cfg::new(vec![b], BlockId(0))
    }

    #[test]
    fn kernel_construction_and_accessors() {
        let k = Kernel::new(
            "k",
            simple_cfg(4),
            8,
            LaunchConfig::default(),
            RegisterSensitivity::Sensitive,
        )
        .unwrap();
        assert_eq!(k.name(), "k");
        assert_eq!(k.regs_per_thread(), 8);
        assert!(k.is_register_sensitive());
        assert_eq!(k.referenced_registers().len(), 4);
        assert_eq!(k.static_instruction_count(), 4);
        assert_eq!(k.regfile_bytes_per_warp(), 8 * 32 * 4);
        assert_eq!(k.launch().total_warps(), 8 * 64);
    }

    #[test]
    fn grid_scaling_multiplies_blocks_only() {
        let k = Kernel::new(
            "k",
            simple_cfg(4),
            8,
            LaunchConfig::new(8, 16, 0),
            RegisterSensitivity::Sensitive,
        )
        .unwrap();
        let scaled = k.with_grid_scaled(4);
        assert_eq!(scaled.launch().blocks_per_grid, 64);
        assert_eq!(scaled.launch().warps_per_block, 8);
        assert_eq!(k.launch().blocks_per_grid, 16, "original is untouched");
        // Factor zero is clamped to one, and huge factors saturate.
        assert_eq!(k.with_grid_scaled(0).launch().blocks_per_grid, 16);
        assert_eq!(
            LaunchConfig::new(1, u32::MAX, 0)
                .with_grid_scaled(2)
                .blocks_per_grid,
            u32::MAX
        );
    }

    #[test]
    fn kernel_rejects_register_overflow() {
        let err = Kernel::new(
            "k",
            simple_cfg(4),
            2,
            LaunchConfig::default(),
            RegisterSensitivity::Insensitive,
        )
        .unwrap_err();
        assert!(matches!(err, IsaError::RegisterOutOfRange { .. }));
    }

    #[test]
    fn kernel_rejects_too_many_registers() {
        let err = Kernel::new(
            "k",
            simple_cfg(1),
            300,
            LaunchConfig::default(),
            RegisterSensitivity::Insensitive,
        )
        .unwrap_err();
        assert_eq!(err, IsaError::TooManyRegisters { declared: 300 });
    }

    #[test]
    fn launch_config_totals() {
        let lc = LaunchConfig::new(4, 10, 1024);
        assert_eq!(lc.total_warps(), 40);
        assert_eq!(LaunchConfig::default().warps_per_block, 8);
    }
}
