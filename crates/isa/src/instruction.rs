//! Instructions with explicit register operands and dead-operand bits.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ArchReg, Opcode, RegSet};

/// A single static instruction.
///
/// An instruction has at most one destination register, up to four source
/// registers, and a *dead-operand mask*. The dead-operand mask mirrors the
/// "dead operand bit" of the paper's LTRF+ design: bit *i* set means that
/// source operand *i* is dead after this instruction executes, so the
/// register-file cache need not write it back to the main register file.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    opcode: Opcode,
    dst: Option<ArchReg>,
    srcs: Vec<ArchReg>,
    dead_mask: u8,
}

impl Instruction {
    /// Maximum number of source operands an instruction may carry.
    pub const MAX_SOURCES: usize = 4;

    /// Creates an instruction.
    ///
    /// # Panics
    ///
    /// Panics if more than [`Self::MAX_SOURCES`] source operands are given.
    #[must_use]
    pub fn new(opcode: Opcode, dst: Option<ArchReg>, srcs: &[ArchReg]) -> Self {
        assert!(
            srcs.len() <= Self::MAX_SOURCES,
            "instruction has {} sources, max is {}",
            srcs.len(),
            Self::MAX_SOURCES
        );
        Instruction {
            opcode,
            dst,
            srcs: srcs.to_vec(),
            dead_mask: 0,
        }
    }

    /// Creates an instruction with a dead-operand mask.
    ///
    /// # Panics
    ///
    /// Panics if more than [`Self::MAX_SOURCES`] source operands are given.
    #[must_use]
    pub fn with_dead_mask(
        opcode: Opcode,
        dst: Option<ArchReg>,
        srcs: &[ArchReg],
        dead_mask: u8,
    ) -> Self {
        let mut inst = Instruction::new(opcode, dst, srcs);
        inst.dead_mask = dead_mask;
        inst
    }

    /// Returns the opcode.
    #[must_use]
    pub const fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// Returns the destination register, if any.
    #[must_use]
    pub const fn dst(&self) -> Option<ArchReg> {
        self.dst
    }

    /// Returns the source registers.
    #[must_use]
    pub fn srcs(&self) -> &[ArchReg] {
        &self.srcs
    }

    /// Returns the dead-operand mask (bit *i* ↔ source *i* dead afterwards).
    #[must_use]
    pub const fn dead_mask(&self) -> u8 {
        self.dead_mask
    }

    /// Sets the dead-operand mask. Used by the liveness pass in
    /// `ltrf-compiler`, which computes the bits after the kernel is built.
    pub fn set_dead_mask(&mut self, mask: u8) {
        self.dead_mask = mask;
    }

    /// Returns `true` if source operand `i` is dead after this instruction.
    #[must_use]
    pub fn is_src_dead(&self, i: usize) -> bool {
        i < self.srcs.len() && self.dead_mask & (1 << i) != 0
    }

    /// Returns the set of registers read by this instruction.
    #[must_use]
    pub fn reads(&self) -> RegSet {
        self.srcs.iter().copied().collect()
    }

    /// Returns the set of registers written by this instruction.
    #[must_use]
    pub fn writes(&self) -> RegSet {
        self.dst.into_iter().collect()
    }

    /// Returns the set of all registers touched (read or written).
    #[must_use]
    pub fn touched(&self) -> RegSet {
        self.reads().union(&self.writes())
    }

    /// Returns the registers whose last use is this instruction, according to
    /// the dead-operand mask.
    #[must_use]
    pub fn dying_registers(&self) -> RegSet {
        let mut set = RegSet::new();
        for (i, &src) in self.srcs.iter().enumerate() {
            if self.dead_mask & (1 << i) != 0 {
                set.insert(src);
            }
        }
        set
    }

    /// Returns the number of register-file read ports this instruction needs
    /// (one per distinct source register).
    #[must_use]
    pub fn read_port_demand(&self) -> usize {
        self.reads().len()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
            first = false;
        }
        for (i, s) in self.srcs.iter().enumerate() {
            if first {
                write!(f, " {s}")?;
                first = false;
            } else {
                write!(f, ", {s}")?;
            }
            if self.is_src_dead(i) {
                write!(f, "†")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    #[test]
    fn basic_accessors() {
        let i = Instruction::new(Opcode::FFma, Some(r(3)), &[r(1), r(2), r(3)]);
        assert_eq!(i.opcode(), Opcode::FFma);
        assert_eq!(i.dst(), Some(r(3)));
        assert_eq!(i.srcs(), &[r(1), r(2), r(3)]);
        assert_eq!(i.dead_mask(), 0);
        assert_eq!(i.read_port_demand(), 3);
    }

    #[test]
    #[should_panic(expected = "max is 4")]
    fn too_many_sources_panics() {
        let _ = Instruction::new(Opcode::IAlu, None, &[r(0), r(1), r(2), r(3), r(4)]);
    }

    #[test]
    fn read_write_touch_sets() {
        let i = Instruction::new(Opcode::IAlu, Some(r(5)), &[r(1), r(2)]);
        assert_eq!(i.reads().len(), 2);
        assert_eq!(i.writes().to_vec(), vec![r(5)]);
        assert_eq!(i.touched().len(), 3);
        let store = Instruction::new(Opcode::StoreGlobal, None, &[r(0), r(9)]);
        assert!(store.writes().is_empty());
        assert_eq!(store.reads().len(), 2);
    }

    #[test]
    fn dead_mask_and_dying_registers() {
        let mut i = Instruction::with_dead_mask(Opcode::FAlu, Some(r(4)), &[r(1), r(2)], 0b10);
        assert!(!i.is_src_dead(0));
        assert!(i.is_src_dead(1));
        assert_eq!(i.dying_registers().to_vec(), vec![r(2)]);
        i.set_dead_mask(0b01);
        assert_eq!(i.dying_registers().to_vec(), vec![r(1)]);
        // out-of-range operand index is never dead
        assert!(!i.is_src_dead(7));
    }

    #[test]
    fn duplicate_source_counts_once_for_ports() {
        let i = Instruction::new(Opcode::FAlu, Some(r(4)), &[r(1), r(1)]);
        assert_eq!(i.read_port_demand(), 1);
    }

    #[test]
    fn display_marks_dead_operands() {
        let i = Instruction::with_dead_mask(Opcode::FAlu, Some(r(4)), &[r(1), r(2)], 0b10);
        let s = i.to_string();
        assert!(s.starts_with("fadd r4, r1"));
        assert!(s.contains("r2†"));
        let nop = Instruction::new(Opcode::Nop, None, &[]);
        assert_eq!(nop.to_string(), "nop");
    }
}
