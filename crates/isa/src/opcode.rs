//! Opcodes and opcode classification.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Memory spaces addressable by load/store instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemorySpace {
    /// Off-chip global memory, backed by the L1D/L2/DRAM hierarchy.
    Global,
    /// On-chip software-managed shared memory (fixed low latency).
    Shared,
    /// Read-only constant memory (cached, usually hits).
    Constant,
    /// Per-thread local memory (register spills), backed by the same
    /// hierarchy as global memory.
    Local,
}

impl fmt::Display for MemorySpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemorySpace::Global => "global",
            MemorySpace::Shared => "shared",
            MemorySpace::Constant => "const",
            MemorySpace::Local => "local",
        };
        f.write_str(s)
    }
}

/// Instruction opcodes of the synthetic ISA.
///
/// The set is deliberately small: it contains exactly the operation classes
/// that the LTRF evaluation is sensitive to — integer/floating-point ALU
/// operations with different latencies, special-function operations,
/// loads/stores to the different memory spaces, synchronization, and control
/// flow. Register-file behaviour depends on the *operands* of instructions,
/// not on the arithmetic they perform, so a richer ISA would not change any
/// result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Opcode {
    /// Integer addition/subtraction/logic (single-cycle class).
    IAlu,
    /// Integer multiplication (longer ALU class).
    IMul,
    /// Single-precision floating-point add/mul (default FP class).
    FAlu,
    /// Fused multiply-add.
    FFma,
    /// Special-function unit operation (rsqrt, sin, exp, ...).
    Sfu,
    /// Register-to-register move.
    Mov,
    /// Predicate-setting comparison.
    SetP,
    /// Load from global memory.
    LoadGlobal,
    /// Load from shared memory.
    LoadShared,
    /// Load from constant memory.
    LoadConst,
    /// Load from local memory.
    LoadLocal,
    /// Store to global memory.
    StoreGlobal,
    /// Store to shared memory.
    StoreShared,
    /// Store to local memory.
    StoreLocal,
    /// Thread-block barrier.
    Barrier,
    /// A no-op placeholder (used for code-size overhead experiments).
    Nop,
}

/// Coarse classification of opcodes used by the timing simulator to pick an
/// execution latency and a functional unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpcodeClass {
    /// Short-latency integer/move/predicate operations.
    SimpleAlu,
    /// Longer-latency integer multiply.
    MulAlu,
    /// Floating-point operations.
    FpAlu,
    /// Special-function unit operations.
    Sfu,
    /// Memory load (space given by [`Opcode::memory_space`]).
    Load,
    /// Memory store.
    Store,
    /// Barrier synchronization.
    Barrier,
    /// No operation.
    Nop,
}

impl Opcode {
    /// Returns the coarse class of this opcode.
    #[must_use]
    pub const fn class(self) -> OpcodeClass {
        match self {
            Opcode::IAlu | Opcode::Mov | Opcode::SetP => OpcodeClass::SimpleAlu,
            Opcode::IMul => OpcodeClass::MulAlu,
            Opcode::FAlu | Opcode::FFma => OpcodeClass::FpAlu,
            Opcode::Sfu => OpcodeClass::Sfu,
            Opcode::LoadGlobal | Opcode::LoadShared | Opcode::LoadConst | Opcode::LoadLocal => {
                OpcodeClass::Load
            }
            Opcode::StoreGlobal | Opcode::StoreShared | Opcode::StoreLocal => OpcodeClass::Store,
            Opcode::Barrier => OpcodeClass::Barrier,
            Opcode::Nop => OpcodeClass::Nop,
        }
    }

    /// Returns the memory space accessed by this opcode, if it is a memory
    /// operation.
    #[must_use]
    pub const fn memory_space(self) -> Option<MemorySpace> {
        match self {
            Opcode::LoadGlobal | Opcode::StoreGlobal => Some(MemorySpace::Global),
            Opcode::LoadShared | Opcode::StoreShared => Some(MemorySpace::Shared),
            Opcode::LoadConst => Some(MemorySpace::Constant),
            Opcode::LoadLocal | Opcode::StoreLocal => Some(MemorySpace::Local),
            _ => None,
        }
    }

    /// Returns `true` if this opcode reads or writes memory.
    #[must_use]
    pub const fn is_memory(self) -> bool {
        self.memory_space().is_some()
    }

    /// Returns `true` if this opcode is a load.
    #[must_use]
    pub const fn is_load(self) -> bool {
        matches!(self.class(), OpcodeClass::Load)
    }

    /// Returns `true` if this opcode is a store.
    #[must_use]
    pub const fn is_store(self) -> bool {
        matches!(self.class(), OpcodeClass::Store)
    }

    /// Returns `true` if this opcode can stall a warp for a long, variable
    /// time (global/local memory accesses and barriers).
    ///
    /// The two-level warp scheduler demotes a warp from the active pool when
    /// it issues one of these operations, exactly as in the paper.
    #[must_use]
    pub const fn is_long_latency(self) -> bool {
        matches!(
            self,
            Opcode::LoadGlobal
                | Opcode::LoadLocal
                | Opcode::StoreGlobal
                | Opcode::StoreLocal
                | Opcode::Barrier
        )
    }

    /// Returns the mnemonic used by the disassembler.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Opcode::IAlu => "iadd",
            Opcode::IMul => "imul",
            Opcode::FAlu => "fadd",
            Opcode::FFma => "ffma",
            Opcode::Sfu => "sfu",
            Opcode::Mov => "mov",
            Opcode::SetP => "setp",
            Opcode::LoadGlobal => "ld.global",
            Opcode::LoadShared => "ld.shared",
            Opcode::LoadConst => "ld.const",
            Opcode::LoadLocal => "ld.local",
            Opcode::StoreGlobal => "st.global",
            Opcode::StoreShared => "st.shared",
            Opcode::StoreLocal => "st.local",
            Opcode::Barrier => "bar.sync",
            Opcode::Nop => "nop",
        }
    }

    /// All opcodes, useful for exhaustive tests and workload generators.
    #[must_use]
    pub const fn all() -> &'static [Opcode] {
        &[
            Opcode::IAlu,
            Opcode::IMul,
            Opcode::FAlu,
            Opcode::FFma,
            Opcode::Sfu,
            Opcode::Mov,
            Opcode::SetP,
            Opcode::LoadGlobal,
            Opcode::LoadShared,
            Opcode::LoadConst,
            Opcode::LoadLocal,
            Opcode::StoreGlobal,
            Opcode::StoreShared,
            Opcode::StoreLocal,
            Opcode::Barrier,
            Opcode::Nop,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_covers_all_opcodes() {
        for &op in Opcode::all() {
            // Must not panic and must be consistent with memory_space.
            let class = op.class();
            match class {
                OpcodeClass::Load => assert!(op.is_load() && op.is_memory()),
                OpcodeClass::Store => assert!(op.is_store() && op.is_memory()),
                _ => assert!(!op.is_memory() || op.memory_space().is_some()),
            }
        }
    }

    #[test]
    fn memory_spaces() {
        assert_eq!(Opcode::LoadGlobal.memory_space(), Some(MemorySpace::Global));
        assert_eq!(
            Opcode::StoreShared.memory_space(),
            Some(MemorySpace::Shared)
        );
        assert_eq!(
            Opcode::LoadConst.memory_space(),
            Some(MemorySpace::Constant)
        );
        assert_eq!(Opcode::FAlu.memory_space(), None);
    }

    #[test]
    fn long_latency_classification() {
        assert!(Opcode::LoadGlobal.is_long_latency());
        assert!(Opcode::Barrier.is_long_latency());
        assert!(!Opcode::LoadShared.is_long_latency());
        assert!(!Opcode::FFma.is_long_latency());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::all() {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
            assert_eq!(op.to_string(), op.mnemonic());
        }
    }

    #[test]
    fn display_memory_space() {
        assert_eq!(MemorySpace::Global.to_string(), "global");
        assert_eq!(MemorySpace::Local.to_string(), "local");
    }
}
