//! Basic blocks, terminators, and branch behaviour annotations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Instruction, RegSet};

/// Identifier of a basic block inside a kernel's control-flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Returns the block index as a `usize`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Dynamic behaviour of a conditional branch.
///
/// The synthetic workloads do not compute real data, so branches carry an
/// annotation describing how they behave at run time. The annotation is used
/// both by the dynamic trace walker (Table 4, hit-rate studies) and by the
/// timing simulator to drive per-warp control flow deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BranchBehavior {
    /// A loop back-edge taken `trip_count - 1` times and then falling
    /// through; i.e. the loop body executes `trip_count` times per entry.
    Loop {
        /// Number of body executions per loop entry. Must be at least 1.
        trip_count: u32,
    },
    /// A data-dependent branch taken with the given probability on each
    /// dynamic execution (resolved with a per-warp deterministic RNG).
    Probabilistic {
        /// Probability in `[0, 1]` that the branch is taken.
        taken_probability: f64,
    },
    /// A branch that is always taken.
    AlwaysTaken,
    /// A branch that is never taken.
    NeverTaken,
}

impl BranchBehavior {
    /// A balanced if/else branch (taken with probability 0.5).
    #[must_use]
    pub const fn balanced() -> Self {
        BranchBehavior::Probabilistic {
            taken_probability: 0.5,
        }
    }
}

/// The terminator of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump to another block.
    Jump(BlockId),
    /// Two-way conditional branch.
    Branch {
        /// Target when the branch is taken.
        taken: BlockId,
        /// Target when the branch falls through.
        not_taken: BlockId,
        /// Dynamic behaviour of the branch.
        behavior: BranchBehavior,
    },
    /// Kernel exit for the executing warp.
    Exit,
}

impl Terminator {
    /// Returns the possible successor blocks, in deterministic order.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(t) => vec![t],
            Terminator::Branch {
                taken, not_taken, ..
            } => {
                if taken == not_taken {
                    vec![taken]
                } else {
                    vec![taken, not_taken]
                }
            }
            Terminator::Exit => Vec::new(),
        }
    }

    /// Returns `true` if this terminator ends the kernel.
    #[must_use]
    pub const fn is_exit(&self) -> bool {
        matches!(self, Terminator::Exit)
    }
}

/// A basic block: a straight-line sequence of instructions ending in a
/// [`Terminator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    id: BlockId,
    instructions: Vec<Instruction>,
    terminator: Option<Terminator>,
}

impl BasicBlock {
    /// Creates an empty block with the given id.
    #[must_use]
    pub fn new(id: BlockId) -> Self {
        BasicBlock {
            id,
            instructions: Vec::new(),
            terminator: None,
        }
    }

    /// Returns this block's id.
    #[must_use]
    pub const fn id(&self) -> BlockId {
        self.id
    }

    /// Returns the instructions of the block.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Returns mutable access to the instructions (used by the liveness pass
    /// to fill in dead-operand masks).
    pub fn instructions_mut(&mut self) -> &mut [Instruction] {
        &mut self.instructions
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Instruction) {
        self.instructions.push(inst);
    }

    /// Returns the terminator, if one has been set.
    #[must_use]
    pub const fn terminator(&self) -> Option<&Terminator> {
        self.terminator.as_ref()
    }

    /// Sets the terminator, replacing any existing one.
    pub fn set_terminator(&mut self, t: Terminator) {
        self.terminator = Some(t);
    }

    /// Returns the number of instructions (excluding the terminator).
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` if the block contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Returns the successor blocks according to the terminator.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator
            .as_ref()
            .map(Terminator::successors)
            .unwrap_or_default()
    }

    /// Returns the set of all registers read or written anywhere in the block.
    #[must_use]
    pub fn touched_registers(&self) -> RegSet {
        let mut set = RegSet::new();
        for inst in &self.instructions {
            set.union_with(&inst.touched());
        }
        set
    }

    /// Returns the set of registers read before being written in this block
    /// (the block's upward-exposed uses), and the set of registers written.
    ///
    /// These are the `use`/`def` sets consumed by the liveness data-flow
    /// analysis in `ltrf-compiler`.
    #[must_use]
    pub fn use_def_sets(&self) -> (RegSet, RegSet) {
        let mut uses = RegSet::new();
        let mut defs = RegSet::new();
        for inst in &self.instructions {
            for r in inst.reads().iter() {
                if !defs.contains(r) {
                    uses.insert(r);
                }
            }
            defs.union_with(&inst.writes());
        }
        (uses, defs)
    }

    /// Returns `true` if the block contains at least one long-latency
    /// operation (global memory access or barrier), which would terminate a
    /// *strand* in the SHRF comparison design.
    #[must_use]
    pub fn has_long_latency_op(&self) -> bool {
        self.instructions
            .iter()
            .any(|i| i.opcode().is_long_latency())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchReg, Opcode};

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    fn block_with(insts: &[Instruction]) -> BasicBlock {
        let mut b = BasicBlock::new(BlockId(0));
        for i in insts {
            b.push(i.clone());
        }
        b
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(3).to_string(), "bb3");
        assert_eq!(BlockId(3).index(), 3);
    }

    #[test]
    fn successors_of_terminators() {
        let j = Terminator::Jump(BlockId(1));
        assert_eq!(j.successors(), vec![BlockId(1)]);
        let b = Terminator::Branch {
            taken: BlockId(2),
            not_taken: BlockId(3),
            behavior: BranchBehavior::balanced(),
        };
        assert_eq!(b.successors(), vec![BlockId(2), BlockId(3)]);
        let same = Terminator::Branch {
            taken: BlockId(2),
            not_taken: BlockId(2),
            behavior: BranchBehavior::AlwaysTaken,
        };
        assert_eq!(same.successors(), vec![BlockId(2)]);
        assert!(Terminator::Exit.successors().is_empty());
        assert!(Terminator::Exit.is_exit());
        assert!(!j.is_exit());
    }

    #[test]
    fn touched_registers_unions_all_operands() {
        let b = block_with(&[
            Instruction::new(Opcode::IAlu, Some(r(1)), &[r(0)]),
            Instruction::new(Opcode::FAlu, Some(r(2)), &[r(1), r(3)]),
        ]);
        let t = b.touched_registers();
        assert_eq!(t.len(), 4);
        assert!(t.contains(r(3)));
    }

    #[test]
    fn use_def_sets_respect_order() {
        // r1 is defined before use -> not upward-exposed; r0 is used first.
        let b = block_with(&[
            Instruction::new(Opcode::IAlu, Some(r(1)), &[r(0)]),
            Instruction::new(Opcode::FAlu, Some(r(2)), &[r(1)]),
        ]);
        let (uses, defs) = b.use_def_sets();
        assert_eq!(uses.to_vec(), vec![r(0)]);
        assert_eq!(defs.len(), 2);
        assert!(defs.contains(r(1)) && defs.contains(r(2)));
    }

    #[test]
    fn long_latency_detection() {
        let without = block_with(&[Instruction::new(Opcode::FAlu, Some(r(1)), &[r(0)])]);
        assert!(!without.has_long_latency_op());
        let with = block_with(&[Instruction::new(Opcode::LoadGlobal, Some(r(1)), &[r(0)])]);
        assert!(with.has_long_latency_op());
    }

    #[test]
    fn terminator_replacement() {
        let mut b = BasicBlock::new(BlockId(5));
        assert!(b.terminator().is_none());
        assert!(b.is_empty());
        b.set_terminator(Terminator::Exit);
        assert!(b.terminator().unwrap().is_exit());
        b.set_terminator(Terminator::Jump(BlockId(1)));
        assert_eq!(b.successors(), vec![BlockId(1)]);
    }
}
