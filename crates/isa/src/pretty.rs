//! Human-readable disassembly of kernels.

use std::fmt::Write as _;

use crate::{Kernel, Terminator};

/// Renders a kernel as PTX-like assembly text.
///
/// The output is intended for debugging and for the compiler-explorer
/// example; it round-trips nothing and has no stability guarantees beyond
/// "one instruction per line, blocks labelled `bbN:`".
#[must_use]
pub fn disassemble(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// kernel {} ({} regs/thread, {} blocks, {} static instructions)",
        kernel.name(),
        kernel.regs_per_thread(),
        kernel.cfg.block_count(),
        kernel.static_instruction_count()
    );
    for block in kernel.cfg.blocks() {
        let _ = writeln!(out, "{}:", block.id());
        for inst in block.instructions() {
            let _ = writeln!(out, "    {inst}");
        }
        match block.terminator() {
            Some(Terminator::Jump(t)) => {
                let _ = writeln!(out, "    bra {t}");
            }
            Some(Terminator::Branch {
                taken,
                not_taken,
                behavior,
            }) => {
                let _ = writeln!(out, "    @p bra {taken} // else {not_taken} ({behavior:?})");
            }
            Some(Terminator::Exit) => {
                let _ = writeln!(out, "    exit");
            }
            None => {
                let _ = writeln!(out, "    <missing terminator>");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::straight_line_kernel;

    #[test]
    fn disassembly_mentions_blocks_and_instructions() {
        let k = straight_line_kernel("demo", 4, 3);
        let text = disassemble(&k);
        assert!(text.contains("kernel demo"));
        assert!(text.contains("bb0:"));
        assert!(text.contains("fadd"));
        assert!(text.contains("exit"));
        assert_eq!(text.lines().count(), 1 + 1 + 3 + 1);
    }
}
