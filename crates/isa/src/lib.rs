//! # ltrf-isa
//!
//! A compact, synthetic GPU instruction set architecture and kernel
//! intermediate representation used throughout the LTRF reproduction.
//!
//! The LTRF paper (ASPLOS 2018) evaluates register-file organizations on
//! CUDA kernels compiled to PTX and executed on GPGPU-Sim. This crate plays
//! the role of PTX: it provides
//!
//! * architectural registers and dense register sets ([`ArchReg`], [`RegSet`]),
//! * a small typed instruction set with explicit register operands and
//!   dead-operand bits ([`Instruction`], [`Opcode`]),
//! * basic blocks and a control-flow graph ([`BasicBlock`], [`Cfg`]),
//! * whole kernels with launch metadata ([`Kernel`]),
//! * an ergonomic [`KernelBuilder`] used by the synthetic workload suite, and
//! * deterministic dynamic-trace generation ([`trace::TraceWalker`]) used by
//!   the register-interval length study (Table 4) and cache hit-rate studies.
//!
//! Everything the compiler passes (`ltrf-compiler`) and the timing simulator
//! (`ltrf-sim`) need about a program is representable here; nothing more.
//!
//! ## Example
//!
//! ```
//! use ltrf_isa::{KernelBuilder, Opcode, ArchReg};
//!
//! let mut b = KernelBuilder::new("saxpy", 8);
//! let entry = b.entry_block();
//! b.push(entry, Opcode::LoadGlobal, Some(ArchReg::new(2)), &[ArchReg::new(0)]);
//! b.push(entry, Opcode::FFma, Some(ArchReg::new(3)), &[ArchReg::new(1), ArchReg::new(2)]);
//! b.push(entry, Opcode::StoreGlobal, None, &[ArchReg::new(0), ArchReg::new(3)]);
//! b.exit(entry);
//! let kernel = b.build().expect("valid kernel");
//! assert_eq!(kernel.cfg.block_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod builder;
mod cfg;
mod error;
mod instruction;
mod kernel;
mod opcode;
mod pretty;
mod reg;
pub mod trace;

pub use block::{BasicBlock, BlockId, BranchBehavior, Terminator};
pub use builder::{straight_line_kernel, KernelBuilder};
pub use cfg::Cfg;
pub use error::IsaError;
pub use instruction::Instruction;
pub use kernel::{Kernel, LaunchConfig, RegisterSensitivity};
pub use opcode::{MemorySpace, Opcode, OpcodeClass};
pub use pretty::disassemble;
pub use reg::{ArchReg, RegSet, RegSetIter, MAX_ARCH_REGS};
