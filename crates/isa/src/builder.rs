//! Ergonomic construction of kernels.

use crate::{
    ArchReg, BasicBlock, BlockId, BranchBehavior, Cfg, Instruction, IsaError, Kernel, LaunchConfig,
    Opcode, RegisterSensitivity, Terminator,
};

/// Builder for [`Kernel`]s.
///
/// The builder allocates basic blocks, appends instructions, wires control
/// flow, and finally validates the whole kernel. It is the construction API
/// used by the synthetic workload suite (`ltrf-workloads`) and by tests.
///
/// # Example
///
/// ```
/// use ltrf_isa::{KernelBuilder, Opcode, ArchReg, BranchBehavior};
///
/// let mut b = KernelBuilder::new("loop", 6);
/// let entry = b.entry_block();
/// let body = b.add_block();
/// let exit = b.add_block();
/// b.push(entry, Opcode::Mov, Some(ArchReg::new(0)), &[]);
/// b.jump(entry, body);
/// b.push(body, Opcode::FFma, Some(ArchReg::new(1)), &[ArchReg::new(0), ArchReg::new(1)]);
/// b.loop_branch(body, body, exit, 16);
/// b.exit(exit);
/// let kernel = b.build().unwrap();
/// assert_eq!(kernel.cfg.block_count(), 3);
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    blocks: Vec<BasicBlock>,
    regs_per_thread: u16,
    launch: LaunchConfig,
    sensitivity: RegisterSensitivity,
}

impl KernelBuilder {
    /// Starts building a kernel with the given name and per-thread register
    /// count. The entry block (id 0) is created automatically.
    #[must_use]
    pub fn new(name: impl Into<String>, regs_per_thread: u16) -> Self {
        KernelBuilder {
            name: name.into(),
            blocks: vec![BasicBlock::new(BlockId(0))],
            regs_per_thread,
            launch: LaunchConfig::default(),
            sensitivity: RegisterSensitivity::Sensitive,
        }
    }

    /// Sets the launch configuration (default: 8 warps/block × 64 blocks).
    pub fn launch(&mut self, launch: LaunchConfig) -> &mut Self {
        self.launch = launch;
        self
    }

    /// Marks the kernel register-sensitive or register-insensitive
    /// (default: sensitive).
    pub fn sensitivity(&mut self, s: RegisterSensitivity) -> &mut Self {
        self.sensitivity = s;
        self
    }

    /// Returns the id of the entry block.
    #[must_use]
    pub fn entry_block(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocates a new, empty basic block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::new(id));
        id
    }

    /// Appends an instruction to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist.
    pub fn push(
        &mut self,
        block: BlockId,
        opcode: Opcode,
        dst: Option<ArchReg>,
        srcs: &[ArchReg],
    ) -> &mut Self {
        self.blocks[block.index()].push(Instruction::new(opcode, dst, srcs));
        self
    }

    /// Appends a pre-built instruction to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist.
    pub fn push_instruction(&mut self, block: BlockId, inst: Instruction) -> &mut Self {
        self.blocks[block.index()].push(inst);
        self
    }

    /// Terminates `block` with an unconditional jump to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist.
    pub fn jump(&mut self, block: BlockId, target: BlockId) -> &mut Self {
        self.blocks[block.index()].set_terminator(Terminator::Jump(target));
        self
    }

    /// Terminates `block` with a conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist.
    pub fn branch(
        &mut self,
        block: BlockId,
        taken: BlockId,
        not_taken: BlockId,
        behavior: BranchBehavior,
    ) -> &mut Self {
        self.blocks[block.index()].set_terminator(Terminator::Branch {
            taken,
            not_taken,
            behavior,
        });
        self
    }

    /// Terminates `block` with a loop back-edge to `header` executed
    /// `trip_count` times before falling through to `fallthrough`.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist or `trip_count` is zero.
    pub fn loop_branch(
        &mut self,
        block: BlockId,
        header: BlockId,
        fallthrough: BlockId,
        trip_count: u32,
    ) -> &mut Self {
        assert!(trip_count >= 1, "loop trip count must be at least 1");
        self.branch(
            block,
            header,
            fallthrough,
            BranchBehavior::Loop { trip_count },
        )
    }

    /// Terminates `block` with a kernel exit.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist.
    pub fn exit(&mut self, block: BlockId) -> &mut Self {
        self.blocks[block.index()].set_terminator(Terminator::Exit);
        self
    }

    /// Returns the number of blocks allocated so far.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Finishes the kernel, validating all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns any error reported by [`Kernel::new`] / [`Cfg::validate`].
    pub fn build(self) -> Result<Kernel, IsaError> {
        let cfg = Cfg::new(self.blocks, BlockId(0));
        Kernel::new(
            self.name,
            cfg,
            self.regs_per_thread,
            self.launch,
            self.sensitivity,
        )
    }
}

/// Convenience free function: builds a straight-line kernel that touches the
/// first `regs` registers with `insts` ALU instructions. Used widely in unit
/// tests across the workspace.
///
/// # Panics
///
/// Panics if `regs` is zero or greater than 256.
#[must_use]
pub fn straight_line_kernel(name: &str, regs: u16, insts: usize) -> Kernel {
    assert!(regs >= 1 && regs as usize <= crate::MAX_ARCH_REGS);
    let mut b = KernelBuilder::new(name, regs);
    let entry = b.entry_block();
    for i in 0..insts {
        let dst = ArchReg::new((i % regs as usize) as u8);
        let src = ArchReg::new(((i + 1) % regs as usize) as u8);
        b.push(entry, Opcode::FAlu, Some(dst), &[src]);
    }
    b.exit(entry);
    b.build().expect("straight-line kernel is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_valid_kernel() {
        let mut b = KernelBuilder::new("k", 4);
        let entry = b.entry_block();
        let exit = b.add_block();
        b.push(entry, Opcode::IAlu, Some(ArchReg::new(0)), &[]);
        b.jump(entry, exit);
        b.exit(exit);
        let k = b.build().unwrap();
        assert_eq!(k.cfg.block_count(), 2);
        assert_eq!(k.cfg.successors(BlockId(0)), vec![BlockId(1)]);
    }

    #[test]
    fn builder_detects_missing_terminator() {
        let mut b = KernelBuilder::new("k", 4);
        let _dangling = b.add_block();
        b.exit(b.entry_block());
        assert!(b.build().is_err());
    }

    #[test]
    fn builder_detects_unreachable_block() {
        let mut b = KernelBuilder::new("k", 4);
        let orphan = b.add_block();
        b.exit(orphan);
        b.exit(b.entry_block());
        assert_eq!(
            b.build().unwrap_err(),
            IsaError::UnreachableBlock(BlockId(1))
        );
    }

    #[test]
    #[should_panic(expected = "trip count")]
    fn zero_trip_count_panics() {
        let mut b = KernelBuilder::new("k", 4);
        let e = b.entry_block();
        b.loop_branch(e, e, e, 0);
    }

    #[test]
    fn straight_line_kernel_helper() {
        let k = straight_line_kernel("s", 8, 20);
        assert_eq!(k.static_instruction_count(), 20);
        assert_eq!(k.cfg.block_count(), 1);
        assert_eq!(k.referenced_registers().len(), 8);
    }

    #[test]
    fn builder_settings_are_applied() {
        let mut b = KernelBuilder::new("k", 4);
        b.sensitivity(RegisterSensitivity::Insensitive);
        b.launch(LaunchConfig::new(2, 3, 0));
        b.exit(b.entry_block());
        let k = b.build().unwrap();
        assert!(!k.is_register_sensitive());
        assert_eq!(k.launch().total_warps(), 6);
    }
}
