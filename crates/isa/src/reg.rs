//! Architectural registers and dense register sets.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Sub};

use serde::{Deserialize, Serialize};

/// Maximum number of architectural registers a thread can be allocated.
///
/// The paper's PREFETCH bit-vectors are 256 bits wide because the most recent
/// CUDA compilers can allocate up to 256 registers per thread; we adopt the
/// same limit.
pub const MAX_ARCH_REGS: usize = 256;

/// An architectural register identifier (`r0` .. `r255`).
///
/// `ArchReg` is a thin newtype over the register index; it exists so that
/// register indices cannot be confused with other small integers (block ids,
/// bank numbers, warp ids) that permeate the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Never panics: every `u8` is a valid architectural register index.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        ArchReg(index)
    }

    /// Returns the register index as a `usize`, suitable for table lookups.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw register number.
    #[must_use]
    pub const fn number(self) -> u8 {
        self.0
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u8> for ArchReg {
    fn from(value: u8) -> Self {
        ArchReg(value)
    }
}

const WORDS: usize = MAX_ARCH_REGS / 64;

/// A dense set of architectural registers, stored as a 256-bit bitmap.
///
/// `RegSet` is the workhorse data structure of the reproduction: it represents
/// register working-sets of register-intervals, PREFETCH bit-vectors, the
/// per-warp working-set and liveness bit-vectors held in the Warp Control
/// Block, and the per-block `input_list`/`output_list` sets manipulated by the
/// register-interval formation algorithm.
///
/// All operations are O(1) in the number of registers (four 64-bit words).
///
/// # Example
///
/// ```
/// use ltrf_isa::{ArchReg, RegSet};
///
/// let mut ws = RegSet::new();
/// ws.insert(ArchReg::new(3));
/// ws.insert(ArchReg::new(200));
/// assert_eq!(ws.len(), 2);
/// assert!(ws.contains(ArchReg::new(3)));
/// let other = RegSet::from_iter([ArchReg::new(3), ArchReg::new(7)]);
/// assert_eq!(ws.union(&other).len(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RegSet {
    words: [u64; WORDS],
}

impl RegSet {
    /// Creates an empty register set.
    #[must_use]
    pub const fn new() -> Self {
        RegSet { words: [0; WORDS] }
    }

    /// Creates a set containing registers `r0..rn` (exclusive upper bound).
    ///
    /// # Panics
    ///
    /// Panics if `n > 256`.
    #[must_use]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_ARCH_REGS, "register count {n} exceeds 256");
        let mut set = RegSet::new();
        for i in 0..n {
            set.insert(ArchReg::new(i as u8));
        }
        set
    }

    /// Returns `true` if the set contains no registers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns the number of registers in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Inserts a register; returns `true` if it was newly inserted.
    pub fn insert(&mut self, reg: ArchReg) -> bool {
        let (w, b) = (reg.index() / 64, reg.index() % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes a register; returns `true` if it was present.
    pub fn remove(&mut self, reg: ArchReg) -> bool {
        let (w, b) = (reg.index() / 64, reg.index() % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Returns `true` if the set contains `reg`.
    #[must_use]
    pub fn contains(&self, reg: ArchReg) -> bool {
        let (w, b) = (reg.index() / 64, reg.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Removes all registers from the set.
    pub fn clear(&mut self) {
        self.words = [0; WORDS];
    }

    /// Returns the union of `self` and `other` without modifying either.
    #[must_use]
    pub fn union(&self, other: &RegSet) -> RegSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        out
    }

    /// Returns the intersection of `self` and `other`.
    #[must_use]
    pub fn intersection(&self, other: &RegSet) -> RegSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        out
    }

    /// Returns the set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &RegSet) -> RegSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        out
    }

    /// Extends the set in place with all registers of `other`.
    pub fn union_with(&mut self, other: &RegSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Returns `true` if every register in `self` is also in `other`.
    #[must_use]
    pub fn is_subset(&self, other: &RegSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the two sets have no register in common.
    #[must_use]
    pub fn is_disjoint(&self, other: &RegSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Iterates over the registers in ascending index order.
    pub fn iter(&self) -> RegSetIter {
        RegSetIter {
            words: self.words,
            word: 0,
        }
    }

    /// Returns the registers as a `Vec`, in ascending index order.
    #[must_use]
    pub fn to_vec(&self) -> Vec<ArchReg> {
        self.iter().collect()
    }

    /// Returns the underlying 256-bit bitmap as four little-endian words.
    ///
    /// This is the exact encoding of a PREFETCH bit-vector as it would be
    /// embedded in the instruction stream.
    #[must_use]
    pub const fn to_words(&self) -> [u64; 4] {
        self.words
    }

    /// Reconstructs a set from the wire encoding produced by [`Self::to_words`].
    #[must_use]
    pub const fn from_words(words: [u64; 4]) -> Self {
        RegSet { words }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegSet{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl FromIterator<ArchReg> for RegSet {
    fn from_iter<I: IntoIterator<Item = ArchReg>>(iter: I) -> Self {
        let mut set = RegSet::new();
        for r in iter {
            set.insert(r);
        }
        set
    }
}

impl Extend<ArchReg> for RegSet {
    fn extend<I: IntoIterator<Item = ArchReg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl IntoIterator for &RegSet {
    type Item = ArchReg;
    type IntoIter = RegSetIter;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl BitOr for RegSet {
    type Output = RegSet;
    fn bitor(self, rhs: RegSet) -> RegSet {
        self.union(&rhs)
    }
}

impl BitOrAssign for RegSet {
    fn bitor_assign(&mut self, rhs: RegSet) {
        self.union_with(&rhs);
    }
}

impl BitAnd for RegSet {
    type Output = RegSet;
    fn bitand(self, rhs: RegSet) -> RegSet {
        self.intersection(&rhs)
    }
}

impl Sub for RegSet {
    type Output = RegSet;
    fn sub(self, rhs: RegSet) -> RegSet {
        self.difference(&rhs)
    }
}

/// Iterator over the registers of a [`RegSet`], produced by [`RegSet::iter`].
///
/// Skips over empty words and jumps straight to the next set bit with
/// `trailing_zeros`, so iterating a sparse set costs O(population) rather
/// than O(256). The order is unchanged: ascending register index.
#[derive(Debug, Clone)]
pub struct RegSetIter {
    words: [u64; WORDS],
    word: usize,
}

impl Iterator for RegSetIter {
    type Item = ArchReg;

    fn next(&mut self) -> Option<ArchReg> {
        while self.word < WORDS {
            let bits = self.words[self.word];
            if bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                // Clear the lowest set bit; the next call resumes above it.
                self.words[self.word] = bits & (bits - 1);
                return Some(ArchReg::new((self.word * 64 + bit) as u8));
            }
            self.word += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining: usize = self.words[self.word.min(WORDS)..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RegSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_reg_display_and_index() {
        let r = ArchReg::new(42);
        assert_eq!(r.to_string(), "r42");
        assert_eq!(r.index(), 42);
        assert_eq!(r.number(), 42);
        assert_eq!(ArchReg::from(7u8), ArchReg::new(7));
    }

    #[test]
    fn empty_set_has_no_registers() {
        let s = RegSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = RegSet::new();
        assert!(s.insert(ArchReg::new(0)));
        assert!(s.insert(ArchReg::new(255)));
        assert!(!s.insert(ArchReg::new(0)), "duplicate insert returns false");
        assert!(s.contains(ArchReg::new(0)));
        assert!(s.contains(ArchReg::new(255)));
        assert!(!s.contains(ArchReg::new(100)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(ArchReg::new(0)));
        assert!(!s.remove(ArchReg::new(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn first_n_contains_prefix() {
        let s = RegSet::first_n(10);
        assert_eq!(s.len(), 10);
        assert!(s.contains(ArchReg::new(9)));
        assert!(!s.contains(ArchReg::new(10)));
    }

    #[test]
    #[should_panic(expected = "exceeds 256")]
    fn first_n_rejects_overflow() {
        let _ = RegSet::first_n(257);
    }

    #[test]
    fn set_algebra() {
        let a = RegSet::from_iter([ArchReg::new(1), ArchReg::new(2), ArchReg::new(3)]);
        let b = RegSet::from_iter([ArchReg::new(3), ArchReg::new(4)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).to_vec(), vec![ArchReg::new(3)]);
        assert_eq!(
            a.difference(&b).to_vec(),
            vec![ArchReg::new(1), ArchReg::new(2)]
        );
        assert!(a.intersection(&b).is_subset(&a));
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
        assert_eq!((a | b).len(), 4);
        assert_eq!((a & b).len(), 1);
        assert_eq!((a - b).len(), 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let s = RegSet::from_iter([ArchReg::new(200), ArchReg::new(5), ArchReg::new(63)]);
        let v = s.to_vec();
        assert_eq!(
            v,
            vec![ArchReg::new(5), ArchReg::new(63), ArchReg::new(200)]
        );
    }

    #[test]
    fn words_round_trip() {
        let s = RegSet::from_iter([
            ArchReg::new(0),
            ArchReg::new(64),
            ArchReg::new(128),
            ArchReg::new(192),
        ]);
        let words = s.to_words();
        assert_eq!(words, [1, 1, 1, 1]);
        assert_eq!(RegSet::from_words(words), s);
    }

    #[test]
    fn debug_format_lists_registers() {
        let s = RegSet::from_iter([ArchReg::new(1), ArchReg::new(2)]);
        assert_eq!(format!("{s:?}"), "RegSet{r1, r2}");
        assert!(!format!("{s}").is_empty());
    }
}
