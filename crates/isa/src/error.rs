//! Error type for kernel construction and validation.

use std::fmt;

use crate::BlockId;

/// Errors produced while building or validating a [`crate::Kernel`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A terminator references a basic block that does not exist.
    UnknownBlock {
        /// The block containing the bad reference.
        from: BlockId,
        /// The missing target block.
        target: BlockId,
    },
    /// A block is missing a terminator (fell through the end of the block).
    MissingTerminator(BlockId),
    /// An instruction uses a register whose index is not smaller than the
    /// kernel's declared per-thread register count.
    RegisterOutOfRange {
        /// Block containing the offending instruction.
        block: BlockId,
        /// Index of the instruction inside the block.
        index: usize,
        /// The offending register index.
        register: u16,
        /// The kernel's declared number of registers per thread.
        regs_per_thread: u16,
    },
    /// The kernel declares more registers per thread than the architecture
    /// supports (256).
    TooManyRegisters {
        /// The declared register count.
        declared: u16,
    },
    /// The kernel has no basic blocks.
    EmptyKernel,
    /// A block is unreachable from the entry block.
    UnreachableBlock(BlockId),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnknownBlock { from, target } => {
                write!(f, "block {from} branches to non-existent block {target}")
            }
            IsaError::MissingTerminator(b) => write!(f, "block {b} has no terminator"),
            IsaError::RegisterOutOfRange {
                block,
                index,
                register,
                regs_per_thread,
            } => write!(
                f,
                "instruction {index} in block {block} uses register r{register} but the kernel declares only {regs_per_thread} registers per thread"
            ),
            IsaError::TooManyRegisters { declared } => write!(
                f,
                "kernel declares {declared} registers per thread, more than the architectural maximum of 256"
            ),
            IsaError::EmptyKernel => write!(f, "kernel has no basic blocks"),
            IsaError::UnreachableBlock(b) => {
                write!(f, "block {b} is unreachable from the entry block")
            }
        }
    }
}

impl std::error::Error for IsaError {}
