//! Deterministic dynamic-trace generation.
//!
//! A [`TraceWalker`] walks a kernel's control-flow graph the way a single
//! warp would execute it, resolving every [`BranchBehavior`] annotation
//! deterministically from a seed. The resulting dynamic instruction stream is
//! used by
//!
//! * the register-interval length study (Table 4), which needs the number of
//!   dynamic instructions between PREFETCH points and the "optimal" interval
//!   length over the raw trace,
//! * the register-cache hit-rate study (Figure 4), and
//! * unit tests that compare the timing simulator's control flow against an
//!   architecture-independent reference.

use serde::{Deserialize, Serialize};

use crate::{BlockId, BranchBehavior, Instruction, Kernel, Terminator};

/// A single dynamic instruction: which block it came from, its index within
/// that block, and the executed instruction itself (borrowed from the kernel).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry<'k> {
    /// Block the instruction belongs to.
    pub block: BlockId,
    /// Index of the instruction within its block.
    pub index: usize,
    /// The instruction.
    pub instruction: &'k Instruction,
}

/// Summary statistics of a dynamic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total dynamic instructions executed.
    pub dynamic_instructions: u64,
    /// Number of dynamic basic-block executions.
    pub dynamic_blocks: u64,
    /// Number of taken branches.
    pub taken_branches: u64,
    /// Number of not-taken branches.
    pub not_taken_branches: u64,
}

/// A deterministic xorshift PRNG used to resolve probabilistic branches.
///
/// The simulator and the trace walker share this generator so the same warp
/// with the same seed takes exactly the same path in both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchRng {
    state: u64,
}

impl BranchRng {
    /// Creates a generator from a seed (zero is remapped internally).
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        BranchRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns `true` with the given probability.
    pub fn chance(&mut self, probability: f64) -> bool {
        if probability <= 0.0 {
            return false;
        }
        if probability >= 1.0 {
            return true;
        }
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < probability
    }
}

/// Walks a kernel's CFG as one warp would execute it.
///
/// The walker maintains per-branch loop counters so that
/// [`BranchBehavior::Loop`] annotations produce exactly `trip_count`
/// executions of the loop body per loop entry, and uses a [`BranchRng`] for
/// probabilistic branches. A global dynamic-instruction cap guards against
/// pathological (or buggy) infinite loops in synthetic workloads.
#[derive(Debug)]
pub struct TraceWalker<'k> {
    kernel: &'k Kernel,
    rng: BranchRng,
    max_dynamic_instructions: u64,
}

impl<'k> TraceWalker<'k> {
    /// Default cap on the number of dynamic instructions walked.
    pub const DEFAULT_MAX_DYNAMIC_INSTRUCTIONS: u64 = 5_000_000;

    /// Creates a walker over `kernel` with the given branch-resolution seed.
    #[must_use]
    pub fn new(kernel: &'k Kernel, seed: u64) -> Self {
        TraceWalker {
            kernel,
            rng: BranchRng::new(seed),
            max_dynamic_instructions: Self::DEFAULT_MAX_DYNAMIC_INSTRUCTIONS,
        }
    }

    /// Overrides the dynamic-instruction cap.
    #[must_use]
    pub fn with_max_instructions(mut self, max: u64) -> Self {
        self.max_dynamic_instructions = max;
        self
    }

    /// Runs the walk to completion, invoking `visit` for every dynamic
    /// instruction, and returns summary statistics.
    pub fn walk(mut self, mut visit: impl FnMut(&TraceEntry<'k>)) -> TraceStats {
        let mut stats = TraceStats::default();
        let cfg = &self.kernel.cfg;
        // Remaining-iteration counters for loop branches, keyed by block id.
        let mut loop_remaining: Vec<Option<u32>> = vec![None; cfg.block_count()];
        let mut current = cfg.entry();
        loop {
            stats.dynamic_blocks += 1;
            let block = cfg.block(current);
            for (index, instruction) in block.instructions().iter().enumerate() {
                stats.dynamic_instructions += 1;
                visit(&TraceEntry {
                    block: current,
                    index,
                    instruction,
                });
                if stats.dynamic_instructions >= self.max_dynamic_instructions {
                    return stats;
                }
            }
            match *block
                .terminator()
                .expect("validated kernels are terminated")
            {
                Terminator::Exit => return stats,
                Terminator::Jump(t) => current = t,
                Terminator::Branch {
                    taken,
                    not_taken,
                    behavior,
                } => {
                    let take = match behavior {
                        BranchBehavior::AlwaysTaken => true,
                        BranchBehavior::NeverTaken => false,
                        BranchBehavior::Probabilistic { taken_probability } => {
                            self.rng.chance(taken_probability)
                        }
                        BranchBehavior::Loop { trip_count } => {
                            let slot = &mut loop_remaining[current.index()];
                            let remaining = slot.get_or_insert(trip_count.saturating_sub(1));
                            if *remaining > 0 {
                                *remaining -= 1;
                                true
                            } else {
                                *slot = None;
                                false
                            }
                        }
                    };
                    if take {
                        stats.taken_branches += 1;
                        current = taken;
                    } else {
                        stats.not_taken_branches += 1;
                        current = not_taken;
                    }
                }
            }
        }
    }

    /// Convenience wrapper: collects the sequence of executed block ids.
    #[must_use]
    pub fn block_sequence(self) -> Vec<BlockId> {
        let mut blocks = Vec::new();
        let mut last: Option<BlockId> = None;
        self.walk(|e| {
            if last != Some(e.block) {
                blocks.push(e.block);
                last = Some(e.block);
            }
        });
        blocks
    }
}

/// Computes only the summary statistics of a kernel's trace.
#[must_use]
pub fn trace_stats(kernel: &Kernel, seed: u64) -> TraceStats {
    TraceWalker::new(kernel, seed).walk(|_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{straight_line_kernel, ArchReg, KernelBuilder, Opcode};

    fn loop_kernel(trip: u32, body_insts: usize) -> Kernel {
        let mut b = KernelBuilder::new("loop", 8);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.push(entry, Opcode::Mov, Some(ArchReg::new(0)), &[]);
        b.jump(entry, body);
        for i in 0..body_insts {
            b.push(
                body,
                Opcode::FAlu,
                Some(ArchReg::new((1 + i % 4) as u8)),
                &[ArchReg::new(0)],
            );
        }
        b.loop_branch(body, body, exit, trip);
        b.exit(exit);
        b.build().unwrap()
    }

    #[test]
    fn straight_line_trace_counts() {
        let k = straight_line_kernel("s", 4, 25);
        let stats = trace_stats(&k, 1);
        assert_eq!(stats.dynamic_instructions, 25);
        assert_eq!(stats.dynamic_blocks, 1);
        assert_eq!(stats.taken_branches + stats.not_taken_branches, 0);
    }

    #[test]
    fn loop_executes_trip_count_times() {
        let k = loop_kernel(5, 3);
        let stats = trace_stats(&k, 7);
        // 1 entry inst + 5 iterations * 3 body insts
        assert_eq!(stats.dynamic_instructions, 1 + 5 * 3);
        assert_eq!(stats.taken_branches, 4);
        assert_eq!(stats.not_taken_branches, 1);
    }

    #[test]
    fn nested_loop_reenters_correctly() {
        // outer loop runs 3 times, inner loop 4 times per outer iteration
        let mut b = KernelBuilder::new("nested", 8);
        let entry = b.entry_block();
        let outer = b.add_block();
        let inner = b.add_block();
        let latch = b.add_block();
        let exit = b.add_block();
        b.jump(entry, outer);
        b.push(outer, Opcode::IAlu, Some(ArchReg::new(0)), &[]);
        b.jump(outer, inner);
        b.push(
            inner,
            Opcode::FAlu,
            Some(ArchReg::new(1)),
            &[ArchReg::new(0)],
        );
        b.loop_branch(inner, inner, latch, 4);
        b.loop_branch(latch, outer, exit, 3);
        b.exit(exit);
        let k = b.build().unwrap();
        let stats = trace_stats(&k, 3);
        // outer body inst: 3; inner body inst: 3*4
        assert_eq!(stats.dynamic_instructions, 3 + 12);
    }

    #[test]
    fn probabilistic_branches_are_deterministic_per_seed() {
        let mut b = KernelBuilder::new("prob", 4);
        let entry = b.entry_block();
        let a = b.add_block();
        let c = b.add_block();
        let join = b.add_block();
        let back = b.add_block();
        let exit = b.add_block();
        b.jump(entry, back);
        b.push(a, Opcode::IAlu, Some(ArchReg::new(1)), &[]);
        b.jump(a, join);
        b.push(c, Opcode::FAlu, Some(ArchReg::new(2)), &[]);
        b.jump(c, join);
        b.jump(join, exit);
        b.branch(back, a, c, BranchBehavior::balanced());
        b.exit(exit);
        let k = b.build().unwrap();
        let s1 = TraceWalker::new(&k, 42).block_sequence();
        let s2 = TraceWalker::new(&k, 42).block_sequence();
        assert_eq!(s1, s2, "same seed, same path");
    }

    #[test]
    fn always_and_never_taken() {
        assert!(BranchRng::new(1).chance(1.0));
        assert!(!BranchRng::new(1).chance(0.0));
        let mut rng = BranchRng::new(9);
        let mut taken = 0;
        for _ in 0..10_000 {
            if rng.chance(0.25) {
                taken += 1;
            }
        }
        let rate = taken as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn instruction_cap_terminates_infinite_loops() {
        let mut b = KernelBuilder::new("inf", 4);
        let entry = b.entry_block();
        b.push(entry, Opcode::IAlu, Some(ArchReg::new(0)), &[]);
        b.branch(entry, entry, entry, BranchBehavior::AlwaysTaken);
        let k = b.build().unwrap();
        let stats = TraceWalker::new(&k, 1)
            .with_max_instructions(1000)
            .walk(|_| {});
        assert_eq!(stats.dynamic_instructions, 1000);
    }

    #[test]
    fn block_sequence_compresses_consecutive_instructions() {
        let k = loop_kernel(2, 2);
        let seq = TraceWalker::new(&k, 1).block_sequence();
        // entry, then the body block; consecutive loop iterations of the same
        // block are collapsed, and the empty exit block is never recorded.
        assert_eq!(seq.len(), 2);
    }
}
