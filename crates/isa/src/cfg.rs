//! Control-flow graph over basic blocks.

use std::collections::{HashSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::{BasicBlock, BlockId, IsaError, RegSet, Terminator};

/// A control-flow graph: a set of basic blocks with a designated entry block.
///
/// Successor edges are stored implicitly in each block's terminator;
/// predecessor lists are derived and cached when the CFG is constructed (and
/// re-derived whenever the structure is mutated through [`Cfg::split_block`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    entry: BlockId,
    preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds a CFG from blocks. Block *i* must have id `BlockId(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or block ids are not dense and in order.
    #[must_use]
    pub fn new(blocks: Vec<BasicBlock>, entry: BlockId) -> Self {
        assert!(!blocks.is_empty(), "CFG must have at least one block");
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.id().index(), i, "block ids must be dense and ordered");
        }
        let mut cfg = Cfg {
            blocks,
            entry,
            preds: Vec::new(),
        };
        cfg.rebuild_preds();
        cfg
    }

    fn rebuild_preds(&mut self) {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in &self.blocks {
            for s in b.successors() {
                if s.index() < self.blocks.len() {
                    preds[s.index()].push(b.id());
                }
            }
        }
        self.preds = preds;
    }

    /// Returns the entry block id.
    #[must_use]
    pub const fn entry(&self) -> BlockId {
        self.entry
    }

    /// Returns the number of basic blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Returns mutable access to the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Iterates over all blocks in id order.
    pub fn blocks(&self) -> impl Iterator<Item = &BasicBlock> {
        self.blocks.iter()
    }

    /// Returns the successor blocks of `id`.
    #[must_use]
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).successors()
    }

    /// Returns the predecessor blocks of `id`.
    #[must_use]
    pub fn predecessors(&self, id: BlockId) -> &[BlockId] {
        &self.preds[id.index()]
    }

    /// Returns all block ids in reverse post-order from the entry.
    ///
    /// Unreachable blocks are appended at the end in id order so that every
    /// block appears exactly once.
    #[must_use]
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut postorder = Vec::with_capacity(self.blocks.len());
        // Iterative DFS to avoid recursion limits on very deep CFGs.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some((block, child)) = stack.pop() {
            let succs = self.successors(block);
            if child < succs.len() {
                stack.push((block, child + 1));
                let s = succs[child];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(block);
            }
        }
        postorder.reverse();
        for (i, seen) in visited.iter().enumerate() {
            if !seen {
                postorder.push(BlockId(i as u32));
            }
        }
        postorder
    }

    /// Returns the set of blocks reachable from the entry block.
    #[must_use]
    pub fn reachable(&self) -> HashSet<BlockId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(self.entry);
        seen.insert(self.entry);
        while let Some(b) = queue.pop_front() {
            for s in self.successors(b) {
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        seen
    }

    /// Returns the back edges `(from, to)` of the CFG, where `to` dominates
    /// `from` is *approximated* by `to` being an ancestor of `from` in the
    /// DFS spanning tree. For the reducible CFGs produced by
    /// [`crate::KernelBuilder`] this identifies exactly the natural-loop back
    /// edges.
    #[must_use]
    pub fn back_edges(&self) -> Vec<(BlockId, BlockId)> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; self.blocks.len()];
        let mut edges = Vec::new();
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        color[self.entry.index()] = Color::Grey;
        while let Some((block, child)) = stack.pop() {
            let succs = self.successors(block);
            if child < succs.len() {
                stack.push((block, child + 1));
                let s = succs[child];
                match color[s.index()] {
                    Color::White => {
                        color[s.index()] = Color::Grey;
                        stack.push((s, 0));
                    }
                    Color::Grey => edges.push((block, s)),
                    Color::Black => {}
                }
            } else {
                color[block.index()] = Color::Black;
            }
        }
        edges
    }

    /// Returns the total number of static instructions in the CFG.
    #[must_use]
    pub fn static_instruction_count(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }

    /// Returns the set of all registers referenced anywhere in the CFG.
    #[must_use]
    pub fn all_registers(&self) -> RegSet {
        let mut set = RegSet::new();
        for b in &self.blocks {
            set.union_with(&b.touched_registers());
        }
        set
    }

    /// Splits the block `id` at instruction index `at`, moving instructions
    /// `at..` (and the original terminator) into a new block appended at the
    /// end of the CFG. The original block gets a [`Terminator::Jump`] to the
    /// new block. Returns the new block's id.
    ///
    /// This mirrors the paper's Algorithm 1 lines 30–37, which cut a basic
    /// block whose active register list overflows the register-cache
    /// partition.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `at` is greater than the block
    /// length.
    pub fn split_block(&mut self, id: BlockId, at: usize) -> BlockId {
        let new_id = BlockId(self.blocks.len() as u32);
        let (tail, old_term) = {
            let block = &mut self.blocks[id.index()];
            assert!(at <= block.len(), "split point beyond block length");
            let tail: Vec<_> = block.instructions()[at..].to_vec();
            let old_term = *block.terminator().expect("split target must be terminated");
            // Truncate by rebuilding: BasicBlock does not expose truncate to
            // keep its invariants simple.
            let head: Vec<_> = block.instructions()[..at].to_vec();
            let mut replacement = BasicBlock::new(id);
            for inst in head {
                replacement.push(inst);
            }
            replacement.set_terminator(Terminator::Jump(new_id));
            *block = replacement;
            (tail, old_term)
        };
        let mut new_block = BasicBlock::new(new_id);
        for inst in tail {
            new_block.push(inst);
        }
        new_block.set_terminator(old_term);
        self.blocks.push(new_block);
        self.rebuild_preds();
        new_id
    }

    /// Validates structural invariants of the CFG against the declared number
    /// of registers per thread.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: dangling branch targets, missing
    /// terminators, out-of-range registers, or unreachable blocks.
    pub fn validate(&self, regs_per_thread: u16) -> Result<(), IsaError> {
        if self.blocks.is_empty() {
            return Err(IsaError::EmptyKernel);
        }
        for b in &self.blocks {
            let term = b.terminator().ok_or(IsaError::MissingTerminator(b.id()))?;
            for t in term.successors() {
                if t.index() >= self.blocks.len() {
                    return Err(IsaError::UnknownBlock {
                        from: b.id(),
                        target: t,
                    });
                }
            }
            for (idx, inst) in b.instructions().iter().enumerate() {
                for reg in inst.touched().iter() {
                    if reg.index() as u16 >= regs_per_thread {
                        return Err(IsaError::RegisterOutOfRange {
                            block: b.id(),
                            index: idx,
                            register: reg.index() as u16,
                            regs_per_thread,
                        });
                    }
                }
            }
        }
        let reachable = self.reachable();
        for b in &self.blocks {
            if !reachable.contains(&b.id()) {
                return Err(IsaError::UnreachableBlock(b.id()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchReg, BranchBehavior, Instruction, Opcode};

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    /// Builds the nested-loop CFG of the paper's Figure 6:
    /// A -> B, B -> C, C -> B (inner back edge), C -> A (outer back edge),
    /// C -> exit.
    fn nested_loop_cfg() -> Cfg {
        let mut a = BasicBlock::new(BlockId(0));
        a.push(Instruction::new(Opcode::IAlu, Some(r(0)), &[]));
        a.set_terminator(Terminator::Jump(BlockId(1)));
        let mut b = BasicBlock::new(BlockId(1));
        b.push(Instruction::new(Opcode::FAlu, Some(r(1)), &[r(0)]));
        b.set_terminator(Terminator::Jump(BlockId(2)));
        let mut c = BasicBlock::new(BlockId(2));
        c.push(Instruction::new(Opcode::FAlu, Some(r(2)), &[r(1)]));
        c.set_terminator(Terminator::Branch {
            taken: BlockId(1),
            not_taken: BlockId(3),
            behavior: BranchBehavior::Loop { trip_count: 4 },
        });
        let mut d = BasicBlock::new(BlockId(3));
        d.set_terminator(Terminator::Branch {
            taken: BlockId(0),
            not_taken: BlockId(4),
            behavior: BranchBehavior::Loop { trip_count: 2 },
        });
        let mut e = BasicBlock::new(BlockId(4));
        e.set_terminator(Terminator::Exit);
        Cfg::new(vec![a, b, c, d, e], BlockId(0))
    }

    #[test]
    fn predecessors_are_derived() {
        let cfg = nested_loop_cfg();
        assert_eq!(cfg.predecessors(BlockId(1)), &[BlockId(0), BlockId(2)]);
        assert_eq!(cfg.predecessors(BlockId(0)), &[BlockId(3)]);
        assert!(cfg.predecessors(BlockId(0)).contains(&BlockId(3)));
    }

    #[test]
    fn reverse_postorder_starts_at_entry_and_covers_all() {
        let cfg = nested_loop_cfg();
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.len(), cfg.block_count());
        assert_eq!(rpo[0], BlockId(0));
        let unique: HashSet<_> = rpo.iter().collect();
        assert_eq!(unique.len(), rpo.len());
    }

    #[test]
    fn back_edges_identify_loops() {
        let cfg = nested_loop_cfg();
        let edges = cfg.back_edges();
        assert!(edges.contains(&(BlockId(2), BlockId(1))), "inner loop edge");
        assert!(edges.contains(&(BlockId(3), BlockId(0))), "outer loop edge");
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn static_counts_and_registers() {
        let cfg = nested_loop_cfg();
        assert_eq!(cfg.static_instruction_count(), 3);
        assert_eq!(cfg.all_registers().len(), 3);
    }

    #[test]
    fn split_block_moves_tail_and_rewires() {
        let mut cfg = nested_loop_cfg();
        let new = cfg.split_block(BlockId(2), 0);
        assert_eq!(new, BlockId(5));
        assert_eq!(cfg.block(BlockId(2)).len(), 0);
        assert_eq!(cfg.block(new).len(), 1);
        assert_eq!(cfg.successors(BlockId(2)), vec![new]);
        // The new block inherits the old branch terminator.
        assert_eq!(cfg.successors(new), vec![BlockId(1), BlockId(3)]);
        // Predecessors were rebuilt.
        assert!(cfg.predecessors(BlockId(1)).contains(&new));
    }

    #[test]
    fn validation_catches_bad_register() {
        let cfg = nested_loop_cfg();
        assert!(cfg.validate(8).is_ok());
        assert!(matches!(
            cfg.validate(2),
            Err(IsaError::RegisterOutOfRange { .. })
        ));
    }

    #[test]
    fn validation_catches_missing_terminator() {
        let mut a = BasicBlock::new(BlockId(0));
        a.push(Instruction::new(Opcode::Nop, None, &[]));
        let cfg = Cfg {
            blocks: vec![a],
            entry: BlockId(0),
            preds: vec![Vec::new()],
        };
        assert_eq!(
            cfg.validate(8),
            Err(IsaError::MissingTerminator(BlockId(0)))
        );
    }

    #[test]
    fn validation_catches_unreachable_block() {
        let mut a = BasicBlock::new(BlockId(0));
        a.set_terminator(Terminator::Exit);
        let mut b = BasicBlock::new(BlockId(1));
        b.set_terminator(Terminator::Exit);
        let cfg = Cfg::new(vec![a, b], BlockId(0));
        assert_eq!(cfg.validate(8), Err(IsaError::UnreachableBlock(BlockId(1))));
    }
}
