//! Property-based tests for the core ISA data structures.

use ltrf_isa::{ArchReg, BranchBehavior, KernelBuilder, Opcode, RegSet};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = ArchReg> {
    any::<u8>().prop_map(ArchReg::new)
}

fn arb_regset() -> impl Strategy<Value = RegSet> {
    proptest::collection::vec(arb_reg(), 0..64).prop_map(RegSet::from_iter)
}

proptest! {
    /// Union is commutative, associative, and idempotent; the empty set is
    /// its identity.
    #[test]
    fn union_laws(a in arb_regset(), b in arb_regset(), c in arb_regset()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a);
        prop_assert_eq!(a.union(&RegSet::new()), a);
    }

    /// Intersection distributes over union.
    #[test]
    fn intersection_distributes(a in arb_regset(), b in arb_regset(), c in arb_regset()) {
        prop_assert_eq!(
            a.intersection(&b.union(&c)),
            a.intersection(&b).union(&a.intersection(&c))
        );
    }

    /// |A ∪ B| = |A| + |B| − |A ∩ B|.
    #[test]
    fn inclusion_exclusion(a in arb_regset(), b in arb_regset()) {
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
    }

    /// Difference removes exactly the intersection.
    #[test]
    fn difference_laws(a in arb_regset(), b in arb_regset()) {
        let diff = a.difference(&b);
        prop_assert!(diff.is_disjoint(&b));
        prop_assert_eq!(diff.union(&a.intersection(&b)), a);
        prop_assert!(diff.is_subset(&a));
    }

    /// Membership after insert/remove behaves like a set.
    #[test]
    fn insert_remove_membership(mut s in arb_regset(), r in arb_reg()) {
        s.insert(r);
        prop_assert!(s.contains(r));
        s.remove(r);
        prop_assert!(!s.contains(r));
    }

    /// Round-tripping through the 256-bit wire encoding is lossless.
    #[test]
    fn words_round_trip(s in arb_regset()) {
        prop_assert_eq!(RegSet::from_words(s.to_words()), s);
    }

    /// Iteration yields strictly ascending register indices whose count is
    /// the set's length.
    #[test]
    fn iteration_sorted_and_complete(s in arb_regset()) {
        let v = s.to_vec();
        prop_assert_eq!(v.len(), s.len());
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        for r in &v {
            prop_assert!(s.contains(*r));
        }
    }
}

proptest! {
    /// A chain of self-loops built via the builder always validates, and its
    /// dynamic instruction count is exactly the sum over loops of
    /// `trip_count × body_instructions`.
    #[test]
    fn builder_loop_chain_traces_exactly(trips in proptest::collection::vec(1u32..8, 1..5),
                                         body in 1usize..6) {
        let mut b = KernelBuilder::new("p", 16);
        let mut prev = b.entry_block();
        let mut expected: u64 = 0;
        for &trip in &trips {
            let header = b.add_block();
            b.jump(prev, header);
            for i in 0..body {
                b.push(header, Opcode::FAlu, Some(ArchReg::new((i % 8) as u8)), &[ArchReg::new(8)]);
            }
            let next = b.add_block();
            b.loop_branch(header, header, next, trip);
            expected += u64::from(trip) * body as u64;
            prev = next;
        }
        b.exit(prev);
        let kernel = b.build();
        prop_assert!(kernel.is_ok());
        let kernel = kernel.unwrap();
        let stats = ltrf_isa::trace::trace_stats(&kernel, 11);
        prop_assert_eq!(stats.dynamic_instructions, expected);
        // Taken branches: each loop takes its back edge trip-1 times.
        let expected_taken: u64 = trips.iter().map(|&t| u64::from(t) - 1).sum();
        prop_assert_eq!(stats.taken_branches, expected_taken);
        prop_assert_eq!(stats.not_taken_branches, trips.len() as u64);
        let _ = BranchBehavior::balanced();
    }
}
