//! Regenerates Figure 9: IPC of BL, RFC, LTRF, LTRF+, and Ideal on the 8×
//! register-file configurations #6 and #7.

use ltrf_bench::{figure9, format_table, mean, Fig9Row, SuiteSelection};

fn print_config(config_id: u8, rows: &[Fig9Row]) {
    println!(
        "\nFigure 9{}: configuration #{config_id}, IPC normalized to baseline\n",
        if config_id == 6 { 'a' } else { 'b' }
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                if r.register_sensitive {
                    "sensitive"
                } else {
                    "insensitive"
                }
                .to_string(),
                format!("{:.2}", r.bl),
                format!("{:.2}", r.rfc),
                format!("{:.2}", r.ltrf),
                format!("{:.2}", r.ltrf_plus),
                format!("{:.2}", r.ideal),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Workload", "Category", "BL", "RFC", "LTRF", "LTRF+", "Ideal"],
            &table
        )
    );
    let avg = |f: fn(&Fig9Row) -> f64| mean(&rows.iter().map(f).collect::<Vec<_>>());
    println!(
        "Averages: BL {:.2}, RFC {:.2}, LTRF {:.2}, LTRF+ {:.2}, Ideal {:.2}",
        avg(|r| r.bl),
        avg(|r| r.rfc),
        avg(|r| r.ltrf),
        avg(|r| r.ltrf_plus),
        avg(|r| r.ideal)
    );
}

fn main() {
    println!("Figure 9: overall effect on GPU performance (8x register file)");
    // One canonical campaign run (the registry's `fig9` entry covers both
    // configurations), pivoted into the paper's two sub-figures.
    for (config, rows) in figure9(SuiteSelection::Full) {
        print_config(config, &rows);
    }
    println!("\nPaper: LTRF ~1.32x and LTRF+ ~1.31x on average, within 5% of Ideal; RFC loses performance.");
}
