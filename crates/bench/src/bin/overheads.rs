//! Prints the §4.3 overhead accounting.

use ltrf_bench::{overheads, SuiteSelection};

fn main() {
    let report = overheads(SuiteSelection::Full);
    println!("Section 4.3 overheads of LTRF\n");
    println!(
        "WCB storage               {} bits/warp, {} KB total ({:.1}% of the 256 KB register file; paper: ~5%)",
        report.wcb.bits_per_warp,
        report.wcb.total_bytes() / 1024,
        report.wcb_fraction_of_regfile * 100.0
    );
    println!(
        "Register-file cache       {:.1}% of the main register file capacity",
        report.cache_fraction_of_regfile * 100.0
    );
    println!(
        "Estimated area overhead   {:.0}% (paper: 16%)",
        report.area_overhead * 100.0
    );
    println!(
        "Code-size overhead        {:.1}% (paper: 7% embedded bit-vectors, 9% explicit instructions)",
        report.code_size_overhead * 100.0
    );
}
