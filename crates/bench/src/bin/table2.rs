//! Regenerates Table 2: register-file design points.

use ltrf_bench::{format_table, table2};

fn main() {
    println!("Table 2: register file configurations (calibrated | analytical model)\n");
    let rows: Vec<Vec<String>> = table2()
        .into_iter()
        .map(|(c, est)| {
            vec![
                c.id.to_string(),
                c.technology.to_string(),
                format!("{}x", c.bank_count_factor),
                format!("{}x", c.bank_size_factor),
                c.network.to_string(),
                format!("{}x", c.capacity_factor),
                format!("{}x | {:.2}x", c.area_factor, est.area_factor),
                format!("{}x | {:.2}x", c.power_factor, est.power_factor),
                format!("{:.0}x", c.capacity_per_area()),
                format!("{:.1}x", c.capacity_per_power()),
                format!("{}x | {:.2}x", c.latency_factor, est.latency_factor),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Config",
                "Cell Tech",
                "#Banks",
                "Bank Size",
                "Network",
                "Cap.",
                "Area",
                "Power",
                "Cap/Area",
                "Cap/Power",
                "Latency"
            ],
            &rows
        )
    );
}
