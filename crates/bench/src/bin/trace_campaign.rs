//! Runs a trace-driven campaign: BL vs. LTRF on configuration #6 over
//! kernels lowered from accelsim-style trace files by `ltrf-trace`.
//!
//! ```text
//! trace_campaign [TRACE...]   (default: the three example traces under examples/traces/)
//! ```

use ltrf_bench::{format_table, trace_campaign, TraceCampaignRow};
use ltrf_sweep::CampaignParams;

fn main() {
    let traces: Vec<String> = std::env::args().skip(1).collect();
    let shown: Vec<String> = if traces.is_empty() {
        CampaignParams::DEFAULT_TRACES
            .iter()
            .map(|p| (*p).to_string())
            .collect()
    } else {
        traces.clone()
    };
    println!(
        "Trace campaign: {} trace file(s), BL vs LTRF on configuration #6",
        shown.len()
    );
    for path in &shown {
        println!("  {path}");
    }
    println!();

    let rows: Vec<TraceCampaignRow> = trace_campaign(&traces, 1);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.organization.label().to_string(),
                r.points.to_string(),
                format!("{:.3}", r.mean_ipc),
                format!("{:.3}", r.mean_normalized_ipc),
                format!("{:.1}%", r.mean_l2_hit_rate * 100.0),
                format!("{:.1}%", r.mean_dram_row_hit_rate * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Org", "Points", "IPC", "Norm IPC", "L2 hit", "DRAM row-hit"],
            &table
        )
    );
    println!(
        "Lowered kernels replay each trace's dynamic PC stream, so identical trace bytes \
         reproduce these rows exactly. (This binary runs uncached unless LTRF_CACHE_DIR is \
         set; `sweep trace-campaign` is the cached entry point.)"
    );
}
