//! Regenerates Figure 2: on-chip memory capacity across GPU generations.

use ltrf_bench::{figure2, format_table};

fn main() {
    println!("Figure 2: on-chip memory capacity across NVIDIA GPU generations\n");
    let rows: Vec<Vec<String>> = figure2()
        .iter()
        .map(|g| {
            vec![
                format!("{} ({})", g.name, g.year),
                format!("{:.2}", g.l1_and_shared_mb),
                format!("{:.2}", g.l2_mb),
                format!("{:.2}", g.register_file_mb),
                format!("{:.2}", g.total_mb()),
                format!("{:.0}%", g.register_file_share() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Generation",
                "L1D+Shared (MB)",
                "L2 (MB)",
                "Register file (MB)",
                "Total (MB)",
                "RF share"
            ],
            &rows
        )
    );
}
