//! Regenerates Figure 14: IPC vs. register-file latency for BL, RFC, SHRF,
//! LTRF (strand), and LTRF (register-interval).
//!
//! A thin wrapper over the canonical `ltrf_sweep::campaigns::fig14_spec`
//! campaign — the same matrix `sweep fig14` runs (the cached entry point
//! with CSV/JSON reports). Set `LTRF_CACHE_DIR` to the CLI's cache
//! directory to serve shared points from it instead of recomputing.

use ltrf_bench::{figure14, format_table, SuiteSelection};

fn main() {
    println!(
        "Figure 14: normalized IPC vs. main register-file latency, by register-caching scheme\n"
    );
    let series = figure14(SuiteSelection::Full);
    let factors: Vec<String> = series[0]
        .points
        .iter()
        .map(|(f, _)| format!("{f:.0}x"))
        .collect();
    let mut header = vec!["Scheme"];
    header.extend(factors.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.label.clone()];
            row.extend(s.points.iter().map(|(_, ipc)| format!("{ipc:.2}")));
            row
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    println!("Paper: SHRF ~ RFC (tolerates ~2x); LTRF with strands ~3x; LTRF with register-intervals ~5.3x.");
}
