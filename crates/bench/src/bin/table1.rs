//! Regenerates Table 1: register-file capacity required for maximum TLP.

use ltrf_bench::{format_table, table1};

fn main() {
    println!("Table 1: register file capacity required to maximize TLP");
    println!("(35-kernel screening suite, maxregcount lifted)\n");
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|row| {
            let r = row.requirement;
            vec![
                format!(
                    "{} ({}KB)",
                    r.architecture.name,
                    r.architecture.baseline_regfile_bytes / 1024
                ),
                format!("{}KB ({:.1}x)", r.average_bytes / 1024, r.average_factor()),
                format!("{}KB ({:.1}x)", r.max_bytes / 1024, r.max_factor()),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["GPU (baseline RF)", "Average required", "Maximum required"],
            &rows
        )
    );
    println!("Paper: Fermi 184KB (1.4x) avg / 324KB (2.5x) max; Maxwell 588KB (2.3x) avg / 1504KB (5.9x) max.");
}
