//! Regenerates Figure 12: LTRF IPC vs. register-file latency for different
//! register-interval sizes.
//!
//! A thin wrapper over the canonical `ltrf_sweep::campaigns::fig12_spec`
//! campaign — the same matrix `sweep fig12` runs (the cached entry point
//! with CSV/JSON reports). Set `LTRF_CACHE_DIR` to the CLI's cache
//! directory to serve shared points from it instead of recomputing.

use ltrf_bench::{figure12, format_table, SuiteSelection};

fn main() {
    println!("Figure 12: normalized IPC of LTRF vs. main register-file latency, by registers per interval\n");
    let series = figure12(SuiteSelection::Full);
    let factors: Vec<String> = series[0]
        .points
        .iter()
        .map(|(f, _)| format!("{f:.0}x"))
        .collect();
    let mut header = vec!["Series"];
    header.extend(factors.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.label.clone()];
            row.extend(s.points.iter().map(|(_, ipc)| format!("{ipc:.2}")));
            row
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    println!("Paper: 8 registers per interval degrades markedly; 16 and 32 behave similarly.");
}
