//! Runs the interconnect study: LTRF on configuration #6 over each swept
//! SM↔L2 network topology at each SM count (beyond the paper's fixed
//! single-topology machine).
//!
//! ```text
//! interconnect [TOPOLOGIES] [SM_COUNTS]   (defaults: ideal,crossbar,mesh and 1,4,16)
//! ```

use ltrf_bench::{format_table, interconnect_campaign, InterconnectRow, SuiteSelection};
use ltrf_sim::Topology;
use ltrf_sweep::InterconnectCampaignParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let topologies: Vec<Topology> = args
        .first()
        .map(String::as_str)
        .unwrap_or("ideal,crossbar,mesh")
        .split(',')
        .map(|t| t.parse().unwrap_or_else(|e| panic!("topology `{t}`: {e}")))
        .collect();
    let sm_counts: Vec<usize> = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("1,4,16")
        .split(',')
        .map(|n| n.parse().unwrap_or_else(|e| panic!("SM count `{n}`: {e}")))
        .collect();

    let params = InterconnectCampaignParams {
        topologies,
        sm_counts,
        ..InterconnectCampaignParams::default()
    };
    println!(
        "Interconnect campaign: LTRF on configuration #6, link width {} B, queue depth {}\n",
        params.link_width, params.queue_depth
    );
    let rows: Vec<InterconnectRow> = interconnect_campaign(SuiteSelection::Quick, &params);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.topology.label().to_string(),
                r.sm_count.to_string(),
                format!("{:.3}", r.mean_ipc),
                format!("{:.1}%", r.mean_l2_hit_rate * 100.0),
                format!("{:.1}", r.mean_l2_queue_wait),
                format!("{:.2}", r.mean_noc_latency),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Topology",
                "SMs",
                "IPC",
                "L2 hit",
                "L2 queue wait",
                "NoC latency"
            ],
            &table
        )
    );
    println!(
        "Single-SM points never touch the shared network, so their network columns read zero; \
         the ideal topology is latency-free at every scale. (This binary runs uncached; \
         `sweep interconnect` is the cached entry point.)"
    );
}
