//! Regenerates Figure 11: maximum tolerable register-file access latency.

use ltrf_bench::{figure11, format_table, mean, SuiteSelection};

fn main() {
    println!("Figure 11: maximum tolerable register-file access latency (5% IPC loss)\n");
    let rows = figure11(SuiteSelection::Full, 0.05);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                format!("{:.1}x", r.bl),
                format!("{:.1}x", r.rfc),
                format!("{:.1}x", r.ltrf),
                format!("{:.1}x", r.ltrf_plus),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["Workload", "BL", "RFC", "LTRF", "LTRF+"], &table)
    );
    println!(
        "\nAverages at 5% loss: BL {:.1}x, RFC {:.1}x, LTRF {:.1}x, LTRF+ {:.1}x (paper: RFC 2.1x, LTRF 5.3x, LTRF+ 6.2x)",
        mean(&rows.iter().map(|r| r.bl).collect::<Vec<_>>()),
        mean(&rows.iter().map(|r| r.rfc).collect::<Vec<_>>()),
        mean(&rows.iter().map(|r| r.ltrf).collect::<Vec<_>>()),
        mean(&rows.iter().map(|r| r.ltrf_plus).collect::<Vec<_>>()),
    );
    for (loss, label) in [(0.01, "1%"), (0.10, "10%")] {
        let rows = figure11(SuiteSelection::Full, loss);
        println!(
            "Averages at {label} loss: BL {:.1}x, RFC {:.1}x, LTRF {:.1}x, LTRF+ {:.1}x",
            mean(&rows.iter().map(|r| r.bl).collect::<Vec<_>>()),
            mean(&rows.iter().map(|r| r.rfc).collect::<Vec<_>>()),
            mean(&rows.iter().map(|r| r.ltrf).collect::<Vec<_>>()),
            mean(&rows.iter().map(|r| r.ltrf_plus).collect::<Vec<_>>()),
        );
    }
}
