//! Regenerates Figure 4: register-cache hit rates.

use ltrf_bench::{figure4, format_table, mean, SuiteSelection};

fn main() {
    let rows = figure4(SuiteSelection::Full);
    println!("Figure 4: register-file cache hit rates (16 KB cache)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                if r.register_sensitive {
                    "sensitive"
                } else {
                    "insensitive"
                }
                .to_string(),
                format!("{:.0}%", r.hw_hit_rate * 100.0),
                format!("{:.0}%", r.sw_hit_rate * 100.0),
                format!("{:.0}%", r.ltrf_hit_rate * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Workload",
                "Category",
                "HW cache (RFC)",
                "SW cache (SHRF)",
                "LTRF"
            ],
            &table
        )
    );
    println!(
        "\nSuite averages: RFC {:.0}%, SHRF {:.0}%, LTRF {:.0}% (paper: HW/SW caches 8-30%, LTRF near-perfect)",
        mean(&rows.iter().map(|r| r.hw_hit_rate).collect::<Vec<_>>()) * 100.0,
        mean(&rows.iter().map(|r| r.sw_hit_rate).collect::<Vec<_>>()) * 100.0,
        mean(&rows.iter().map(|r| r.ltrf_hit_rate).collect::<Vec<_>>()) * 100.0,
    );
}
