//! Regenerates Figure 10: register-file power on configuration #7.
//!
//! A thin wrapper over the canonical `ltrf_sweep::campaigns::fig10_spec`
//! campaign — the configuration-#7 slice of the `sweep power` design-point
//! sweep (the cached entry point with CSV/JSON reports and calibration
//! knobs). Set `LTRF_CACHE_DIR` to the CLI's cache directory to serve
//! shared points from it instead of recomputing.

use ltrf_bench::{figure10, format_table, mean, SuiteSelection};

fn main() {
    let rows = figure10(SuiteSelection::Full);
    println!("Figure 10: register-file power on configuration #7 (DWM), normalized to baseline\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                if r.register_sensitive {
                    "sensitive"
                } else {
                    "insensitive"
                }
                .to_string(),
                format!("{:.2}", r.rfc),
                format!("{:.2}", r.ltrf),
                format!("{:.2}", r.ltrf_plus),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["Workload", "Category", "RFC", "LTRF", "LTRF+"], &table)
    );
    println!(
        "\nSuite averages: RFC {:.2}, LTRF {:.2}, LTRF+ {:.2} (paper: 0.65, 0.65, 0.54)",
        mean(&rows.iter().map(|r| r.rfc).collect::<Vec<_>>()),
        mean(&rows.iter().map(|r| r.ltrf).collect::<Vec<_>>()),
        mean(&rows.iter().map(|r| r.ltrf_plus).collect::<Vec<_>>()),
    );
}
