//! Regenerates Figure 13: LTRF IPC vs. register-file latency for different
//! active-warp counts.
//!
//! A thin wrapper over the canonical `ltrf_sweep::campaigns::fig13_spec`
//! campaign — the same matrix `sweep fig13` runs (the cached entry point
//! with CSV/JSON reports). Set `LTRF_CACHE_DIR` to the CLI's cache
//! directory to serve shared points from it instead of recomputing.

use ltrf_bench::{figure13, format_table, SuiteSelection};

fn main() {
    println!("Figure 13: normalized IPC of LTRF vs. main register-file latency, by active warps\n");
    let series = figure13(SuiteSelection::Full);
    let factors: Vec<String> = series[0]
        .points
        .iter()
        .map(|(f, _)| format!("{f:.0}x"))
        .collect();
    let mut header = vec!["Series"];
    header.extend(factors.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.label.clone()];
            row.extend(s.points.iter().map(|(_, ipc)| format!("{ipc:.2}")));
            row
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    println!("Paper: 4 active warps is not enough to hide a slow register file; 8 and 16 behave similarly.");
}
