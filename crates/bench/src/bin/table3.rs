//! Prints the simulated system configuration (Table 3).

use ltrf_bench::table3;

fn main() {
    let gpu = table3();
    let c = gpu.sm;
    println!("Table 3: simulated system configuration\n");
    println!("Streaming multiprocessors   {}", gpu.sm_count);
    println!("Core clock                  {} MHz", c.core_clock_mhz);
    println!(
        "Scheduler                   Two-level ({} active warps)",
        c.active_warps
    );
    println!("Warps per SM                {}", c.max_warps);
    println!(
        "Register file size          {} KB per SM",
        c.regfile_bytes / 1024
    );
    println!(
        "Register file cache size    {} KB per SM",
        c.regfile_cache_bytes / 1024
    );
    println!(
        "Shared memory size          {} KB per SM",
        c.shared_mem_bytes / 1024
    );
    println!(
        "L1D cache                   {}-way, {} KB, {} B lines (per SM)",
        c.memory.l1d_ways,
        c.memory.l1d_bytes / 1024,
        c.memory.line_bytes
    );
    println!(
        "Shared L2                   {}-way, {} MB, {} slices at {} cycles/request",
        c.memory.llc_ways,
        c.memory.llc_bytes / (1024 * 1024),
        gpu.l2.slices,
        gpu.l2.service_cycles
    );
    println!(
        "Memory model                {} GDDR5-like channels, FR-FCFS row-hit {} / row-miss {} cycles",
        c.memory.dram_channels, c.memory.dram_row_hit_latency, c.memory.dram_row_miss_latency
    );
    println!("Registers per interval      {}", 16);
    println!("Issue width                 {}", c.issue_width);
    println!("Operand collectors          {}", c.operand_collectors);
}
