//! Runs a generated-workload campaign: BL vs. LTRF on configuration #6 over
//! a seeded random kernel population (beyond the paper's fixed suite).
//!
//! ```text
//! gen_campaign [POPULATION] [SEED] [SM_COUNT]   (defaults: 32, the campaign seed, 1)
//! ```

use ltrf_bench::{format_table, gen_campaign, GenCampaignRow};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |i: usize, default: u64| -> u64 {
        args.get(i)
            .map(|a| a.parse().unwrap_or_else(|e| panic!("argument {i}: {e}")))
            .unwrap_or(default)
    };
    let population = arg(0, 32) as usize;
    let seed = arg(1, ltrf_sweep::CAMPAIGN_SEED);
    let sm_count = arg(2, 1) as usize;

    println!(
        "Generated campaign: population {population} from seed {seed} at {sm_count} SM(s), \
         BL vs LTRF on configuration #6\n"
    );
    let rows: Vec<GenCampaignRow> = gen_campaign(population, seed, sm_count);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.organization.label().to_string(),
                r.points.to_string(),
                format!("{:.3}", r.mean_ipc),
                format!("{:.3}", r.mean_normalized_ipc),
                format!("{:.1}%", r.mean_l2_hit_rate * 100.0),
                format!("{:.1}%", r.mean_dram_row_hit_rate * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Org", "Points", "IPC", "Norm IPC", "L2 hit", "DRAM row-hit"],
            &table
        )
    );
    println!(
        "Population members are index-stable draws, so reruns with the same seed and bounds \
         reproduce these rows exactly. (This binary runs uncached; `sweep gen-campaign` is \
         the cached entry point.)"
    );
}
