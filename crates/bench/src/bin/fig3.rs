//! Regenerates Figure 3: ideal vs. real 8× TFET-SRAM register file.

use ltrf_bench::{figure3, format_table, mean, SuiteSelection};

fn main() {
    let rows = figure3(SuiteSelection::Full);
    println!(
        "Figure 3: 8x register file (TFET SRAM, configuration #6), IPC normalized to baseline\n"
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                if r.register_sensitive {
                    "sensitive"
                } else {
                    "insensitive"
                }
                .to_string(),
                format!("{:.2}", r.ideal_normalized_ipc),
                format!("{:.2}", r.real_normalized_ipc),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Workload",
                "Category",
                "Ideal TFET-SRAM",
                "TFET-SRAM (real latency)"
            ],
            &table
        )
    );
    let sensitive: Vec<_> = rows.iter().filter(|r| r.register_sensitive).collect();
    let ideal_avg = mean(
        &sensitive
            .iter()
            .map(|r| r.ideal_normalized_ipc)
            .collect::<Vec<_>>(),
    );
    let real_avg = mean(
        &sensitive
            .iter()
            .map(|r| r.real_normalized_ipc)
            .collect::<Vec<_>>(),
    );
    println!(
        "\nRegister-sensitive average: ideal {ideal_avg:.2}x, real {real_avg:.2}x (paper: ideal ~1.37x; real loses most of the gain)"
    );
}
