//! Measures the sweep engine's throughput and cache behaviour on fixed
//! reproduction slices and writes the snapshot to `BENCH_sweep.json` at the
//! repository root (or to the path given as the first argument).
//!
//! Each slice runs twice against a fresh private cache directory: a cold
//! pass, where every point computes and populates the cache, and a warm
//! pass, where every point must hit it. The recorded quantities are
//! wall-clock seconds, points per second, and the cache hit rate of each
//! pass — the same floor-rounded rate the `sweep` CLI summaries print. The
//! checked-in `BENCH_sweep.json` is the latest snapshot; regenerate it with:
//!
//! ```text
//! cargo run --release -p ltrf-bench --bin bench_sweep
//! ```
//!
//! Two slices are measured, both with the fixed campaign seed so the work
//! is identical run to run:
//!
//! * `table2-quick` — the Table 2 design-point sweep over the quick suite
//!   (the engine's canonical suite-workload slice);
//! * `trace-campaign` — BL vs. LTRF over the three checked-in example
//!   traces (the `ltrf-trace` ingestion frontend, whose cache identity is
//!   the trace file's content fingerprint).

use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::Serialize;

use ltrf_sweep::{registry, run_sweep, CampaignParams, ExecutorOptions, SweepResults, SweepSpec};

/// One timed executor pass over a slice.
#[derive(Debug, Serialize)]
struct Pass {
    seconds: f64,
    points_per_sec: f64,
    cache_hit_rate: f64,
    computed: usize,
    cached: usize,
}

/// One measured slice: the same spec run cold then warm.
#[derive(Debug, Serialize)]
struct Slice {
    name: String,
    campaign: String,
    points: usize,
    failures: usize,
    cold: Pass,
    warm: Pass,
}

/// The whole snapshot written to `BENCH_sweep.json`.
#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: &'static str,
    command: &'static str,
    threads: usize,
    slices: Vec<Slice>,
}

/// Resolves a registry campaign's single canonical spec under `params`.
fn registry_spec(campaign: &str, params: &CampaignParams) -> SweepSpec {
    registry()
        .find(campaign)
        .unwrap_or_else(|| panic!("campaign `{campaign}` is registered"))
        .specs(params)
        .expect("benchmark slice parameters are valid")
        .into_iter()
        .next()
        .expect("single-spec campaign")
}

fn timed_pass(spec: &SweepSpec, options: &ExecutorOptions) -> (SweepResults, Pass) {
    let start = Instant::now();
    let results = run_sweep(spec, options);
    let seconds = start.elapsed().as_secs_f64();
    let pass = Pass {
        seconds: round(seconds, 3),
        points_per_sec: round(results.len() as f64 / seconds.max(1e-9), 1),
        cache_hit_rate: results.cache_hit_rate(),
        computed: results.computed_count(),
        cached: results.cached_count(),
    };
    (results, pass)
}

fn round(value: f64, decimals: u32) -> f64 {
    let scale = 10f64.powi(decimals as i32);
    (value * scale).round() / scale
}

fn measure(name: &str, campaign: &str, params: &CampaignParams) -> Slice {
    let spec = registry_spec(campaign, params);
    let cache_dir =
        std::env::temp_dir().join(format!("ltrf-bench-sweep-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let options = ExecutorOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ExecutorOptions::default()
    };

    let (cold_results, cold) = timed_pass(&spec, &options);
    let (warm_results, warm) = timed_pass(&spec, &options);
    if warm.cached != warm_results.len() {
        eprintln!(
            "warning: slice `{name}` warm pass hit only {}/{} points — the engine or \
             cache identity is nondeterministic",
            warm.cached,
            warm_results.len()
        );
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "{name}: {} points, cold {:.3}s ({:.1} points/s), warm {:.3}s ({}% hit rate)",
        cold_results.len(),
        cold.seconds,
        cold.points_per_sec,
        warm.seconds,
        ltrf_sweep::floored_hit_percent(warm.cached, warm_results.len()),
    );
    Slice {
        name: name.to_string(),
        campaign: campaign.to_string(),
        points: cold_results.len(),
        failures: cold_results.failure_count(),
        cold,
        warm,
    }
}

/// The checked-in example traces, made absolute so the binary works from
/// any working directory.
fn example_traces() -> Vec<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    CampaignParams::DEFAULT_TRACES
        .iter()
        .map(|p| root.join(p).to_string_lossy().into_owned())
        .collect()
}

fn main() {
    let output: PathBuf = std::env::args().nth(1).map_or_else(
        || Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json"),
        PathBuf::from,
    );

    let slices = vec![
        measure(
            "table2-quick",
            "table2",
            &CampaignParams {
                quick: true,
                ..CampaignParams::default()
            },
        ),
        measure(
            "trace-campaign",
            "trace-campaign",
            &CampaignParams {
                trace_paths: example_traces(),
                ..CampaignParams::default()
            },
        ),
    ];

    let report = BenchReport {
        benchmark: "sweep-engine throughput and cache behaviour (cold vs. warm)",
        command: "cargo run --release -p ltrf-bench --bin bench_sweep",
        threads: ltrf_sweep::default_threads(),
        slices,
    };
    let json = serde::to_json_string(&report);
    std::fs::write(&output, format!("{json}\n")).unwrap_or_else(|e| {
        panic!("cannot write {}: {e}", output.display());
    });
    println!("wrote {}", output.display());
}
