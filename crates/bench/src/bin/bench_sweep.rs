//! Measures the sweep engine's throughput and cache behaviour on fixed
//! reproduction slices and writes the snapshot to `BENCH_sweep.json` at the
//! repository root (or to the path given as the first argument).
//!
//! Each slice runs twice against a fresh private cache directory: a cold
//! pass, where every point computes and populates the cache, and a warm
//! pass, where every point must hit it. The recorded quantities are
//! wall-clock seconds, points per second, and the cache hit rate of each
//! pass — the same floor-rounded rate the `sweep` CLI summaries print. The
//! checked-in `BENCH_sweep.json` is the latest snapshot; regenerate it with:
//!
//! ```text
//! cargo run --release -p ltrf-bench --bin bench_sweep
//! ```
//!
//! Four slices are measured, all with the fixed campaign seed so the work
//! is identical run to run:
//!
//! * `table2-quick` — the Table 2 design-point sweep over the quick suite
//!   (the engine's canonical suite-workload slice);
//! * `trace-campaign` — BL vs. LTRF over the three checked-in example
//!   traces (the `ltrf-trace` ingestion frontend, whose cache identity is
//!   the trace file's content fingerprint);
//! * `interconnect-quick` — the crossbar slice of the interconnect campaign
//!   over the quick suite and its 1/4/16-SM axis (multi-SM points pay the
//!   SM↔L2 network model; the non-default [`ltrf_sim::InterconnectConfig`]
//!   is cache-key material, exercising the extended point identity);
//! * `gen-10k-streaming` — a 10,000-point generated-population campaign
//!   (5,000 members × BL/LTRF under tight generator bounds) driven through
//!   the bounded-memory path: `run_streaming` into a [`StreamingCsvWriter`]
//!   with no retained records, exercising the packed cache at scale.
//!
//! With `--check`, the binary instead runs the same slices and compares them
//! against the committed snapshot without rewriting it: every warm pass must
//! hit the cache on 100% of points, and every cold pass must stay within 30%
//! of the committed points-per-second figure. A violation exits nonzero, so
//! CI can use this as a perf smoke gate over the checked-in trajectory.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use serde::{Serialize, Value};

use ltrf_sweep::{
    registry, run_sweep, CampaignParams, CampaignSession, CampaignTotals, ExecutorOptions,
    StreamingCsvWriter, SweepResults, SweepSpec, Unobserved,
};

/// One timed executor pass over a slice.
#[derive(Debug, Serialize)]
struct Pass {
    seconds: f64,
    points_per_sec: f64,
    cache_hit_rate: f64,
    computed: usize,
    cached: usize,
}

/// One measured slice: the same spec run cold then warm.
#[derive(Debug, Serialize)]
struct Slice {
    name: String,
    campaign: String,
    points: usize,
    failures: usize,
    cold: Pass,
    warm: Pass,
}

/// The whole snapshot written to `BENCH_sweep.json`.
#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: &'static str,
    command: &'static str,
    threads: usize,
    slices: Vec<Slice>,
}

/// Resolves a registry campaign's single canonical spec under `params`.
fn registry_spec(campaign: &str, params: &CampaignParams) -> SweepSpec {
    registry()
        .find(campaign)
        .unwrap_or_else(|| panic!("campaign `{campaign}` is registered"))
        .specs(params)
        .expect("benchmark slice parameters are valid")
        .into_iter()
        .next()
        .expect("single-spec campaign")
}

fn timed_pass(spec: &SweepSpec, options: &ExecutorOptions) -> (SweepResults, Pass) {
    let start = Instant::now();
    let results = run_sweep(spec, options);
    let seconds = start.elapsed().as_secs_f64();
    let pass = Pass {
        seconds: round(seconds, 3),
        points_per_sec: round(results.len() as f64 / seconds.max(1e-9), 1),
        cache_hit_rate: results.cache_hit_rate(),
        computed: results.computed_count(),
        cached: results.cached_count(),
    };
    (results, pass)
}

fn round(value: f64, decimals: u32) -> f64 {
    let scale = 10f64.powi(decimals as i32);
    (value * scale).round() / scale
}

fn measure(name: &str, campaign: &str, params: &CampaignParams) -> Slice {
    let spec = registry_spec(campaign, params);
    let cache_dir =
        std::env::temp_dir().join(format!("ltrf-bench-sweep-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let options = ExecutorOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ExecutorOptions::default()
    };

    let (cold_results, cold) = timed_pass(&spec, &options);
    let (warm_results, warm) = timed_pass(&spec, &options);
    if warm.cached != warm_results.len() {
        eprintln!(
            "warning: slice `{name}` warm pass hit only {}/{} points — the engine or \
             cache identity is nondeterministic",
            warm.cached,
            warm_results.len()
        );
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "{name}: {} points, cold {:.3}s ({:.1} points/s), warm {:.3}s ({:.1}% hit rate)",
        cold_results.len(),
        cold.seconds,
        cold.points_per_sec,
        warm.seconds,
        ltrf_sweep::hit_percent_1dp(warm.cached, warm_results.len()),
    );
    Slice {
        name: name.to_string(),
        campaign: campaign.to_string(),
        points: cold_results.len(),
        failures: cold_results.failure_count(),
        cold,
        warm,
    }
}

/// One timed pass through the bounded-memory path: `run_streaming` with a
/// [`StreamingCsvWriter`] sink, retaining no records. Provenance comes from
/// the executor's [`CampaignTotals`] instead of retained results.
fn timed_streaming_pass(
    spec: &SweepSpec,
    options: &ExecutorOptions,
    csv_path: &Path,
) -> (CampaignTotals, Pass) {
    let start = Instant::now();
    let csv = StreamingCsvWriter::create(csv_path).expect("create streaming CSV");
    let totals = CampaignSession::new(spec, options).run_streaming(&Unobserved, &csv);
    csv.finish().expect("flush streaming CSV");
    let seconds = start.elapsed().as_secs_f64();
    let pass = Pass {
        seconds: round(seconds, 3),
        points_per_sec: round(totals.points as f64 / seconds.max(1e-9), 1),
        cache_hit_rate: totals.hit_rate,
        computed: totals.computed,
        cached: totals.cached,
    };
    (totals, pass)
}

/// Measures a slice through the streaming path — the configuration a
/// 10k-point campaign is expected to run in: records dropped as soon as
/// they are folded into the CSV, memory bounded by the reorder buffer.
fn measure_streaming(name: &str, campaign: &str, params: &CampaignParams) -> Slice {
    let spec = registry_spec(campaign, params);
    let scratch =
        std::env::temp_dir().join(format!("ltrf-bench-sweep-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create bench scratch directory");
    let options = ExecutorOptions {
        cache_dir: Some(scratch.join("cache")),
        ..ExecutorOptions::default()
    };

    let (cold_totals, cold) = timed_streaming_pass(&spec, &options, &scratch.join("cold.csv"));
    let (warm_totals, warm) = timed_streaming_pass(&spec, &options, &scratch.join("warm.csv"));
    if warm.cached != warm_totals.points {
        eprintln!(
            "warning: slice `{name}` warm pass hit only {}/{} points — the engine or \
             cache identity is nondeterministic",
            warm.cached, warm_totals.points
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "{name}: {} points (streaming), cold {:.3}s ({:.1} points/s), warm {:.3}s \
         ({:.1}% hit rate)",
        cold_totals.points,
        cold.seconds,
        cold.points_per_sec,
        warm.seconds,
        ltrf_sweep::hit_percent_1dp(warm.cached, warm_totals.points),
    );
    Slice {
        name: name.to_string(),
        campaign: campaign.to_string(),
        points: cold_totals.points,
        failures: cold_totals.failed,
        cold,
        warm,
    }
}

/// The checked-in example traces, made absolute so the binary works from
/// any working directory.
fn example_traces() -> Vec<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    CampaignParams::DEFAULT_TRACES
        .iter()
        .map(|p| root.join(p).to_string_lossy().into_owned())
        .collect()
}

/// A cold pass may run up to 30% slower than the committed snapshot before
/// `--check` fails; slack for machine noise, not for real regressions.
const COLD_REGRESSION_FLOOR: f64 = 0.7;

fn measure_all() -> Vec<Slice> {
    vec![
        measure(
            "table2-quick",
            "table2",
            &CampaignParams {
                quick: true,
                ..CampaignParams::default()
            },
        ),
        measure(
            "trace-campaign",
            "trace-campaign",
            &CampaignParams {
                trace_paths: example_traces(),
                ..CampaignParams::default()
            },
        ),
        measure(
            "interconnect-quick",
            "interconnect",
            &CampaignParams {
                quick: true,
                // One topology makes this the registry's single-spec shape
                // (the full campaign emits one spec per swept topology).
                topology: Some(ltrf_sim::Topology::Crossbar),
                ..CampaignParams::default()
            },
        ),
        measure_streaming(
            "gen-10k-streaming",
            "gen-campaign",
            &CampaignParams {
                population: Some(5_000),
                min_regs: Some(8),
                max_regs: Some(16),
                max_outer_trips: Some(1),
                max_inner_trips: Some(2),
                max_body_alu: Some(2),
                max_body_loads: Some(1),
                ..CampaignParams::default()
            },
        ),
    ]
}

/// The committed cold points-per-second figure for `name`, if the snapshot
/// records that slice.
fn committed_cold_rate(snapshot: &Value, name: &str) -> Option<f64> {
    snapshot
        .get("slices")?
        .as_array()?
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some(name))?
        .get("cold")?
        .get("points_per_sec")?
        .as_f64()
}

/// Runs the slices and compares them against the committed snapshot: every
/// warm pass must hit on 100% of points, and no cold pass may fall below
/// [`COLD_REGRESSION_FLOOR`] of its committed points-per-second figure.
fn check(snapshot_path: &Path) -> ExitCode {
    let text = std::fs::read_to_string(snapshot_path).unwrap_or_else(|e| {
        panic!("cannot read {}: {e}", snapshot_path.display());
    });
    let snapshot = Value::parse_json(&text).unwrap_or_else(|e| {
        panic!("{} is not valid JSON: {e}", snapshot_path.display());
    });

    let mut failures = Vec::new();
    for slice in measure_all() {
        if slice.warm.cached != slice.points {
            failures.push(format!(
                "slice `{}`: warm pass hit only {}/{} points — the cache identity or \
                 engine determinism regressed",
                slice.name, slice.warm.cached, slice.points
            ));
        }
        if slice.failures != 0 {
            failures.push(format!(
                "slice `{}`: {} points failed to compute",
                slice.name, slice.failures
            ));
        }
        match committed_cold_rate(&snapshot, &slice.name) {
            Some(committed) => {
                let floor = committed * COLD_REGRESSION_FLOOR;
                if slice.cold.points_per_sec < floor {
                    failures.push(format!(
                        "slice `{}`: cold throughput regressed — {:.1} points/s vs \
                         committed {committed:.1} (floor {floor:.1})",
                        slice.name, slice.cold.points_per_sec
                    ));
                } else {
                    println!(
                        "slice `{}`: cold {:.1} points/s vs committed {committed:.1} \
                         (floor {floor:.1}) — ok",
                        slice.name, slice.cold.points_per_sec
                    );
                }
            }
            None => failures.push(format!(
                "slice `{}` is missing from {} — regenerate the snapshot",
                slice.name,
                snapshot_path.display()
            )),
        }
    }

    if failures.is_empty() {
        println!("perf check passed against {}", snapshot_path.display());
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let default_snapshot = || Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--check") => {
            let snapshot = args.next().map_or_else(default_snapshot, PathBuf::from);
            return check(&snapshot);
        }
        Some(path) => return write_snapshot(&PathBuf::from(path)),
        None => {}
    }
    write_snapshot(&default_snapshot())
}

fn write_snapshot(output: &Path) -> ExitCode {
    let report = BenchReport {
        benchmark: "sweep-engine throughput and cache behaviour (cold vs. warm)",
        command: "cargo run --release -p ltrf-bench --bin bench_sweep",
        threads: ltrf_sweep::default_threads(),
        slices: measure_all(),
    };
    let json = serde::to_json_string(&report);
    std::fs::write(output, format!("{json}\n")).unwrap_or_else(|e| {
        panic!("cannot write {}: {e}", output.display());
    });
    println!("wrote {}", output.display());
    ExitCode::SUCCESS
}
