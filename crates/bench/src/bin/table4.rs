//! Regenerates Table 4: real vs. optimal register-interval lengths.

use ltrf_bench::{format_table, mean, table4, SuiteSelection};

fn main() {
    let rows = table4(SuiteSelection::Full);
    println!("Table 4: register-interval lengths (dynamic instructions, N = 16)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                format!("{:.1}", r.report.real.mean),
                format!("{}", r.report.real.min),
                format!("{}", r.report.real.max),
                format!("{:.1}", r.report.optimal.mean),
                format!("{}", r.report.optimal.min),
                format!("{}", r.report.optimal.max),
                format!("{:.0}%", r.report.mean_ratio() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Workload", "Real avg", "Real min", "Real max", "Opt avg", "Opt min", "Opt max",
                "Real/Opt"
            ],
            &table
        )
    );
    let real_avg = mean(&rows.iter().map(|r| r.report.real.mean).collect::<Vec<_>>());
    let opt_avg = mean(
        &rows
            .iter()
            .map(|r| r.report.optimal.mean)
            .collect::<Vec<_>>(),
    );
    println!(
        "\nSuite average: real {real_avg:.1}, optimal {opt_avg:.1}, ratio {:.0}%",
        real_avg / opt_avg * 100.0
    );
    println!("Paper: real 31.2 avg (7 min, 45 max); optimal 34.7 avg (9 min, 53 max); ratio 89%.");
}
