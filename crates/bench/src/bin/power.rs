//! Regenerates the design-point power sweep: normalized register-file
//! power of RFC, LTRF, and LTRF+ on every Table 2 configuration.
//!
//! A thin wrapper over the registry's `power` campaign — the same matrix
//! `sweep power` runs (the cached entry point with CSV/JSON reports and
//! calibration knobs); the `config_id = 7` row is Figure 10. Set
//! `LTRF_CACHE_DIR` to the CLI's cache directory to serve shared points
//! from it instead of recomputing.

use ltrf_bench::{format_table, power_sweep, SuiteSelection};

fn main() {
    println!("Power sweep: normalized register-file power per design point (suite mean)\n");
    let rows: Vec<Vec<String>> = power_sweep(SuiteSelection::Full)
        .into_iter()
        .map(|r| {
            vec![
                format!("#{}", r.config_id),
                format!("{:.3}", r.rfc),
                format!("{:.3}", r.ltrf),
                format!("{:.3}", r.ltrf_plus),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["Config", "RFC", "LTRF", "LTRF+"], &rows)
    );
    println!("The configuration #7 row is Figure 10; the paper reports 0.65 / 0.65 / 0.54 there.");
}
