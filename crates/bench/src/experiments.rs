//! One function per table and figure of the paper.
//!
//! Every paper-artifact campaign (fig9–fig14, table2, power) is dispatched
//! through the campaign registry ([`ltrf_sweep::api`]) — the same
//! [`ltrf_sweep::Campaign`] entries the `sweep` CLI generates its
//! subcommands from — and executed on an observed
//! [`ltrf_sweep::CampaignSession`], with failure reporting
//! riding the typed event stream; the functions here only pivot the
//! engine's records into the paper's row shapes. Preliminary studies with
//! no CLI campaign (fig3, fig4) build their own [`SweepSpec`]
//! cross-products, and compiler-only studies (Table 4, §4.3 overheads) use
//! the engine's raw parallel primitive.

use std::collections::HashMap;

use serde::Serialize;

use ltrf_core::{
    capacity_requirement, overhead_report, paper_latency_factors, CapacityRequirement,
    ExperimentConfig, GpuArchitecture, Organization, OverheadInputs, OverheadReport,
};
use ltrf_isa::RegisterSensitivity;
use ltrf_sim::{GpuConfig, Topology};
use ltrf_sweep::api::config_org_mean;
use ltrf_sweep::{
    registry, CampaignEvent, CampaignParams, CampaignSession, ExecutorOptions, MemorySelection,
    PointData, PointMeans, SeedMode, SweepResults, SweepSpec, SweepSpecBuilder,
};
use ltrf_tech::configs::RegFileConfig;
use ltrf_tech::generations::{figure2_generations, GpuGeneration};
use ltrf_workloads::{evaluated_suite, quick_suite, unconstrained_register_demands, Workload};

/// Which part of the workload suite an experiment runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteSelection {
    /// All fourteen evaluated workloads (the paper's configuration).
    Full,
    /// A four-workload subset (two register-sensitive, two insensitive) used
    /// by unit tests and the Criterion benches to keep wall-clock time down.
    Quick,
}

/// Returns the workloads selected by `selection`.
#[must_use]
pub fn suite(selection: SuiteSelection) -> Vec<Workload> {
    match selection {
        SuiteSelection::Full => evaluated_suite(),
        SuiteSelection::Quick => quick_suite(),
    }
}

/// Runs `f` over the workloads in parallel and collects the results in suite
/// order, via the `ltrf-sweep` execution engine.
///
/// A workload whose experiment fails (panic or error) is reported on stderr
/// and dropped from the rows instead of killing the whole figure — the
/// engine's panic isolation replaces the old `std::thread::scope` fan-out
/// that aborted on the first panicking thread.
fn par_map<T, F>(workloads: &[Workload], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Workload) -> T + Sync,
{
    ltrf_sweep::parallel_points(workloads, None, f)
        .into_iter()
        .zip(workloads)
        .filter_map(|(outcome, workload)| match outcome {
            Ok(row) => Some(row),
            Err(panic_msg) => {
                eprintln!(
                    "experiment on `{}` failed and was skipped: {panic_msg}",
                    workload.name()
                );
                None
            }
        })
        .collect()
}

/// Seed used by every experiment so results are reproducible run to run
/// (and cache-compatible with the `sweep` CLI's campaigns).
const SEED: u64 = ltrf_sweep::CAMPAIGN_SEED;

// ---------------------------------------------------------------------------
// Sweep plumbing shared by the simulation-backed figures
// ---------------------------------------------------------------------------

/// Starts a sweep-spec builder over the given workloads with the harness's
/// fixed campaign seed (the preliminary fig3/fig4 studies, which have no
/// CLI campaign and therefore no registry entry).
fn figure_sweep(name: &str, workloads: &[Workload]) -> SweepSpecBuilder {
    let names: Vec<String> = workloads.iter().map(|w| w.name().to_string()).collect();
    SweepSpec::builder(name)
        .workloads(names)
        .seed_mode(SeedMode::Fixed(SEED))
}

/// The harness's campaign parameters: the given suite selection with every
/// other knob at its canonical default (fixed campaign seed, one SM,
/// default bounds and calibration) — exactly the parameters the `sweep`
/// CLI resolves for an unflagged invocation, so the two front-ends build
/// byte-identical specs with cache-compatible point identities.
fn harness_params(selection: SuiteSelection) -> CampaignParams {
    CampaignParams {
        quick: selection == SuiteSelection::Quick,
        ..CampaignParams::default()
    }
}

/// The registry entry's canonical spec for a single-spec campaign, under
/// [`harness_params`]. This is how every paper-artifact figure function
/// here gets its campaign: through the same [`ltrf_sweep::api`] registry
/// the CLI dispatches from, so the two surfaces cannot drift.
fn registry_spec(name: &str, selection: SuiteSelection) -> SweepSpec {
    registry_spec_with(name, harness_params(selection))
}

/// [`registry_spec`] with explicit campaign parameters (the beyond-paper
/// campaigns take axes the suite selection does not express).
fn registry_spec_with(name: &str, params: CampaignParams) -> SweepSpec {
    let campaign = registry()
        .find(name)
        .unwrap_or_else(|| panic!("campaign `{name}` is registered"));
    campaign
        .specs(&params)
        .expect("canonical harness parameters are valid")
        .into_iter()
        .next()
        .expect("single-spec campaign")
}

/// The executor options every figure function runs with: all worker
/// threads, and — when the `LTRF_CACHE_DIR` environment variable is set —
/// the `sweep` CLI's content-addressed result cache attached at that
/// directory.
///
/// The harness and the CLI build their campaigns from the same
/// [`ltrf_sweep::campaigns`] constructors with the same fixed campaign
/// seed, so their points have identical cache identities: a bench run with
/// `LTRF_CACHE_DIR` pointed at a CLI-populated cache (the CLI's `--cache`
/// directory, `.sweep-cache` by default) warm-hits every shared point, and
/// vice versa. Unset, figure functions stay side-effect-free (uncached),
/// the historical behaviour.
#[must_use]
pub fn figure_executor_options() -> ExecutorOptions {
    ExecutorOptions {
        cache_dir: std::env::var_os("LTRF_CACHE_DIR").map(std::path::PathBuf::from),
        ..ExecutorOptions::default()
    }
}

/// Runs a figure's spec on an observed [`CampaignSession`] via
/// [`figure_executor_options`], reporting failures as they stream past on
/// the engine's typed event stream (the same stream the `sweep` CLI's
/// progress printing rides).
fn run_figure_spec(spec: &SweepSpec) -> SweepResults {
    let options = figure_executor_options();
    let name = spec.name.clone();
    let observer = move |event: &CampaignEvent| {
        if let CampaignEvent::PointFailed {
            workload,
            organization,
            config_id,
            error,
            ..
        } = event
        {
            eprintln!(
                "{name}: point `{workload}`/{organization} config {config_id} failed: {error}"
            );
        }
    };
    CampaignSession::new(spec, &options).run(&observer)
}

/// Successful points indexed by workload, memory selection, and the
/// configuration's canonical cache-key material — the same full-field
/// identity `ltrf-sweep` content-addresses with, so two distinct points can
/// never collide in the index no matter which axes a figure sweeps.
struct ResultIndex {
    map: HashMap<(String, MemorySelection, String), PointData>,
}

impl ResultIndex {
    fn new(results: &SweepResults) -> Self {
        let map = results
            .successes()
            .map(|(record, data)| {
                (
                    (
                        record.point.workload.clone(),
                        record.point.memory,
                        record.point.config.cache_key_material(),
                    ),
                    data.clone(),
                )
            })
            .collect();
        ResultIndex { map }
    }

    /// The point for `workload` under `config`, with the workload's default
    /// memory behaviour. `config` must be constructed the same way the
    /// spec's points were (the builders here always are).
    fn get(&self, workload: &str, config: &ExperimentConfig) -> Option<&PointData> {
        self.map.get(&(
            workload.to_string(),
            MemorySelection::WorkloadDefault,
            config.cache_key_material(),
        ))
    }

    /// The point for `workload` under `org` on Table 2 configuration
    /// `config_id` (default interval/warp axes).
    fn at(&self, workload: &str, org: Organization, config_id: u8) -> Option<&PointData> {
        self.get(workload, &ExperimentConfig::for_table2(org, config_id))
    }
}

// ---------------------------------------------------------------------------
// Table 1 — register-file capacity required for maximum TLP
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Table1Row {
    /// The architecture's capacity requirement summary.
    pub requirement: CapacityRequirement,
}

/// Computes Table 1 over the 35-kernel screening suite's register demands.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    let demands = unconstrained_register_demands();
    [GpuArchitecture::fermi(), GpuArchitecture::maxwell()]
        .into_iter()
        .filter_map(|arch| capacity_requirement(arch, &demands))
        .map(|requirement| Table1Row { requirement })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 2 — register-file design points
// ---------------------------------------------------------------------------

/// Returns the seven Table 2 configurations together with the analytical
/// model's estimate for each (so the binary can print both side by side).
#[must_use]
pub fn table2() -> Vec<(RegFileConfig, ltrf_tech::bank::BankEstimate)> {
    RegFileConfig::table2()
        .iter()
        .map(|c| (*c, c.bank_model().estimate()))
        .collect()
}

// ---------------------------------------------------------------------------
// Table 3 — simulated system configuration
// ---------------------------------------------------------------------------

/// Returns the simulated system configuration (the reproduction of Table 3):
/// the whole GPU — SM count, the per-SM pipeline, and the shared L2/DRAM.
#[must_use]
pub fn table3() -> GpuConfig {
    GpuConfig::default()
}

// ---------------------------------------------------------------------------
// Table 4 — register-interval lengths
// ---------------------------------------------------------------------------

/// One workload's real and optimal register-interval lengths.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Table4Row {
    /// Workload name.
    pub workload: &'static str,
    /// Lengths of the compiler-produced register-intervals.
    pub report: ltrf_compiler::trace_analysis::IntervalLengthReport,
}

/// Measures real and optimal register-interval lengths (Table 4).
#[must_use]
pub fn table4(selection: SuiteSelection) -> Vec<Table4Row> {
    let workloads = suite(selection);
    par_map(&workloads, |w| {
        let compiled =
            ltrf_compiler::compile(&w.kernel, &ltrf_compiler::CompilerOptions::default())
                .expect("suite kernels compile");
        let report = ltrf_compiler::trace_analysis::interval_length_report(
            &compiled.kernel,
            &compiled.partition,
            16,
            SEED,
        );
        Table4Row {
            workload: w.name(),
            report,
        }
    })
}

// ---------------------------------------------------------------------------
// Figure 2 — on-chip memory across GPU generations
// ---------------------------------------------------------------------------

/// Returns the Figure 2 data series.
#[must_use]
pub fn figure2() -> &'static [GpuGeneration] {
    figure2_generations()
}

// ---------------------------------------------------------------------------
// Figure 3 — ideal vs. real 8× TFET-SRAM register file
// ---------------------------------------------------------------------------

/// One workload's Figure 3 result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: &'static str,
    /// Whether the workload is register-sensitive.
    pub register_sensitive: bool,
    /// IPC of the ideal 8× register file, normalized to the baseline.
    pub ideal_normalized_ipc: f64,
    /// IPC of the real (5.3× latency) TFET-SRAM register file, normalized to
    /// the baseline.
    pub real_normalized_ipc: f64,
}

/// Runs the Figure 3 experiment: an 8× register file built from TFET SRAM
/// (configuration #6), once with its real latency and once idealized.
#[must_use]
pub fn figure3(selection: SuiteSelection) -> Vec<Fig3Row> {
    let workloads = suite(selection);
    let spec = figure_sweep("fig3", &workloads)
        .organizations([Organization::Ideal, Organization::Baseline])
        .config_ids([6])
        .normalize(true)
        .build();
    let index = ResultIndex::new(&run_figure_spec(&spec));
    rows_per_workload(&workloads, |w| {
        let ideal = index.at(w.name(), Organization::Ideal, 6)?;
        let real = index.at(w.name(), Organization::Baseline, 6)?;
        Some(Fig3Row {
            workload: w.name(),
            register_sensitive: w.is_register_sensitive(),
            ideal_normalized_ipc: ideal.normalized_ipc.unwrap_or(0.0),
            real_normalized_ipc: real.normalized_ipc.unwrap_or(0.0),
        })
    })
}

/// Builds one row per selected workload, skipping (with a note) workloads
/// whose points failed.
fn rows_per_workload<T>(
    workloads: &[Workload],
    mut build: impl FnMut(&Workload) -> Option<T>,
) -> Vec<T> {
    workloads
        .iter()
        .filter_map(|w| {
            let row = build(w);
            if row.is_none() {
                eprintln!("`{}` dropped: one of its sweep points failed", w.name());
            }
            row
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 4 — register-cache hit rates
// ---------------------------------------------------------------------------

/// One workload's register-cache hit rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig4Row {
    /// Workload name.
    pub workload: &'static str,
    /// Whether the workload is register-sensitive.
    pub register_sensitive: bool,
    /// Hit rate of the hardware register-file cache.
    pub hw_hit_rate: f64,
    /// Hit rate of the software-managed (SHRF) cache.
    pub sw_hit_rate: f64,
    /// Hit rate of LTRF's prefetch-filled cache (for reference; the paper's
    /// point is that the first two are low).
    pub ltrf_hit_rate: f64,
}

/// Measures register-cache hit rates for RFC, SHRF, and LTRF (Figure 4).
#[must_use]
pub fn figure4(selection: SuiteSelection) -> Vec<Fig4Row> {
    let workloads = suite(selection);
    let spec = figure_sweep("fig4", &workloads)
        .organizations([Organization::Rfc, Organization::Shrf, Organization::Ltrf])
        .config_ids([1])
        .normalize(false)
        .build();
    let index = ResultIndex::new(&run_figure_spec(&spec));
    // A missing point drops the row (`?`); only a present point without a
    // cache statistic reads as a genuine 0% hit rate.
    let hit = |w: &Workload, org: Organization| {
        index
            .at(w.name(), org, 1)
            .map(|d| d.result.cache_hit_rate.unwrap_or(0.0))
    };
    rows_per_workload(&workloads, |w| {
        Some(Fig4Row {
            workload: w.name(),
            register_sensitive: w.is_register_sensitive(),
            hw_hit_rate: hit(w, Organization::Rfc)?,
            sw_hit_rate: hit(w, Organization::Shrf)?,
            ltrf_hit_rate: hit(w, Organization::Ltrf)?,
        })
    })
}

// ---------------------------------------------------------------------------
// Figure 9 — overall IPC on configurations #6 and #7
// ---------------------------------------------------------------------------

/// One workload's normalized IPC under every organization (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig9Row {
    /// Workload name.
    pub workload: &'static str,
    /// Whether the workload is register-sensitive.
    pub register_sensitive: bool,
    /// Normalized IPC of the conventional register file (BL).
    pub bl: f64,
    /// Normalized IPC of the hardware register cache (RFC).
    pub rfc: f64,
    /// Normalized IPC of LTRF.
    pub ltrf: f64,
    /// Normalized IPC of LTRF+.
    pub ltrf_plus: f64,
    /// Normalized IPC of the ideal register file.
    pub ideal: f64,
}

/// Runs the Figure 9 experiment through the registry's `fig9` entry — the
/// full canonical campaign (six organizations on configurations #6 *and*
/// #7), run once and pivoted into per-configuration row sets: one
/// `(config_id, rows)` pair for Figure 9a (#6) and one for Figure 9b (#7).
#[must_use]
pub fn figure9(selection: SuiteSelection) -> Vec<(u8, Vec<Fig9Row>)> {
    let workloads = suite(selection);
    let spec = registry_spec("fig9", selection);
    let index = ResultIndex::new(&run_figure_spec(&spec));
    [6u8, 7]
        .into_iter()
        .map(|config_id| {
            let rows = rows_per_workload(&workloads, |w| {
                let norm = |org: Organization| {
                    index
                        .at(w.name(), org, config_id)
                        .and_then(|d| d.normalized_ipc)
                };
                Some(Fig9Row {
                    workload: w.name(),
                    register_sensitive: w.is_register_sensitive(),
                    bl: norm(Organization::Baseline)?,
                    rfc: norm(Organization::Rfc)?,
                    ltrf: norm(Organization::Ltrf)?,
                    ltrf_plus: norm(Organization::LtrfPlus)?,
                    ideal: norm(Organization::Ideal)?,
                })
            });
            (config_id, rows)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 10 — register-file power on configuration #7
// ---------------------------------------------------------------------------

/// One workload's normalized register-file power (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig10Row {
    /// Workload name.
    pub workload: &'static str,
    /// Whether the workload is register-sensitive.
    pub register_sensitive: bool,
    /// Normalized power of the hardware register cache.
    pub rfc: f64,
    /// Normalized power of LTRF.
    pub ltrf: f64,
    /// Normalized power of LTRF+.
    pub ltrf_plus: f64,
}

/// Runs the Figure 10 power experiment through the registry's `power`
/// entry (Figure 10 *is* that campaign's configuration-#7 slice, which is
/// why the registry reaches it through the `fig10` alias) and pivots the
/// `config_id = 7` points into the paper's per-workload rows. Because the
/// whole design-point sweep runs, a `LTRF_CACHE_DIR` cache populated by
/// either `sweep power` or this function serves the other fully.
#[must_use]
pub fn figure10(selection: SuiteSelection) -> Vec<Fig10Row> {
    let workloads = suite(selection);
    let spec = registry_spec("power", selection);
    let index = ResultIndex::new(&run_figure_spec(&spec));
    rows_per_workload(&workloads, |w| {
        let norm = |org: Organization| index.at(w.name(), org, 7).and_then(|d| d.normalized_power);
        Some(Fig10Row {
            workload: w.name(),
            register_sensitive: w.is_register_sensitive(),
            rfc: norm(Organization::Rfc)?,
            ltrf: norm(Organization::Ltrf)?,
            ltrf_plus: norm(Organization::LtrfPlus)?,
        })
    })
}

// ---------------------------------------------------------------------------
// Figure 11 — maximum tolerable register-file latency
// ---------------------------------------------------------------------------

/// One workload's maximum tolerable latency per organization (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig11Row {
    /// Workload name.
    pub workload: &'static str,
    /// Maximum tolerable latency of BL at the allowed IPC loss.
    pub bl: f64,
    /// Maximum tolerable latency of RFC at the allowed IPC loss.
    pub rfc: f64,
    /// Maximum tolerable latency of LTRF at the allowed IPC loss.
    pub ltrf: f64,
    /// Maximum tolerable latency of LTRF+ at the allowed IPC loss.
    pub ltrf_plus: f64,
}

/// Largest factor whose relative IPC stays within `allowed_loss`, via the
/// core [`ltrf_core::LatencySweep`] definition (the single source of truth
/// for the tolerance metric). `None` if any factor's point is missing.
fn max_tolerable(
    index: &ResultIndex,
    workload: &str,
    base: &ExperimentConfig,
    factors: &[f64],
    allowed_loss: f64,
) -> Option<f64> {
    let ipc_points = factors
        .iter()
        .map(|&factor| {
            let ipc = index
                .get(workload, &base.with_latency_factor(factor))?
                .result
                .ipc;
            Some((factor, ipc))
        })
        .collect::<Option<Vec<_>>>()?;
    ltrf_core::LatencySweep::from_ipc_points(base.organization, &ipc_points)
        .map(|sweep| sweep.max_tolerable_latency(allowed_loss))
}

/// Runs the Figure 11 experiment with the given allowed IPC loss (the paper
/// uses 5%, with 1% and 10% variants in the text), through the registry's
/// `fig11` entry (the same campaign `sweep fig11` runs).
#[must_use]
pub fn figure11(selection: SuiteSelection, allowed_loss: f64) -> Vec<Fig11Row> {
    let workloads = suite(selection);
    let spec = registry_spec("fig11", selection);
    let index = ResultIndex::new(&run_figure_spec(&spec));
    let factors = paper_latency_factors();
    rows_per_workload(&workloads, |w| {
        let tolerance = |org: Organization| {
            max_tolerable(
                &index,
                w.name(),
                &ExperimentConfig::new(org),
                &factors,
                allowed_loss,
            )
        };
        Some(Fig11Row {
            workload: w.name(),
            bl: tolerance(Organization::Baseline)?,
            rfc: tolerance(Organization::Rfc)?,
            ltrf: tolerance(Organization::Ltrf)?,
            ltrf_plus: tolerance(Organization::LtrfPlus)?,
        })
    })
}

// ---------------------------------------------------------------------------
// Figures 12–14 — latency sweeps over design parameters and schemes
// ---------------------------------------------------------------------------

/// A labelled IPC-vs-latency series averaged over the selected workloads.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepSeries {
    /// Series label (e.g. "16 regs", "8 warps", "LTRF (register-interval)").
    pub label: String,
    /// `(latency factor, mean normalized IPC)` points.
    pub points: Vec<(f64, f64)>,
}

/// Builds a labelled series from the engine's canonical
/// [`ltrf_sweep::relative_ipc_series`] aggregation (shared with the `sweep
/// fig12|fig13|fig14` summary tables, so the relative-IPC convention cannot
/// drift between the two entry points). A workload with any failed point is
/// excluded from the whole series, not just from the factors that failed;
/// if *no* workload has a complete curve, the series is all zeros with a
/// note on stderr.
fn labelled_series(
    results: &SweepResults,
    factors: &[f64],
    label: String,
    select: impl Fn(&ltrf_sweep::PointRecord) -> bool,
) -> SweepSeries {
    let means = ltrf_sweep::relative_ipc_series(results, factors, select).unwrap_or_else(|| {
        eprintln!("series `{label}`: no workload has a complete latency curve");
        vec![0.0; factors.len()]
    });
    SweepSeries {
        label,
        points: factors.iter().copied().zip(means).collect(),
    }
}

/// Figure 12: LTRF IPC vs. main-register-file latency for 8/16/32 registers
/// per register-interval, through the registry's `fig12` entry (the same
/// campaign `sweep fig12` runs and its golden-file test pins).
#[must_use]
pub fn figure12(selection: SuiteSelection) -> Vec<SweepSeries> {
    let spec = registry_spec("fig12", selection);
    let results = run_figure_spec(&spec);
    let factors = paper_latency_factors();
    ltrf_sweep::campaigns::FIG12_INTERVAL_SIZES
        .into_iter()
        .map(|n| {
            labelled_series(&results, &factors, format!("{n} regs"), |r| {
                r.point.config.registers_per_interval == n
            })
        })
        .collect()
}

/// Figure 13: LTRF IPC vs. main-register-file latency for 4/8/16 active
/// warps, through the registry's `fig13` entry (the same campaign `sweep
/// fig13` runs).
#[must_use]
pub fn figure13(selection: SuiteSelection) -> Vec<SweepSeries> {
    let spec = registry_spec("fig13", selection);
    let results = run_figure_spec(&spec);
    let factors = paper_latency_factors();
    ltrf_sweep::campaigns::FIG13_WARP_COUNTS
        .into_iter()
        .map(|warps| {
            labelled_series(&results, &factors, format!("{warps} warps"), |r| {
                r.point.config.active_warps == warps
            })
        })
        .collect()
}

/// Figure 14: IPC vs. main-register-file latency for BL, RFC, SHRF,
/// LTRF (strand), and LTRF (register-interval), through the registry's
/// `fig14` entry (the same campaign `sweep fig14` runs).
#[must_use]
pub fn figure14(selection: SuiteSelection) -> Vec<SweepSeries> {
    let spec = registry_spec("fig14", selection);
    let results = run_figure_spec(&spec);
    let factors = paper_latency_factors();
    ltrf_sweep::campaigns::FIG14_ORGS
        .into_iter()
        .map(|org| {
            labelled_series(&results, &factors, org.label().to_string(), |r| {
                r.point.config.organization == org
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 2 sweep and the design-point power sweep
// ---------------------------------------------------------------------------

/// One design point's mean normalized IPC under BL and LTRF (the dynamic
/// half of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Table2SweepRow {
    /// Table 2 design point, 1–7.
    pub config_id: u8,
    /// Mean normalized IPC of the conventional register file.
    pub bl: f64,
    /// Mean normalized IPC of LTRF.
    pub ltrf: f64,
}

/// Sweeps BL and LTRF over every Table 2 design point through the
/// registry's `table2` entry (the same campaign as `sweep table2`),
/// aggregated with the shared [`config_org_mean`] pivot behind the CLI's
/// summary table.
#[must_use]
pub fn table2_sweep(selection: SuiteSelection) -> Vec<Table2SweepRow> {
    let spec = registry_spec("table2", selection);
    let results = run_figure_spec(&spec);
    (1..=7u8)
        .map(|config_id| Table2SweepRow {
            config_id,
            bl: config_org_mean(&results, config_id, Organization::Baseline, |d| {
                d.normalized_ipc
            }),
            ltrf: config_org_mean(&results, config_id, Organization::Ltrf, |d| {
                d.normalized_ipc
            }),
        })
        .collect()
}

/// One design point's mean normalized register-file power per caching
/// scheme (the `sweep power` design-point sweep; the `config_id = 7` row
/// is Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PowerSweepRow {
    /// Table 2 design point, 1–7.
    pub config_id: u8,
    /// Mean normalized power of the hardware register cache.
    pub rfc: f64,
    /// Mean normalized power of LTRF.
    pub ltrf: f64,
    /// Mean normalized power of LTRF+.
    pub ltrf_plus: f64,
}

/// Sweeps RFC/LTRF/LTRF+ register-file power over every Table 2 design
/// point through the registry's `power` entry (the same campaign as `sweep
/// power` at the default calibration), aggregated with the shared
/// [`config_org_mean`] pivot behind the CLI's summary table.
#[must_use]
pub fn power_sweep(selection: SuiteSelection) -> Vec<PowerSweepRow> {
    let spec = registry_spec("power", selection);
    let results = run_figure_spec(&spec);
    (1..=7u8)
        .map(|config_id| PowerSweepRow {
            config_id,
            rfc: config_org_mean(&results, config_id, Organization::Rfc, |d| {
                d.normalized_power
            }),
            ltrf: config_org_mean(&results, config_id, Organization::Ltrf, |d| {
                d.normalized_power
            }),
            ltrf_plus: config_org_mean(&results, config_id, Organization::LtrfPlus, |d| {
                d.normalized_power
            }),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §4.3 overheads
// ---------------------------------------------------------------------------

/// The §4.3 overhead report for the default SM configuration, using the mean
/// code-size overhead of the selected workloads.
#[must_use]
pub fn overheads(selection: SuiteSelection) -> OverheadReport {
    let workloads = suite(selection);
    let stats = par_map(&workloads, |w| {
        ltrf_compiler::compile(&w.kernel, &ltrf_compiler::CompilerOptions::default())
            .expect("suite kernels compile")
            .stats
    });
    let mean_code_size =
        stats.iter().map(|s| s.code_size_overhead).sum::<f64>() / stats.len().max(1) as f64;
    let mean_stats = ltrf_compiler::CompileStats {
        code_size_overhead: mean_code_size,
        ..ltrf_compiler::CompileStats::default()
    };
    overhead_report(&OverheadInputs::default(), Some(&mean_stats))
}

/// Splits rows by register sensitivity, used by several binaries for the
/// per-category averages the paper reports.
#[must_use]
pub fn sensitivity_of(workload: &Workload) -> RegisterSensitivity {
    if workload.is_register_sensitive() {
        RegisterSensitivity::Sensitive
    } else {
        RegisterSensitivity::Insensitive
    }
}

// ---------------------------------------------------------------------------
// GPU scaling — multi-SM campaigns over the shared L2/DRAM
// ---------------------------------------------------------------------------

/// One (SM count, organization) cell of the GPU-scaling study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuScaleRow {
    /// Number of SMs simulated.
    pub sm_count: usize,
    /// The organization under test.
    pub organization: Organization,
    /// Mean whole-GPU IPC over the selected workloads.
    pub mean_ipc: f64,
    /// Mean IPC per SM (scaling efficiency: flat = perfect weak scaling,
    /// decaying = shared-memory contention).
    pub mean_ipc_per_sm: f64,
    /// Mean IPC normalized to the baseline at the same SM count.
    pub mean_normalized_ipc: f64,
    /// Mean shared-L2 hit rate.
    pub mean_l2_hit_rate: f64,
    /// Mean DRAM row-buffer hit rate.
    pub mean_dram_row_hit_rate: f64,
}

/// Runs the GPU-scaling study: baseline and LTRF on configuration #6 at each
/// SM count, grids weak-scaled, all SMs contending for the shared L2 and
/// DRAM. Dispatched through the registry's `gpu-scale` entry (the same
/// campaign as the `sweep gpu-scale` subcommand), exposed to the harness
/// and its tests.
#[must_use]
pub fn gpu_scale(selection: SuiteSelection, sm_counts: &[usize]) -> Vec<GpuScaleRow> {
    let spec = registry_spec_with(
        "gpu-scale",
        CampaignParams {
            sm_counts: Some(sm_counts.to_vec()),
            ..harness_params(selection)
        },
    );
    let results = run_figure_spec(&spec);
    // The shared engine-side pivot (also behind the `sweep gpu-scale`
    // summary table, so the two cannot drift).
    PointMeans::grouped(
        &results,
        sm_counts,
        &[Organization::Baseline, Organization::Ltrf],
    )
    .into_iter()
    .map(|(sm_count, organization, means)| GpuScaleRow {
        sm_count,
        organization,
        mean_ipc: means.ipc,
        mean_ipc_per_sm: means.ipc / sm_count.max(1) as f64,
        mean_normalized_ipc: means.normalized_ipc,
        mean_l2_hit_rate: means.l2_hit_rate,
        mean_dram_row_hit_rate: means.dram_row_hit_rate,
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Generated-workload campaigns — random populations through the sweep engine
// ---------------------------------------------------------------------------

/// One organization's population means in a generated campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GenCampaignRow {
    /// The organization under test.
    pub organization: Organization,
    /// Successful population members aggregated into this row.
    pub points: usize,
    /// Mean IPC over the population.
    pub mean_ipc: f64,
    /// Mean IPC normalized to the baseline on the same member.
    pub mean_normalized_ipc: f64,
    /// Mean L2 hit rate.
    pub mean_l2_hit_rate: f64,
    /// Mean DRAM row-buffer hit rate.
    pub mean_dram_row_hit_rate: f64,
}

/// Runs a generated-workload campaign: baseline and LTRF on configuration #6
/// over the first `population` members of the population seeded
/// `population_seed`, at `sm_count` SMs. Dispatched through the registry's
/// `gen-campaign` entry (the same campaign definition as the `sweep
/// gen-campaign` subcommand, so the two cannot drift), aggregated through
/// the shared [`PointMeans`] pivot. Like every figure function here it runs
/// uncached unless `LTRF_CACHE_DIR` is set — the CLI is the cached entry
/// point.
#[must_use]
pub fn gen_campaign(
    population: usize,
    population_seed: u64,
    sm_count: usize,
) -> Vec<GenCampaignRow> {
    let spec = registry_spec_with(
        "gen-campaign",
        CampaignParams {
            population: Some(population),
            population_seed: Some(population_seed),
            sm_count: Some(sm_count),
            ..CampaignParams::default()
        },
    );
    let results = run_figure_spec(&spec);
    PointMeans::grouped(
        &results,
        &[sm_count],
        &ltrf_sweep::campaigns::GEN_CAMPAIGN_ORGS,
    )
    .into_iter()
    .map(|(_, organization, means)| GenCampaignRow {
        organization,
        points: means.count,
        mean_ipc: means.ipc,
        mean_normalized_ipc: means.normalized_ipc,
        mean_l2_hit_rate: means.l2_hit_rate,
        mean_dram_row_hit_rate: means.dram_row_hit_rate,
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Trace-driven campaigns — lowered accelsim-style traces through the engine
// ---------------------------------------------------------------------------

/// One organization's means over the lowered trace workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TraceCampaignRow {
    /// The organization under test.
    pub organization: Organization,
    /// Successful trace points aggregated into this row.
    pub points: usize,
    /// Mean IPC over the lowered trace workloads.
    pub mean_ipc: f64,
    /// Mean IPC normalized to the baseline on the same trace.
    pub mean_normalized_ipc: f64,
    /// Mean L2 hit rate.
    pub mean_l2_hit_rate: f64,
    /// Mean DRAM row-buffer hit rate.
    pub mean_dram_row_hit_rate: f64,
}

/// Runs a trace-driven campaign: baseline and LTRF on configuration #6 over
/// the kernels `ltrf-trace` lowers from the given accelsim-style trace
/// files (empty = the three checked-in example traces, resolved relative to
/// the working directory). Dispatched through the registry's
/// `trace-campaign` entry — the same campaign definition as the `sweep
/// trace-campaign` subcommand, so the two cannot drift — and aggregated
/// through the shared [`PointMeans`] pivot. Trace points carry the file's
/// content fingerprint in their cache identity, so a `LTRF_CACHE_DIR` cache
/// is shared with the CLI and invalidates itself when a trace file changes.
///
/// # Panics
///
/// Panics when a trace file is unreadable or malformed (the registry's
/// build step validates every file up front, exactly as the CLI does).
#[must_use]
pub fn trace_campaign(trace_paths: &[String], sm_count: usize) -> Vec<TraceCampaignRow> {
    let spec = registry_spec_with(
        "trace-campaign",
        CampaignParams {
            trace_paths: trace_paths.to_vec(),
            sm_count: Some(sm_count),
            ..CampaignParams::default()
        },
    );
    let results = run_figure_spec(&spec);
    PointMeans::grouped(
        &results,
        &[sm_count],
        &ltrf_sweep::campaigns::GEN_CAMPAIGN_ORGS,
    )
    .into_iter()
    .map(|(_, organization, means)| TraceCampaignRow {
        organization,
        points: means.count,
        mean_ipc: means.ipc,
        mean_normalized_ipc: means.normalized_ipc,
        mean_l2_hit_rate: means.l2_hit_rate,
        mean_dram_row_hit_rate: means.dram_row_hit_rate,
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Interconnect campaigns — SM↔L2 network topologies through the engine
// ---------------------------------------------------------------------------

/// One (topology, SM count) cell of the interconnect study (LTRF on
/// configuration #6, matching the `sweep interconnect` campaign).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct InterconnectRow {
    /// The SM↔L2 network topology under test.
    pub topology: Topology,
    /// Number of SMs simulated (single-SM points never touch the shared
    /// network, so their network columns read zero).
    pub sm_count: usize,
    /// Mean whole-GPU IPC over the selected workloads.
    pub mean_ipc: f64,
    /// Mean shared-L2 hit rate.
    pub mean_l2_hit_rate: f64,
    /// Mean cycles L2 requests spent queued behind busy slices.
    pub mean_l2_queue_wait: f64,
    /// Mean end-to-end NoC latency per routed message, in cycles.
    pub mean_noc_latency: f64,
}

/// Runs the interconnect study: LTRF on configuration #6 over each swept
/// topology at each SM count, all SMs contending for the shared L2 through
/// the configured network. Built from the same
/// [`ltrf_sweep::campaigns::interconnect_specs`] constructor as the `sweep
/// interconnect` subcommand (one spec per topology — the registry's only
/// multi-spec campaign, so this function cannot ride the single-spec
/// `registry_spec_with` path), aggregated through the shared
/// [`PointMeans`] pivot. Like every figure function here it runs uncached
/// unless `LTRF_CACHE_DIR` is set — the CLI is the cached entry point.
#[must_use]
pub fn interconnect_campaign(
    selection: SuiteSelection,
    params: &ltrf_sweep::InterconnectCampaignParams,
) -> Vec<InterconnectRow> {
    let workloads: Vec<String> = suite(selection)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    let specs = ltrf_sweep::campaigns::interconnect_specs(&workloads, params);
    let mut rows = Vec::new();
    for (topology, spec) in params.topologies.iter().zip(&specs) {
        let results = run_figure_spec(spec);
        rows.extend(
            PointMeans::grouped(&results, &params.sm_counts, &[Organization::Ltrf])
                .into_iter()
                .map(|(sm_count, _, means)| InterconnectRow {
                    topology: *topology,
                    sm_count,
                    mean_ipc: means.ipc,
                    mean_l2_hit_rate: means.l2_hit_rate,
                    mean_l2_queue_wait: means.l2_queue_wait,
                    mean_noc_latency: means.noc_latency,
                }),
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The checked-in example traces, made absolute so the test is
    /// independent of the package-relative working directory `cargo test`
    /// runs with.
    fn example_traces() -> Vec<String> {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        CampaignParams::DEFAULT_TRACES
            .iter()
            .map(|p| root.join(p).to_string_lossy().into_owned())
            .collect()
    }

    #[test]
    fn trace_campaign_aggregates_both_organizations() {
        let traces = example_traces();
        let rows = trace_campaign(&traces, 1);
        assert_eq!(rows.len(), 2, "BL and LTRF rows");
        for row in &rows {
            assert_eq!(row.points, 3, "one point per example trace: {row:?}");
            assert!(row.mean_ipc > 0.0, "{row:?}");
            assert!(row.mean_normalized_ipc > 0.0, "{row:?}");
        }
        // Lowering is deterministic and the trace bytes are fixed, so the
        // campaign reproduces bit-identically.
        assert_eq!(rows, trace_campaign(&traces, 1));
    }

    #[test]
    fn gen_campaign_aggregates_both_organizations() {
        let rows = gen_campaign(4, 7, 1);
        assert_eq!(rows.len(), 2, "BL and LTRF rows");
        for row in &rows {
            assert_eq!(row.points, 4, "{row:?}");
            assert!(row.mean_ipc > 0.0, "{row:?}");
            assert!(row.mean_normalized_ipc > 0.0, "{row:?}");
        }
        // Same campaign parameters, same rows (the engine is deterministic
        // and the population is index-stable).
        assert_eq!(rows, gen_campaign(4, 7, 1));
    }

    #[test]
    fn interconnect_campaign_reports_every_topology_cell() {
        let params = ltrf_sweep::InterconnectCampaignParams {
            topologies: vec![Topology::Ideal, Topology::Crossbar],
            sm_counts: vec![1, 2],
            ..ltrf_sweep::InterconnectCampaignParams::default()
        };
        let rows = interconnect_campaign(SuiteSelection::Quick, &params);
        assert_eq!(rows.len(), 4, "2 topologies x 2 SM counts");
        for row in &rows {
            assert!(row.mean_ipc > 0.0, "{row:?}");
            assert!((0.0..=1.0).contains(&row.mean_l2_hit_rate), "{row:?}");
            match (row.topology, row.sm_count) {
                // The ideal network is latency-free, and single-SM points
                // never route through the shared network at all.
                (Topology::Ideal, _) | (_, 1) => {
                    assert_eq!(row.mean_noc_latency, 0.0, "{row:?}");
                }
                _ => assert!(row.mean_noc_latency > 0.0, "{row:?}"),
            }
        }
    }

    #[test]
    fn gpu_scale_reports_every_cell() {
        let rows = gpu_scale(SuiteSelection::Quick, &[1, 2]);
        assert_eq!(rows.len(), 4, "2 SM counts x BL/LTRF");
        for row in &rows {
            assert!(row.mean_ipc > 0.0, "{row:?}");
            assert!(row.mean_normalized_ipc > 0.0, "{row:?}");
            assert!((0.0..=1.0).contains(&row.mean_l2_hit_rate));
            assert!((0.0..=1.0).contains(&row.mean_dram_row_hit_rate));
        }
        let two_sm_ltrf = rows
            .iter()
            .find(|r| r.sm_count == 2 && r.organization == Organization::Ltrf)
            .unwrap();
        let one_sm_ltrf = rows
            .iter()
            .find(|r| r.sm_count == 1 && r.organization == Organization::Ltrf)
            .unwrap();
        assert!(
            two_sm_ltrf.mean_ipc > one_sm_ltrf.mean_ipc,
            "two SMs execute more work per cycle than one: {} vs {}",
            two_sm_ltrf.mean_ipc,
            one_sm_ltrf.mean_ipc
        );
    }

    #[test]
    fn quick_suite_is_a_strict_subset() {
        let quick = suite(SuiteSelection::Quick);
        let full = suite(SuiteSelection::Full);
        assert_eq!(quick.len(), 4);
        assert_eq!(full.len(), 14);
        assert!(quick.iter().any(|w| w.is_register_sensitive()));
        assert!(quick.iter().any(|w| !w.is_register_sensitive()));
    }

    #[test]
    fn table1_reports_both_architectures() {
        let rows = table1();
        assert_eq!(rows.len(), 2);
        // The Maxwell row must show a larger average requirement than its
        // 256 KB baseline (the paper reports 2.3x).
        let maxwell = &rows[1].requirement;
        assert!(maxwell.average_factor() > 1.0);
        assert!(maxwell.max_factor() >= maxwell.average_factor());
    }

    #[test]
    fn table2_and_figure2_are_static_data() {
        assert_eq!(table2().len(), 7);
        assert_eq!(figure2().len(), 4);
        assert_eq!(table3().sm.max_warps, 64);
        assert_eq!(table3().sm_count, 16);
    }

    #[test]
    fn table4_real_lengths_do_not_exceed_optimal() {
        for row in table4(SuiteSelection::Quick) {
            assert!(
                row.report.real.mean > 0.0,
                "{} has empty intervals",
                row.workload
            );
            assert!(
                row.report.real.mean <= row.report.optimal.mean * 1.01,
                "{}: real {} > optimal {}",
                row.workload,
                row.report.real.mean,
                row.report.optimal.mean
            );
        }
    }

    #[test]
    fn overheads_are_in_the_paper_ballpark() {
        let report = overheads(SuiteSelection::Quick);
        assert!(report.area_overhead > 0.10 && report.area_overhead < 0.25);
        // Synthetic kernels are short, so PREFETCH metadata weighs more than
        // the paper's 7%; guard only against runaway interval counts.
        assert!(report.code_size_overhead > 0.0 && report.code_size_overhead < 0.45);
    }

    #[test]
    fn figure9_rows_cover_the_quick_suite_through_the_registry() {
        let per_config = figure9(SuiteSelection::Quick);
        assert_eq!(
            per_config.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            [6, 7],
            "one row set per sub-figure"
        );
        for (config_id, rows) in &per_config {
            assert_eq!(rows.len(), 4, "configuration #{config_id}");
            for row in rows {
                assert!(row.bl > 0.0 && row.ltrf > 0.0 && row.ideal > 0.0);
                // The ideal organization cannot lose to the degraded
                // baseline.
                assert!(
                    row.ideal >= row.bl * 0.99,
                    "#{config_id} {}: ideal {} < bl {}",
                    row.workload,
                    row.ideal,
                    row.bl
                );
            }
        }
    }

    #[test]
    fn table2_sweep_covers_every_design_point() {
        let rows = table2_sweep(SuiteSelection::Quick);
        assert_eq!(
            rows.iter().map(|r| r.config_id).collect::<Vec<_>>(),
            (1..=7).collect::<Vec<_>>()
        );
        for row in &rows {
            assert!(row.bl > 0.0 && row.ltrf > 0.0, "{row:?}");
        }
        // On the paper's headline configuration #6 LTRF beats the
        // latency-degraded baseline.
        let six = rows.iter().find(|r| r.config_id == 6).unwrap();
        assert!(six.ltrf > six.bl, "{six:?}");
    }
}
