//! Small reporting helpers shared by the per-figure binaries.

/// Arithmetic mean of a slice (0.0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean of a slice of positive values (0.0 for an empty slice).
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a table with a header row and aligned columns for terminal
/// output.
#[must_use]
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            let width = widths.get(i).copied().unwrap_or(cell.len());
            out.push_str(&format!("{cell:<width$}  "));
        }
        out.push('\n');
    };
    render(
        &header.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    render(
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    for row in rows {
        render(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let table = format_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1.00".to_string()],
                vec!["longer-name".to_string(), "2.00".to_string()],
            ],
        );
        assert!(table.contains("longer-name"));
        assert!(table.lines().count() == 4);
        let first_line_len = table.lines().next().unwrap().len();
        let last_line_len = table.lines().last().unwrap().len();
        assert!(first_line_len.abs_diff(last_line_len) <= 2);
    }
}
