//! # ltrf-bench
//!
//! The evaluation harness of the LTRF reproduction: one function per table
//! and figure of the paper, each returning structured rows that the
//! corresponding binary (in `src/bin/`) prints in the paper's format and the
//! Criterion benches exercise.
//!
//! Every experiment runs over the synthetic workload suite of
//! `ltrf-workloads` on the cycle-level simulator of `ltrf-sim`, with the
//! register-file organizations of `ltrf-core`. Absolute numbers therefore
//! differ from the paper's GPGPU-Sim/testbed results; the quantities that are
//! expected to reproduce are the *relative* ones — who wins, by roughly what
//! factor, and where the crossover latencies fall. `EXPERIMENTS.md` records
//! the comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod report;

pub use experiments::*;
pub use report::{format_table, geometric_mean, mean};
