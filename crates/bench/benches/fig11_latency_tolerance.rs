//! Criterion wrapper for the Figure 11 latency-tolerance experiment, scoped
//! to one workload and one organization so a benchmark iteration stays in the
//! seconds range.

use criterion::{criterion_group, criterion_main, Criterion};

use ltrf_core::{latency_sweep, ExperimentConfig, Organization};
use ltrf_workloads::by_name;

fn bench_fig11(c: &mut Criterion) {
    let workload = by_name("btree").expect("btree is in the suite");
    let factors = [1.0, 4.0, 7.0];
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("ltrf_latency_sweep_btree", |b| {
        b.iter(|| {
            let sweep = latency_sweep(
                &workload.kernel,
                workload.memory(),
                1,
                Organization::Ltrf,
                &factors,
                &ExperimentConfig::new(Organization::Ltrf),
            )
            .unwrap();
            std::hint::black_box(sweep.max_tolerable_latency(0.05))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
