//! Criterion wrapper for the Table 4 register-interval length measurement
//! over the quick suite (compiler + trace analysis only, no timing
//! simulation).

use criterion::{criterion_group, criterion_main, Criterion};

use ltrf_bench::{table4, SuiteSelection};

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("interval_lengths_quick_suite", |b| {
        b.iter(|| {
            let rows = table4(SuiteSelection::Quick);
            assert_eq!(rows.len(), 4);
            std::hint::black_box(rows)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
