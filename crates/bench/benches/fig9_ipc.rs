//! Criterion wrapper for the Figure 9 experiment: one workload under every
//! organization on configuration #6.

use criterion::{criterion_group, criterion_main, Criterion};

use ltrf_core::{run_experiment, ExperimentConfig, Organization};
use ltrf_workloads::by_name;

fn bench_fig9(c: &mut Criterion) {
    let workload = by_name("pathfinder").expect("pathfinder is in the suite");
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    for &org in Organization::all() {
        group.bench_function(format!("pathfinder_{}_config6", org.label()), |b| {
            b.iter(|| {
                let config = ExperimentConfig::for_table2(org, 6);
                let result =
                    run_experiment(&workload.kernel, workload.memory(), 1, &config).unwrap();
                std::hint::black_box(result.ipc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
