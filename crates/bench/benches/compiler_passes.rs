//! Criterion benchmarks for the compiler passes themselves: register-interval
//! formation (Algorithms 1 and 2), strand formation, and liveness analysis
//! over the full evaluated suite.

use criterion::{criterion_group, criterion_main, Criterion};

use ltrf_compiler::{compile, CompilerOptions};
use ltrf_workloads::evaluated_suite;

fn bench_compiler(c: &mut Criterion) {
    let suite = evaluated_suite();
    let mut group = c.benchmark_group("compiler");
    group.bench_function("register_intervals_full_suite", |b| {
        b.iter(|| {
            for w in &suite {
                let compiled = compile(&w.kernel, &CompilerOptions::default()).unwrap();
                std::hint::black_box(compiled.stats.interval_count);
            }
        });
    });
    group.bench_function("strands_full_suite", |b| {
        b.iter(|| {
            for w in &suite {
                let compiled =
                    compile(&w.kernel, &CompilerOptions::default().with_strands()).unwrap();
                std::hint::black_box(compiled.stats.interval_count);
            }
        });
    });
    group.bench_function("liveness_full_suite", |b| {
        b.iter(|| {
            for w in &suite {
                let liveness = ltrf_compiler::Liveness::analyze(&w.kernel);
                std::hint::black_box(liveness.peak_block_pressure());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
