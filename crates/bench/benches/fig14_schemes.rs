//! Criterion wrapper for the Figure 14 scheme comparison, scoped to one
//! workload and the three most interesting schemes.

use criterion::{criterion_group, criterion_main, Criterion};

use ltrf_core::{run_experiment, ExperimentConfig, Organization};
use ltrf_workloads::by_name;

fn bench_fig14(c: &mut Criterion) {
    let workload = by_name("histo").expect("histo is in the suite");
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    for org in [
        Organization::Rfc,
        Organization::LtrfStrand,
        Organization::Ltrf,
    ] {
        group.bench_function(format!("histo_{}_at_6.3x", org.label()), |b| {
            b.iter(|| {
                let config = ExperimentConfig::new(org).with_latency_factor(6.3);
                let result =
                    run_experiment(&workload.kernel, workload.memory(), 1, &config).unwrap();
                std::hint::black_box(result.ipc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
