//! Cross-entry-point cache reuse: a bench-harness run warm-hits a cache the
//! `sweep` CLI populated.
//!
//! Both entry points build their campaigns from the same canonical
//! [`ltrf_sweep::campaigns`] constructors with the same fixed campaign
//! seed, so their points have identical content-addressed cache
//! identities. This test populates a cache exactly as the CLI does (the
//! canonical spec through [`run_sweep`] with a cache directory attached)
//! and then replays the bench harness's side of the contract: the same
//! canonical spec under [`ltrf_bench::figure_executor_options`] with
//! `LTRF_CACHE_DIR` pointing at the CLI's cache. Every point must be
//! served from the cache — zero recomputation — and byte-identical.

use std::path::PathBuf;

use ltrf_sweep::campaigns::{fig10_spec, fig12_spec};
use ltrf_sweep::{run_sweep, ExecutorOptions, SeedMode, CAMPAIGN_SEED};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltrf-cache-reuse-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn bench_harness_warm_hits_a_cli_populated_cache() {
    // One register-sensitive workload keeps the campaigns small; what is
    // under test is identity, not coverage.
    let workloads = ["hotspot"];
    let seed_mode = SeedMode::Fixed(CAMPAIGN_SEED);
    let cache_dir = temp_dir("cli");

    // The CLI side: `sweep fig12 --cache <dir>` is exactly this call.
    let spec = fig12_spec(workloads, 1, seed_mode);
    let cli_options = ExecutorOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ExecutorOptions::default()
    };
    let cold = run_sweep(&spec, &cli_options);
    assert_eq!(cold.failure_count(), 0);
    assert_eq!(cold.cached_count(), 0, "fresh cache: everything computes");

    // The bench side: the fig12 harness function builds the same canonical
    // spec and runs it under figure_executor_options(), which attaches the
    // cache named by LTRF_CACHE_DIR.
    std::env::set_var("LTRF_CACHE_DIR", &cache_dir);
    let bench_options = ltrf_bench::figure_executor_options();
    assert_eq!(
        bench_options.cache_dir.as_deref(),
        Some(cache_dir.as_path()),
        "LTRF_CACHE_DIR attaches the CLI's cache to the harness"
    );
    let warm = run_sweep(&fig12_spec(workloads, 1, seed_mode), &bench_options);
    std::env::remove_var("LTRF_CACHE_DIR");

    assert_eq!(warm.failure_count(), 0);
    assert_eq!(warm.computed_count(), 0, "bench run recomputes nothing");
    assert!((warm.cache_hit_rate() - 1.0).abs() < 1e-12);
    for (cold_record, warm_record) in cold.records.iter().zip(&warm.records) {
        assert_eq!(cold_record.outcome, warm_record.outcome, "bit-identical");
        assert!(warm_record.from_cache);
    }

    // Cross-campaign reuse: fig10 is the configuration-#7 slice of the
    // power sweep, so a fig10 run over a power-populated cache also hits
    // fully (the atlas documents this overlap).
    let power = ltrf_sweep::campaigns::power_sweep_spec(
        workloads,
        1,
        seed_mode,
        ltrf_tech::PowerParams::default(),
    );
    let power_results = run_sweep(&power, &cli_options);
    assert_eq!(power_results.failure_count(), 0);
    let fig10 = run_sweep(&fig10_spec(workloads, 1, seed_mode), &cli_options);
    assert_eq!(
        fig10.computed_count(),
        0,
        "fig10 is served entirely from the power sweep's entries"
    );

    let _ = std::fs::remove_dir_all(&cache_dir);
}
