//! Golden-file regression test for the `sweep fig12` CSV output.
//!
//! The campaign spec comes from the same canonical constructor the CLI and
//! the `ltrf-bench` harness use ([`ltrf_sweep::campaigns::fig12_spec`]),
//! over the CLI's `--quick` workload subset with the fixed campaign seed —
//! so the committed fixture pins the exact rows `sweep fig12 --quick`
//! emits. Figure 12 exercises axes the fig9 golden file does not (the
//! latency-factor and registers-per-interval cross-product, un-normalized
//! relative-IPC reporting), so together the two fixtures cover both spec
//! shapes the artifact atlas is built from.
//!
//! When an *intentional* behaviour change shifts the numbers, regenerate the
//! fixture and review the diff like any other code change:
//!
//! ```text
//! LTRF_BLESS=1 cargo test -p ltrf-sweep --test golden_fig12
//! ```

use std::path::PathBuf;

use ltrf_sweep::campaigns::fig12_spec;
use ltrf_sweep::{report, run_sweep, ExecutorOptions, SeedMode, CAMPAIGN_SEED};
use ltrf_workloads::QUICK_SUBSET;

/// Path of the committed fixture (source-relative, so the test can bless it).
fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig12-quick.csv")
}

/// Normalizes CSV text for comparison: line endings and trailing whitespace
/// only. Numbers are compared verbatim — the engine is deterministic and the
/// reporter formats floats at fixed precision, so exact equality is the
/// contract.
fn normalize(text: &str) -> Vec<String> {
    text.replace("\r\n", "\n")
        .lines()
        .map(|line| line.trim_end().to_string())
        .filter(|line| !line.is_empty())
        .collect()
}

#[test]
fn fig12_quick_csv_matches_the_committed_golden_file() {
    let spec = fig12_spec(QUICK_SUBSET, 1, SeedMode::Fixed(CAMPAIGN_SEED));
    // Uncached: provenance columns must read `false` in the fixture no
    // matter what caches exist on the developer's machine.
    let results = run_sweep(&spec, &ExecutorOptions::default());
    assert_eq!(results.failure_count(), 0, "fig12 quick points all succeed");
    let csv = report::to_csv(&results);

    let path = fixture_path();
    if std::env::var_os("LTRF_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture has a parent")).unwrap();
        std::fs::write(&path, &csv).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read the golden fixture {} ({e}); generate it with \
             LTRF_BLESS=1 cargo test -p ltrf-sweep --test golden_fig12",
            path.display()
        )
    });
    let expected = normalize(&golden);
    let actual = normalize(&csv);

    // Compare line by line for actionable failures before the final
    // whole-file assertion.
    for (i, (want, got)) in expected.iter().zip(actual.iter()).enumerate() {
        assert_eq!(
            want,
            got,
            "fig12 CSV line {} drifted from the golden file (an intentional \
             change must re-bless the fixture with LTRF_BLESS=1)",
            i + 1
        );
    }
    assert_eq!(
        expected.len(),
        actual.len(),
        "fig12 CSV row count drifted from the golden file"
    );
}
