//! Integration tests for the sweep engine: determinism, cache round-trips,
//! and failure isolation.

use std::path::PathBuf;

use ltrf_core::Organization;
use ltrf_sweep::{run_sweep, ExecutorOptions, PointOutcome, SeedMode, SweepPoint, SweepSpec};

/// A small campaign that still crosses two axes.
fn small_spec(name: &str) -> SweepSpec {
    SweepSpec::builder(name)
        .workloads(["hotspot", "btree"])
        .organizations([Organization::Baseline, Organization::Ltrf])
        .config_ids([6])
        .seed_mode(SeedMode::PerPoint(2018))
        .build()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltrf-sweep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn same_spec_and_seed_is_bit_identical() {
    let spec = small_spec("determinism");
    let options = ExecutorOptions::default();
    let first = run_sweep(&spec, &options);
    let second = run_sweep(&spec, &options);
    assert_eq!(first.failure_count(), 0);
    // Bit-identical: the canonical JSON encodings match byte for byte
    // (floats use shortest round-trip formatting, so this is exact).
    assert_eq!(
        serde::to_json_string(&first),
        serde::to_json_string(&second)
    );
    // A different base seed must actually change something.
    let mut reseeded_spec = spec.clone();
    reseeded_spec.seed_mode = SeedMode::PerPoint(9999);
    let reseeded = run_sweep(&reseeded_spec, &options);
    assert_ne!(
        serde::to_json_string(&first),
        serde::to_json_string(&reseeded)
    );
}

#[test]
fn warm_rerun_is_served_entirely_from_cache_with_identical_stats() {
    let spec = small_spec("cache-round-trip");
    let cache_dir = temp_dir("cache");
    let options = ExecutorOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ExecutorOptions::default()
    };
    let cold = run_sweep(&spec, &options);
    assert_eq!(cold.cached_count(), 0);
    assert_eq!(cold.computed_count(), spec.points.len());
    assert_eq!(cold.failure_count(), 0);

    let warm = run_sweep(&spec, &options);
    assert_eq!(
        warm.computed_count(),
        0,
        "warm rerun must recompute zero points"
    );
    assert_eq!(warm.cached_count(), spec.points.len());
    assert!((warm.cache_hit_rate() - 1.0).abs() < 1e-12);
    // The cached outcomes round-trip exactly: every record matches the cold
    // run except for its provenance flag.
    for (cold_record, warm_record) in cold.records.iter().zip(&warm.records) {
        assert_eq!(cold_record.point, warm_record.point);
        assert_eq!(cold_record.digest_hex, warm_record.digest_hex);
        assert_eq!(cold_record.seed, warm_record.seed);
        assert_eq!(cold_record.outcome, warm_record.outcome);
        assert!(!cold_record.from_cache);
        assert!(warm_record.from_cache);
    }

    // `force_recompute` bypasses the cache but produces the same data.
    let forced = run_sweep(
        &spec,
        &ExecutorOptions {
            cache_dir: Some(cache_dir.clone()),
            force_recompute: true,
            ..ExecutorOptions::default()
        },
    );
    assert_eq!(forced.cached_count(), 0);
    for (cold_record, forced_record) in cold.records.iter().zip(&forced.records) {
        assert_eq!(cold_record.outcome, forced_record.outcome);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn editing_the_spec_only_recomputes_changed_points() {
    let cache_dir = temp_dir("incremental");
    let options = ExecutorOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ExecutorOptions::default()
    };
    let base = small_spec("incremental");
    let cold = run_sweep(&base, &options);
    assert_eq!(cold.failure_count(), 0);

    // Grow the campaign by one organization: only the new points compute.
    let grown = SweepSpec::builder("incremental")
        .workloads(["hotspot", "btree"])
        .organizations([
            Organization::Baseline,
            Organization::Ltrf,
            Organization::Rfc,
        ])
        .config_ids([6])
        .seed_mode(SeedMode::PerPoint(2018))
        .build();
    let warm = run_sweep(&grown, &options);
    assert_eq!(warm.cached_count(), base.points.len());
    assert_eq!(
        warm.computed_count(),
        grown.points.len() - base.points.len()
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn gpu_scale_campaign_is_deterministic_and_caches_cleanly() {
    // A miniature `sweep gpu-scale`: the SM-count axis over one workload,
    // normalized, with the result cache attached.
    let spec = SweepSpec::builder("gpu-scale-it")
        .workloads(["hotspot"])
        .organizations([Organization::Ltrf])
        .config_ids([6])
        .sm_counts([1, 2])
        .seed_mode(SeedMode::Fixed(2018))
        .build();
    let cache_dir = temp_dir("gpu-scale");
    let options = ExecutorOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ExecutorOptions::default()
    };
    let cold = run_sweep(&spec, &options);
    assert_eq!(cold.failure_count(), 0);
    assert_eq!(cold.computed_count(), 2);
    // The two SM counts are distinct cache entries with distinct results.
    assert_ne!(cold.records[0].digest_hex, cold.records[1].digest_hex);
    let one_sm = cold.records[0].outcome.data().unwrap();
    let two_sm = cold.records[1].outcome.data().unwrap();
    assert!(
        one_sm.result.gpu.is_none(),
        "sm_count=1 is the classic path"
    );
    assert_eq!(two_sm.result.gpu.as_ref().unwrap().sm_count, 2);
    assert!(two_sm.result.ipc > one_sm.result.ipc);

    // Warm rerun: 100% cache hits, bit-identical outcomes.
    let warm = run_sweep(&spec, &options);
    assert_eq!(warm.computed_count(), 0);
    assert!((warm.cache_hit_rate() - 1.0).abs() < 1e-12);
    for (cold_record, warm_record) in cold.records.iter().zip(&warm.records) {
        assert_eq!(cold_record.outcome, warm_record.outcome);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn a_failing_point_does_not_poison_its_shard() {
    let mut spec = small_spec("isolation");
    // Splice in a point that cannot run (unknown workload) between valid
    // points, and run single-threaded so everything shares one shard.
    let poison = SweepPoint {
        workload: "no-such-workload".to_string(),
        ..spec.points[0].clone()
    };
    spec.points.insert(1, poison);
    let results = run_sweep(
        &spec,
        &ExecutorOptions {
            threads: Some(1),
            ..ExecutorOptions::default()
        },
    );
    assert_eq!(results.len(), 5);
    assert_eq!(results.failure_count(), 1);
    match &results.records[1].outcome {
        PointOutcome::Error(message) => {
            assert!(message.contains("no-such-workload"), "got: {message}");
        }
        other => panic!("expected an error record, got {other:?}"),
    }
    // Every other point on the same shard still succeeded.
    for (i, record) in results.records.iter().enumerate() {
        if i != 1 {
            assert!(
                matches!(record.outcome, PointOutcome::Ok(_)),
                "point {i} was poisoned: {:?}",
                record.outcome
            );
        }
    }
}

#[test]
fn failures_are_not_cached() {
    let cache_dir = temp_dir("no-fail-cache");
    let options = ExecutorOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ExecutorOptions::default()
    };
    let mut spec = small_spec("no-fail-cache");
    spec.points[0].workload = "still-not-a-workload".to_string();
    let cold = run_sweep(&spec, &options);
    assert_eq!(cold.failure_count(), 1);
    let warm = run_sweep(&spec, &options);
    // The failed point is recomputed (and fails again); the rest hit.
    assert_eq!(warm.computed_count(), 1);
    assert_eq!(warm.cached_count(), spec.points.len() - 1);
    assert!(!warm.records[0].from_cache);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
