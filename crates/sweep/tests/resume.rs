//! Kill/resume integration tests for checkpointed campaigns.
//!
//! The central claim of `--resume` is that a rerun of a killed campaign
//! recomputes only the unfinished points and still produces reports
//! *byte-identical* to an uninterrupted run — including per-point cache
//! provenance, which restored points carry from the journal rather than
//! from the resumed run's own cache lookups. These tests pin that claim,
//! plus the journal's crash tolerance: a journal truncated or garbled at
//! any byte boundary loads without panicking and only ever forgets points
//! (costing recomputes), never invents them.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ltrf_sweep::campaigns::{gen_campaign_spec, GenCampaignParams};
use ltrf_sweep::{
    point_key, report, CampaignEvent, CampaignJournal, CampaignSession, EventLog, ExecutorOptions,
    JournalSnapshot, SeedMode, StreamingCsvWriter,
};
use ltrf_workloads::GeneratorConfig;
use proptest::prelude::*;
use serde::Serialize;

/// Small, fast generator bounds for the integration campaigns.
fn test_bounds() -> GeneratorConfig {
    GeneratorConfig {
        min_regs: 12,
        max_regs: 64,
        max_outer_trips: 3,
        max_inner_trips: 6,
        max_body_alu: 6,
        max_body_loads: 2,
    }
}

fn test_params(population: usize) -> GenCampaignParams {
    GenCampaignParams {
        population,
        population_seed: 41,
        config: test_bounds(),
        sm_count: 1,
        seed_mode: SeedMode::Fixed(2018),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltrf-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn restored_events(events: &[CampaignEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::PointRestored { .. }))
        .count()
}

/// A killed campaign leaves a journal covering the points that completed
/// and a cache holding their outcomes. Resuming must restore exactly those
/// points, recompute the rest, and produce results bit-identical to an
/// uninterrupted run.
///
/// The "kill" is simulated precisely rather than with a real signal:
/// population identity is index-stable and the cache key excludes the
/// campaign name, so running the *2-member* campaign cold into a shared
/// cache computes a digest-identical subset of the *4-member* campaign's
/// points. Hand-writing those digests into a journal under the 4-member
/// campaign's name reproduces the exact on-disk state a kill between two
/// points leaves behind.
#[test]
fn resumed_campaign_restores_completed_points_and_matches_an_uninterrupted_run() {
    let dir = temp_dir("kill-resume");
    let shared_cache = dir.join("cache");
    let spec_full = gen_campaign_spec(&test_params(4));
    let spec_subset = gen_campaign_spec(&test_params(2));
    assert!(spec_subset.points.len() < spec_full.points.len());

    // The uninterrupted reference run, against its own private cache.
    let reference = ltrf_sweep::run_sweep(
        &spec_full,
        &ExecutorOptions {
            cache_dir: Some(dir.join("cache-reference")),
            ..ExecutorOptions::default()
        },
    );
    assert_eq!(reference.failure_count(), 0);

    // "First run, killed partway": the subset campaign populates the shared
    // cache with the completed points' outcomes...
    let partial = ltrf_sweep::run_sweep(
        &spec_subset,
        &ExecutorOptions {
            cache_dir: Some(shared_cache.clone()),
            ..ExecutorOptions::default()
        },
    );
    assert_eq!(partial.computed_count(), spec_subset.points.len());

    // ...and the journal records them, under the full campaign's name, with
    // the provenance they originally completed with (computed, not cached).
    let journal_path = dir.join(format!("{}.journal", spec_full.name));
    let journal = CampaignJournal::create(&journal_path, &spec_full.name).unwrap();
    let mut journaled = Vec::new();
    for point in &spec_subset.points {
        let key = point_key(&spec_subset, point);
        journal.record(&key.digest_hex, key.seed, false).unwrap();
        journaled.push(key.digest_hex);
    }
    drop(journal);

    // The resumed run restores every journaled point and computes the rest.
    let log = EventLog::new();
    let options = ExecutorOptions {
        cache_dir: Some(shared_cache),
        journal_path: Some(journal_path.clone()),
        resume: true,
        ..ExecutorOptions::default()
    };
    let session = CampaignSession::new(&spec_full, &options);
    let csv_path = dir.join("resumed.csv");
    let csv = StreamingCsvWriter::create(&csv_path).unwrap();
    let (resumed, totals) = session.run_with_sink(&log, &csv);
    csv.finish().unwrap();
    let events = log.take();

    assert_eq!(totals.points, spec_full.points.len());
    assert_eq!(totals.restored, spec_subset.points.len());
    assert_eq!(
        totals.computed,
        spec_full.points.len() - spec_subset.points.len(),
        "only the unfinished points recompute"
    );
    assert_eq!(totals.failed, 0);
    assert_eq!(restored_events(&events), spec_subset.points.len());

    // Bit-identical to the uninterrupted run: records, JSON, and the
    // streamed CSV. Restored points carry the journal's original
    // `from_cache: false`, exactly what the reference's cold pass reports.
    assert_eq!(resumed.records, reference.records);
    assert_eq!(
        serde::to_json_string(&resumed),
        serde::to_json_string(&reference)
    );
    let streamed = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(streamed, report::to_csv(&reference));

    // Every journaled digest is present in the resumed result set, and the
    // whole run reports cold provenance — journaled or not.
    for digest in &journaled {
        assert!(resumed.records.iter().any(|r| &r.digest_hex == digest));
    }
    assert!(resumed.records.iter().all(|r| !r.from_cache));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restored points must carry the provenance the journal recorded — not
/// the provenance a live lookup would produce. A journal written by a warm
/// (100%-hit) run restores with `from_cache: true`, even though the resumed
/// session never classified those points itself.
#[test]
fn resume_preserves_original_cache_provenance() {
    let dir = temp_dir("provenance");
    let cache_dir = dir.join("cache");
    let spec = gen_campaign_spec(&test_params(2));
    let journal_path = dir.join(format!("{}.journal", spec.name));

    // Cold run to populate the cache (no journal yet).
    let cold = ltrf_sweep::run_sweep(
        &spec,
        &ExecutorOptions {
            cache_dir: Some(cache_dir.clone()),
            ..ExecutorOptions::default()
        },
    );
    assert_eq!(cold.cached_count(), 0);

    // Warm run with a journal: every point completes as a cache hit and is
    // journaled that way. The journal is left behind, as after a kill
    // between the last point and the campaign's cleanup.
    let warm = ltrf_sweep::run_sweep(
        &spec,
        &ExecutorOptions {
            cache_dir: Some(cache_dir.clone()),
            journal_path: Some(journal_path.clone()),
            ..ExecutorOptions::default()
        },
    );
    assert_eq!(warm.cached_count(), spec.points.len());
    let snapshot = JournalSnapshot::load(&journal_path, &spec.name).expect("journal written");
    assert_eq!(snapshot.len(), spec.points.len());

    // Resume: every point restores, and the records match the *warm* run —
    // `from_cache: true` from the journal, not re-derived.
    let log = EventLog::new();
    let resumed = CampaignSession::new(
        &spec,
        &ExecutorOptions {
            cache_dir: Some(cache_dir),
            journal_path: Some(journal_path),
            resume: true,
            ..ExecutorOptions::default()
        },
    )
    .run(&log);
    let events = log.take();
    assert_eq!(restored_events(&events), spec.points.len());
    assert_eq!(resumed.records, warm.records);
    assert!(resumed.records.iter().all(|r| r.from_cache));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journaled point whose outcome is *not* in the cache (wiped cache, or
/// the kill landed between the journal append and the cache store) must
/// fall through to a recompute — restores never invent results.
#[test]
fn journaled_points_missing_from_the_cache_recompute() {
    let dir = temp_dir("missing-cache");
    let spec = gen_campaign_spec(&test_params(2));
    let journal_path = dir.join(format!("{}.journal", spec.name));

    let journal = CampaignJournal::create(&journal_path, &spec.name).unwrap();
    for point in &spec.points {
        let key = point_key(&spec, point);
        journal.record(&key.digest_hex, key.seed, false).unwrap();
    }
    drop(journal);

    // The cache directory is empty: nothing can restore.
    let log = EventLog::new();
    let resumed = CampaignSession::new(
        &spec,
        &ExecutorOptions {
            cache_dir: Some(dir.join("cache")),
            journal_path: Some(journal_path),
            resume: true,
            ..ExecutorOptions::default()
        },
    )
    .run(&log);
    let events = log.take();
    assert_eq!(restored_events(&events), 0);
    assert_eq!(resumed.computed_count(), spec.points.len());
    assert_eq!(resumed.failure_count(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Journal crash tolerance (property tests)
// ---------------------------------------------------------------------------

static CASE: AtomicUsize = AtomicUsize::new(0);

fn unique_journal_path() -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ltrf-resume-prop-{}-{case}.journal",
        std::process::id()
    ))
}

/// A journal entry derived from proptest-supplied scalars (the vendored
/// proptest has no string strategies): the digest is the first scalar's hex
/// form, which is exactly the shape real digests take.
fn entry_strategy() -> impl Strategy<Value = (String, u64, bool)> {
    (any::<u64>(), any::<u64>(), any::<bool>())
        .prop_map(|(digest, seed, from_cache)| (format!("{digest:016x}"), seed, from_cache))
}

proptest! {
    /// Truncating a journal at *any* byte boundary — the exact state a kill
    /// mid-append leaves — must load without panicking, and every entry it
    /// recovers must be one that was actually written, with its recorded
    /// seed and provenance. Entries wholly before the cut survive.
    #[test]
    fn truncated_journals_load_safely(
        entries in proptest::collection::vec(entry_strategy(), 0..8),
        cut_permille in 0u32..=1000,
    ) {
        let path = unique_journal_path();
        let journal = CampaignJournal::create(&path, "prop-camp").unwrap();
        for (digest, seed, from_cache) in &entries {
            journal.record(digest, *seed, *from_cache).unwrap();
        }
        drop(journal);

        let bytes = std::fs::read(&path).unwrap();
        let cut = (bytes.len() * cut_permille as usize) / 1000;
        std::fs::write(&path, &bytes[..cut.min(bytes.len())]).unwrap();

        // Never a panic; a cut inside the header invalidates wholesale.
        let snapshot = JournalSnapshot::load(&path, "prop-camp");
        let header_len = {
            let newline = bytes.iter().position(|&b| b == b'\n').unwrap();
            newline + 1
        };
        if cut >= header_len {
            let snapshot = snapshot.expect("intact header loads");
            // Everything recovered was genuinely written: the recovered
            // value matches *some* written entry with that digest (the last
            // one before the cut, when digests repeat).
            for (digest, _, _) in &entries {
                if let Some(found) = snapshot.get(digest) {
                    prop_assert!(
                        entries.iter().any(|(d, s, f)| {
                            d == digest && *s == found.seed && *f == found.from_cache
                        }),
                        "recovered entries are never invented"
                    );
                }
            }
            // Entries wholly before the cut survive. Later duplicates of the
            // same digest may overwrite seed/provenance, so count presence.
            let mut offset = header_len;
            for (digest, seed, from_cache) in &entries {
                let line = serde::to_json_string(&LineShape {
                    digest: digest.clone(),
                    seed: *seed,
                    from_cache: *from_cache,
                });
                offset += line.len() + 1;
                if offset <= cut {
                    prop_assert!(
                        snapshot.get(digest).is_some(),
                        "entry before the cut must survive"
                    );
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Appending arbitrary garbage bytes (a torn line, stray output, a
    /// partial next entry) never panics the loader and never corrupts the
    /// entries written before the garbage.
    #[test]
    fn garbled_tails_never_panic_or_corrupt(
        entries in proptest::collection::vec(entry_strategy(), 0..6),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let path = unique_journal_path();
        let journal = CampaignJournal::create(&path, "prop-camp").unwrap();
        for (digest, seed, from_cache) in &entries {
            journal.record(digest, *seed, *from_cache).unwrap();
        }
        drop(journal);

        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&garbage);
        std::fs::write(&path, &bytes).unwrap();

        match JournalSnapshot::load(&path, "prop-camp") {
            // Non-UTF-8 garbage invalidates the whole file — a safe (if
            // lossy) degradation to a full recompute, never a panic.
            None => prop_assert!(
                std::str::from_utf8(&garbage).is_err(),
                "only non-UTF-8 garbage may invalidate the journal"
            ),
            Some(snapshot) => {
                // The garbage occupies its own line(s) after the final
                // newline, so every original entry line is intact and must
                // be recovered with its exact seed and provenance.
                let mut last: std::collections::HashMap<&str, (u64, bool)> =
                    std::collections::HashMap::new();
                for (digest, seed, from_cache) in &entries {
                    last.insert(digest.as_str(), (*seed, *from_cache));
                }
                for (digest, (seed, from_cache)) in &last {
                    let found = snapshot.get(digest).expect("original entries survive");
                    prop_assert_eq!(found.seed, *seed);
                    prop_assert_eq!(found.from_cache, *from_cache);
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Mirror of the journal's line shape, for computing serialized lengths in
/// the truncation property (the journal's own type is private).
#[derive(Serialize)]
struct LineShape {
    digest: String,
    seed: u64,
    from_cache: bool,
}
