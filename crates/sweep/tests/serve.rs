//! Concurrency test layer for the `sweep serve` campaign service.
//!
//! Three service-level guarantees are pinned here, end to end over real
//! sockets against a real [`CampaignServer`]:
//!
//! * **Single-flight dedup**: two concurrent sessions submitting the same
//!   spec show `point_coalesced` events, and their combined computed count
//!   equals the distinct point count exactly — strictly less than the sum
//!   of their point counts (each shared point is evaluated once
//!   service-wide).
//! * **Disconnect tolerance**: a client that drops mid-stream and
//!   re-attaches with its last acked `seq` reads a byte-identical
//!   continuation; the full replayed log equals an uninterrupted client's.
//! * **Protocol robustness**: garbled, truncated, and oversized request
//!   lines are answered with typed error responses on a connection that
//!   keeps serving — and `parse_request` is proptest-fuzzed to never
//!   panic (the daemon-side companion of the PR 8 journal-truncation
//!   proptests).
//!
//! Plus the CLI-equivalence pin: a campaign run through the service yields
//! reports byte-identical to the same campaign run via the `sweep` binary.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::Command;

use ltrf_sweep::serve::{
    client_request, client_stream, parse_request, CampaignServer, ServeConfig, ServerHandle,
    MAX_REQUEST_BYTES,
};
use proptest::prelude::*;
use serde::Value;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// A fresh scratch directory per test (removed on a best-effort basis).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltrf-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns a server on an ephemeral port with scratch out/cache dirs.
fn spawn_server(tag: &str, pool: usize, session_threads: usize) -> (ServerHandle, String, PathBuf) {
    let root = temp_dir(tag);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        out_dir: root.join("out"),
        cache_dir: Some(root.join("cache")),
        pool,
        session_threads,
        replay_capacity: 1 << 16,
    };
    let handle = CampaignServer::spawn(config).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr, root)
}

fn object(pairs: &[(&str, Value)]) -> Value {
    Value::Object(
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    )
}

/// The small, fast generated campaign every test here drives: population 8
/// over 2 organizations = 16 points, a couple of milliseconds each.
fn gen_params() -> Value {
    object(&[
        ("population", Value::UInt(8)),
        ("seed", Value::UInt(7)),
        ("min-regs", Value::UInt(12)),
        ("max-regs", Value::UInt(64)),
        ("max-outer-trips", Value::UInt(3)),
        ("max-inner-trips", Value::UInt(6)),
        ("max-body-alu", Value::UInt(6)),
        ("max-body-loads", Value::UInt(2)),
    ])
}

/// The same campaign as CLI flags, for the equivalence test.
const GEN_FLAGS: &[&str] = &[
    "--population",
    "8",
    "--seed",
    "7",
    "--min-regs",
    "12",
    "--max-regs",
    "64",
    "--max-outer-trips",
    "3",
    "--max-inner-trips",
    "6",
    "--max-body-alu",
    "6",
    "--max-body-loads",
    "2",
];

/// Submits the standard generated campaign; returns (session_id, points).
fn submit_gen(addr: &str) -> (String, usize) {
    let reply = client_request(
        addr,
        &object(&[
            ("cmd", Value::Str("submit".to_string())),
            ("campaign", Value::Str("gen-campaign".to_string())),
            ("params", gen_params()),
        ]),
    )
    .unwrap();
    assert_eq!(
        reply.get("ok"),
        Some(&Value::Bool(true)),
        "{}",
        reply.to_json()
    );
    let session_id = reply
        .get("session_id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let points = reply.get("points").and_then(Value::as_u64).unwrap() as usize;
    (session_id, points)
}

/// Attaches from seq 0 and drains the session's full event log.
fn attach_all(addr: &str, session_id: &str) -> Vec<String> {
    let mut lines = Vec::new();
    let detached = client_stream(
        addr,
        &object(&[
            ("cmd", Value::Str("attach".to_string())),
            ("session_id", Value::Str(session_id.to_string())),
        ]),
        |line| lines.push(line.to_string()),
    )
    .unwrap();
    assert_eq!(
        detached.get("reply").and_then(Value::as_str),
        Some("detached")
    );
    // The ack line leads; events follow.
    assert!(
        lines[0].contains("\"reply\":\"attached\""),
        "first line is the attach ack: {}",
        lines[0]
    );
    lines.remove(0);
    lines
}

fn shutdown(addr: &str, handle: ServerHandle) {
    let reply = client_request(
        addr,
        &object(&[("cmd", Value::Str("shutdown".to_string()))]),
    )
    .unwrap();
    assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
    handle.join().unwrap();
}

/// Event-kind counts plus the campaign_finished totals of one event log.
#[derive(Debug, Default)]
struct LogCounts {
    point_started: usize,
    finished: usize,
    coalesced: usize,
    failed: usize,
    restored: usize,
    totals: Option<(u64, u64, u64, u64, u64)>, // computed, cached, restored, coalesced, failed
}

fn count_log(lines: &[String]) -> LogCounts {
    let mut counts = LogCounts::default();
    for line in lines {
        let value = Value::parse_json(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        match value.get("event").and_then(Value::as_str) {
            Some("point_started") => counts.point_started += 1,
            Some("point_finished") => counts.finished += 1,
            Some("point_coalesced") => counts.coalesced += 1,
            Some("point_failed") => counts.failed += 1,
            Some("point_restored") => counts.restored += 1,
            Some("campaign_finished") => {
                let field = |name: &str| value.get(name).and_then(Value::as_u64).unwrap();
                counts.totals = Some((
                    field("computed"),
                    field("cached"),
                    field("restored"),
                    field("coalesced"),
                    field("failed"),
                ));
            }
            _ => {}
        }
    }
    counts
}

// ---------------------------------------------------------------------------
// Satellite 1: concurrency guarantees
// ---------------------------------------------------------------------------

#[test]
fn overlapping_sessions_coalesce_and_compute_each_shared_point_exactly_once() {
    // pool=1 creates the convoy that makes coalescing deterministic: while
    // session A's leader holds the single worker permit, session B chases
    // the same spec order, restores A's published points from the shared
    // cache in microseconds, catches up to A's in-flight digest, and
    // coalesces on it.
    let (handle, addr, root) = spawn_server("overlap", 1, 1);
    let (id_a, points_a) = submit_gen(&addr);
    let (id_b, points_b) = submit_gen(&addr);
    assert_eq!(points_a, points_b, "identical specs");
    assert_ne!(id_a, id_b);

    let log_a = attach_all(&addr, &id_a);
    let log_b = attach_all(&addr, &id_b);
    let a = count_log(&log_a);
    let b = count_log(&log_b);
    let (computed_a, cached_a, _, coalesced_a, failed_a) = a.totals.expect("A finished");
    let (computed_b, cached_b, _, coalesced_b, failed_b) = b.totals.expect("B finished");
    assert_eq!(failed_a + failed_b, 0, "no point may fail");

    // Every session saw one start and one terminal event per point.
    for (tag, counts, points) in [("A", &a, points_a), ("B", &b, points_b)] {
        assert_eq!(counts.point_started, points, "session {tag} starts");
        assert_eq!(
            counts.finished + counts.coalesced + counts.failed + counts.restored,
            points,
            "session {tag}: one terminal event per point"
        );
    }

    // THE dedup guarantee, strict: both sessions enumerate the same
    // distinct points, and across the whole service each was computed
    // exactly once — by either session, never both.
    assert_eq!(
        computed_a + computed_b,
        points_a as u64,
        "each shared point is computed exactly once service-wide \
         (A: {computed_a} computed/{cached_a} cached/{coalesced_a} coalesced, \
          B: {computed_b} computed/{cached_b} cached/{coalesced_b} coalesced)"
    );
    assert!(
        computed_a + computed_b < (points_a + points_b) as u64,
        "combined computed count is strictly below the sum of point counts"
    );

    // Coalescing visibly happened, and the event counts agree with the
    // summary totals.
    assert!(
        coalesced_a + coalesced_b >= 1,
        "overlapping in-flight points must coalesce \
         (A: {coalesced_a}, B: {coalesced_b})"
    );
    assert_eq!(a.coalesced as u64, coalesced_a, "A's event/total agreement");
    assert_eq!(b.coalesced as u64, coalesced_b, "B's event/total agreement");

    // The service accounted for every point: computed + cached + coalesced
    // partitions each session's point set.
    assert_eq!(computed_a + cached_a + coalesced_a, points_a as u64);
    assert_eq!(computed_b + cached_b + coalesced_b, points_b as u64);

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn disconnected_client_reattaches_to_a_byte_identical_log() {
    let (handle, addr, root) = spawn_server("reattach", 2, 2);
    let (session_id, points) = submit_gen(&addr);

    // A fragile client: attach, read the ack plus a handful of event
    // lines, then vanish mid-stream.
    let mut prefix: Vec<String> = Vec::new();
    let mut last_seq: u64 = 0;
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        let request = object(&[
            ("cmd", Value::Str("attach".to_string())),
            ("session_id", Value::Str(session_id.clone())),
        ]);
        stream
            .write_all(format!("{}\n", request.to_json()).as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut ack = String::new();
        reader.read_line(&mut ack).unwrap();
        assert!(ack.contains("\"reply\":\"attached\""), "{ack}");
        for _ in 0..5 {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "stream ended early"
            );
            let value = Value::parse_json(line.trim()).unwrap();
            last_seq = value.get("seq").and_then(Value::as_u64).unwrap();
            prefix.push(line.trim().to_string());
        }
        // Dropping the socket here is the disconnect. The session must not
        // notice.
    }

    // Resume from the last acked seq: the server replays everything after
    // it (and follows live to completion).
    let mut rest: Vec<String> = Vec::new();
    let detached = client_stream(
        &addr,
        &object(&[
            ("cmd", Value::Str("attach".to_string())),
            ("session_id", Value::Str(session_id.clone())),
            ("after", Value::UInt(last_seq)),
        ]),
        |line| rest.push(line.to_string()),
    )
    .unwrap();
    assert_eq!(
        detached.get("reply").and_then(Value::as_str),
        Some("detached")
    );
    assert!(rest[0].contains("\"reply\":\"attached\""));
    rest.remove(0);

    // An uninterrupted client: one attach, the whole log.
    let full = attach_all(&addr, &session_id);

    // Byte-identical: interrupted prefix + resumed tail == uninterrupted.
    let mut stitched = prefix;
    stitched.extend(rest);
    assert_eq!(
        stitched, full,
        "the re-attached client's log must be byte-identical to an \
         uninterrupted client's"
    );
    assert_eq!(
        count_log(&full).point_started,
        points,
        "the full log covers the whole campaign"
    );
    // Sequence numbers are gapless from 0.
    for (i, line) in full.iter().enumerate() {
        let seq = Value::parse_json(line)
            .unwrap()
            .get("seq")
            .and_then(Value::as_u64);
        assert_eq!(seq, Some(i as u64), "gapless seq at line {i}");
    }

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn service_reports_are_byte_identical_to_the_cli() {
    // The same campaign, twice from cold: once through the service (fresh
    // cache), once through the `sweep` binary with no cache. Both paths
    // ride StreamingCsvWriter + report::write_json, and neither sees a
    // cache hit, so the reports must match byte for byte.
    let (handle, addr, root) = spawn_server("cli-equiv", 2, 2);
    let (session_id, _) = submit_gen(&addr);
    let log = attach_all(&addr, &session_id);
    assert!(count_log(&log).totals.is_some(), "session completed");

    let cli_out = root.join("cli-out");
    let status = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .arg("gen-campaign")
        .args(GEN_FLAGS)
        .arg("--no-cache")
        .arg("--out")
        .arg(&cli_out)
        .arg("--progress")
        .arg("json")
        .output()
        .unwrap();
    assert!(
        status.status.success(),
        "CLI run failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );

    let session_dir = root.join("out").join(&session_id);
    for ext in ["csv", "json"] {
        let find = |dir: &PathBuf| -> PathBuf {
            std::fs::read_dir(dir)
                .unwrap()
                .filter_map(Result::ok)
                .map(|e| e.path())
                .find(|p| p.extension().is_some_and(|e| e == ext))
                .unwrap_or_else(|| panic!("no .{ext} in {}", dir.display()))
        };
        let service_path = find(&session_dir);
        let cli_path = find(&cli_out);
        assert_eq!(
            service_path.file_name(),
            cli_path.file_name(),
            "both paths derive the report name from the same spec"
        );
        let service_bytes = std::fs::read(&service_path).unwrap();
        let cli_bytes = std::fs::read(&cli_path).unwrap();
        assert_eq!(
            service_bytes,
            cli_bytes,
            "service {} differs from CLI {}",
            service_path.display(),
            cli_path.display()
        );
    }

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cancel_drains_a_session_and_the_server_survives() {
    // A deliberately large campaign (512 points) on one worker, cancelled
    // almost immediately: the session must reach `cancelled`, drain its
    // remaining points as failures (one terminal event per point), and
    // leave the server serving.
    let (handle, addr, root) = spawn_server("cancel", 1, 1);
    let reply = client_request(
        &addr,
        &object(&[
            ("cmd", Value::Str("submit".to_string())),
            ("campaign", Value::Str("gen-campaign".to_string())),
            (
                "params",
                object(&[
                    ("population", Value::UInt(256)),
                    ("seed", Value::UInt(9)),
                    ("min-regs", Value::UInt(12)),
                    ("max-regs", Value::UInt(64)),
                    ("max-outer-trips", Value::UInt(3)),
                    ("max-inner-trips", Value::UInt(6)),
                    ("max-body-alu", Value::UInt(6)),
                    ("max-body-loads", Value::UInt(2)),
                ]),
            ),
        ]),
    )
    .unwrap();
    assert_eq!(
        reply.get("ok"),
        Some(&Value::Bool(true)),
        "{}",
        reply.to_json()
    );
    let session_id = reply
        .get("session_id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let points = reply.get("points").and_then(Value::as_u64).unwrap() as usize;

    let cancel = client_request(
        &addr,
        &object(&[
            ("cmd", Value::Str("cancel".to_string())),
            ("session_id", Value::Str(session_id.clone())),
        ]),
    )
    .unwrap();
    assert_eq!(cancel.get("ok"), Some(&Value::Bool(true)));

    // Drain to completion and confirm the accounting.
    let log = attach_all(&addr, &session_id);
    let counts = count_log(&log);
    assert_eq!(
        counts.finished + counts.coalesced + counts.failed + counts.restored,
        points,
        "cancelled sessions still emit one terminal event per point"
    );
    let (_, _, _, _, failed) = counts.totals.expect("summary after cancel");
    assert!(failed > 0, "cancellation drained points as failures");

    // The server still answers, and reports the session cancelled.
    let status =
        client_request(&addr, &object(&[("cmd", Value::Str("status".to_string()))])).unwrap();
    let sessions = status.get("sessions").and_then(Value::as_array).unwrap();
    let entry = sessions
        .iter()
        .find(|s| s.get("session_id").and_then(Value::as_str) == Some(session_id.as_str()))
        .expect("cancelled session is listed");
    assert_eq!(
        entry.get("state").and_then(Value::as_str),
        Some("cancelled")
    );

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// Satellite 2: protocol robustness
// ---------------------------------------------------------------------------

#[test]
fn garbled_truncated_and_oversized_lines_get_typed_errors_and_service_continues() {
    let (handle, addr, root) = spawn_server("robust", 1, 1);
    let mut stream = TcpStream::connect(&addr).unwrap();
    let oversized = format!("{}\n", "z".repeat(MAX_REQUEST_BYTES + 1));
    let abuse: &[&str] = &[
        "this is not json\n",
        "{\"cmd\":\"submit\",\"campaign\":\"fig9\"\n", // truncated JSON
        "{\"cmd\":\"frobnicate\"}\n",
        "[1,2,3]\n",
        "{\"cmd\":\"attach\"}\n",
        "{\"cmd\":\"submit\",\"campaign\":\"no-such-campaign\"}\n",
        "{\"cmd\":\"attach\",\"session_id\":\"s-404\"}\n",
        &oversized,
        "\u{7f}\u{1}\u{2}binary garbage\n",
    ];
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for line in abuse {
        stream.write_all(line.as_bytes()).unwrap();
        let mut response = String::new();
        assert!(
            reader.read_line(&mut response).unwrap() > 0,
            "server hung up on {line:?}"
        );
        let value = Value::parse_json(response.trim())
            .unwrap_or_else(|e| panic!("untyped response to {line:?}: {response} ({e})"));
        assert_eq!(
            value.get("ok"),
            Some(&Value::Bool(false)),
            "abusive line {line:?} must get ok:false, got {response}"
        );
        assert!(
            value
                .get("error")
                .and_then(Value::as_str)
                .is_some_and(|m| !m.is_empty()),
            "error text for {line:?}"
        );
    }
    // The same connection still serves real requests afterwards.
    stream.write_all(b"{\"cmd\":\"status\"}\n").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let value = Value::parse_json(response.trim()).unwrap();
    assert_eq!(value.get("ok"), Some(&Value::Bool(true)), "{response}");

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    /// `parse_request` is total: arbitrary bytes (decoded lossily, exactly
    /// as the server does) never panic it — they parse or yield an error
    /// string.
    #[test]
    fn parse_request_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        match parse_request(&text) {
            Ok(_) => {}
            Err(message) => prop_assert!(!message.is_empty()),
        }
    }

    /// Near-miss structured fuzz: random truncations and field scrambles of
    /// a valid submit line must never panic, and truncations of well-formed
    /// JSON must be rejected (a prefix of an object is never an object).
    #[test]
    fn parse_request_survives_truncations_of_valid_requests(
        cut in any::<u64>(),
        seed_value in any::<u64>(),
    ) {
        let valid = format!(
            "{{\"cmd\":\"submit\",\"campaign\":\"gen-campaign\",\
             \"params\":{{\"population\":8,\"seed\":{seed_value}}}}}"
        );
        prop_assert!(parse_request(&valid).is_ok());
        let cut = (cut as usize) % valid.len();
        if cut > 0 {
            // Truncation mid-line: typed error, no panic. (cut == len is
            // the valid line itself, excluded above.)
            let truncated = &valid[..cut];
            if let Err(message) = parse_request(truncated) {
                prop_assert!(!message.is_empty());
            } else {
                // A prefix that still parses must be a shorter valid
                // request; only possible if truncation hit a token
                // boundary that still closed the object — impossible for
                // this shape, so flag it.
                prop_assert!(false, "truncated prefix parsed: {truncated:?}");
            }
        }
    }
}
