//! Integration tests for trace-driven campaigns: cache correctness (warm
//! rerun = 100% hits, edited trace = 100% misses), per-point errors for
//! stale fingerprints, determinism, and a golden CSV fixture pinning
//! `sweep trace-campaign` on the checked-in example traces.
//!
//! When an *intentional* behaviour change shifts the numbers, regenerate the
//! fixture and review the diff like any other code change:
//!
//! ```text
//! LTRF_BLESS=1 cargo test -p ltrf-sweep --test trace_campaign
//! ```

use std::path::PathBuf;

use ltrf_sweep::campaigns::{trace_campaign_spec, TraceCampaignParams};
use ltrf_sweep::{report, run_sweep, ExecutorOptions, SeedMode, TraceWorkloadId, CAMPAIGN_SEED};

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../examples/traces/{name}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ltrf-trace-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_params(traces: Vec<TraceWorkloadId>) -> TraceCampaignParams {
    TraceCampaignParams {
        traces,
        sm_count: 1,
        seed_mode: SeedMode::Fixed(2018),
    }
}

#[test]
fn warm_rerun_hits_fully_and_an_edited_trace_misses_fully() {
    let cache_dir = temp_dir("cache");
    let work_dir = temp_dir("work");
    let options = ExecutorOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ExecutorOptions::default()
    };

    // Run against a private copy of an example trace so the edit below
    // cannot touch the checked-in file.
    let trace_path = work_dir.join("straight_line.trace");
    std::fs::copy(example("straight_line.trace"), &trace_path).unwrap();

    // Cold run: everything computes.
    let spec = trace_campaign_spec(&test_params(vec![
        TraceWorkloadId::from_path(&trace_path).unwrap()
    ]));
    let cold = run_sweep(&spec, &options);
    assert_eq!(cold.failure_count(), 0);
    assert_eq!(cold.cached_count(), 0);
    assert_eq!(cold.computed_count(), spec.points.len());

    // Warm rerun: 100% cache hits with bit-identical outcomes.
    let warm = run_sweep(&spec, &options);
    assert_eq!(
        warm.computed_count(),
        0,
        "warm rerun must recompute nothing"
    );
    assert!((warm.cache_hit_rate() - 1.0).abs() < 1e-12);
    for (cold_record, warm_record) in cold.records.iter().zip(&warm.records) {
        assert_eq!(cold_record.outcome, warm_record.outcome);
        assert!(warm_record.from_cache);
    }

    // Editing the trace (here: doubling the grid) re-fingerprints the
    // identity: every point misses and recomputes.
    let source = std::fs::read_to_string(&trace_path).unwrap();
    assert!(source.contains("-grid dim = (4,1,1)"), "edit site present");
    std::fs::write(
        &trace_path,
        source.replace("-grid dim = (4,1,1)", "-grid dim = (64,1,1)"),
    )
    .unwrap();
    let edited_spec =
        trace_campaign_spec(&test_params(vec![
            TraceWorkloadId::from_path(&trace_path).unwrap()
        ]));
    assert_ne!(edited_spec.name, spec.name, "trace-set fingerprint renames");
    let edited = run_sweep(&edited_spec, &options);
    assert_eq!(
        edited.cached_count(),
        0,
        "an edited trace shares no cache entries"
    );
    assert_eq!(edited.failure_count(), 0);
    assert!(
        cold.records
            .iter()
            .zip(&edited.records)
            .any(|(c, e)| serde::to_json_string(&c.outcome) != serde::to_json_string(&e.outcome)),
        "the grid edit changes the simulated kernel somewhere"
    );

    // The stale identity (old fingerprint, new bytes) fails per point with
    // the typed content-changed error, not a panic or a silent stale hit.
    let stale = run_sweep(&spec, &ExecutorOptions::default());
    assert_eq!(stale.failure_count(), stale.len());
    for record in &stale.records {
        match &record.outcome {
            ltrf_sweep::PointOutcome::Error(message) => {
                assert!(message.contains("changed on disk"), "{message}");
            }
            other => panic!("expected a content-changed error, got {other:?}"),
        }
    }

    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_dir_all(&work_dir);
}

#[test]
fn trace_campaigns_are_deterministic_and_name_their_workloads() {
    let traces = vec![
        TraceWorkloadId::from_path(example("straight_line.trace")).unwrap(),
        TraceWorkloadId::from_path(example("divergent_loop.trace")).unwrap(),
    ];
    let spec = trace_campaign_spec(&test_params(traces));
    let options = ExecutorOptions::default();
    let first = run_sweep(&spec, &options);
    let second = run_sweep(&spec, &options);
    assert_eq!(first.failure_count(), 0);
    assert_eq!(
        serde::to_json_string(&first),
        serde::to_json_string(&second),
        "same spec, same bits"
    );
    for record in &first.records {
        let trace = record.point.trace.as_ref().expect("trace identity");
        assert_eq!(record.point.workload, trace.workload_name());
        assert!(record.point.workload.starts_with("trace:"));
    }
    // The JSON report round-trips the trace identity.
    let json = serde::to_json_string(&first);
    let parsed: ltrf_sweep::SweepResults = serde::from_json_str(&json).expect("round-trip");
    assert_eq!(parsed, first);
    assert!(json.contains("\"content_hash\""));
}

/// Path of the committed fixture (source-relative, so the test can bless it).
fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace-campaign.csv")
}

/// Normalizes CSV text for comparison: line endings and trailing whitespace
/// only. Numbers are compared verbatim — the engine is deterministic and the
/// reporter formats floats at fixed precision, so exact equality is the
/// contract.
fn normalize(text: &str) -> Vec<String> {
    text.replace("\r\n", "\n")
        .lines()
        .map(|line| line.trim_end().to_string())
        .filter(|line| !line.is_empty())
        .collect()
}

#[test]
fn trace_campaign_csv_matches_the_committed_golden_file() {
    // The same default invocation `sweep trace-campaign` runs: the three
    // example traces with the fixed campaign seed.
    let traces = vec![
        TraceWorkloadId::from_path(example("straight_line.trace")).unwrap(),
        TraceWorkloadId::from_path(example("divergent_loop.trace")).unwrap(),
        TraceWorkloadId::from_path(example("high_register_pressure.trace")).unwrap(),
    ];
    let spec = trace_campaign_spec(&TraceCampaignParams {
        traces,
        sm_count: 1,
        seed_mode: SeedMode::Fixed(CAMPAIGN_SEED),
    });
    // Uncached: provenance columns must read `false` in the fixture no
    // matter what caches exist on the developer's machine.
    let results = run_sweep(&spec, &ExecutorOptions::default());
    assert_eq!(results.failure_count(), 0, "trace points all succeed");
    let csv = report::to_csv(&results);

    let path = fixture_path();
    if std::env::var_os("LTRF_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture has a parent")).unwrap();
        std::fs::write(&path, &csv).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read the golden fixture {} ({e}); generate it with \
             LTRF_BLESS=1 cargo test -p ltrf-sweep --test trace_campaign",
            path.display()
        )
    });
    let expected = normalize(&golden);
    let actual = normalize(&csv);
    for (i, (want, got)) in expected.iter().zip(actual.iter()).enumerate() {
        assert_eq!(
            want,
            got,
            "trace-campaign CSV line {} drifted from the golden file (an \
             intentional change must re-bless the fixture with LTRF_BLESS=1)",
            i + 1
        );
    }
    assert_eq!(
        expected.len(),
        actual.len(),
        "trace-campaign CSV row count drifted from the golden file"
    );
}
