//! Golden-file regression test for the `sweep table2` CSV output (`--quick`
//! subset) — the fixture the CI `serve-smoke` job also drives two
//! overlapping campaign-service sessions against.
//!
//! The spec comes from the same canonical constructor the CLI and the
//! service both dispatch to ([`ltrf_sweep::campaigns::table2_spec`]), so the
//! committed fixture pins the exact rows `sweep table2 --quick` — and a
//! `table2 --quick` session submitted over the `sweep serve` line protocol —
//! emits. Any refactor that shifts a statistic, the CSV schema, or the point
//! enumeration order fails this test.
//!
//! When an *intentional* behaviour change shifts the numbers, regenerate the
//! fixture and review the diff like any other code change:
//!
//! ```text
//! LTRF_BLESS=1 cargo test -p ltrf-sweep --test golden_table2
//! ```

use std::path::PathBuf;

use ltrf_sweep::campaigns::table2_spec;
use ltrf_sweep::{report, run_sweep, ExecutorOptions, SeedMode, CAMPAIGN_SEED};
use ltrf_workloads::QUICK_SUBSET;

/// Path of the committed fixture (source-relative, so the test can bless it).
fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/table2-quick.csv")
}

/// Normalizes CSV text for comparison: line endings and trailing whitespace
/// only — exact equality is the contract (see `golden_fig9.rs`).
fn normalize(text: &str) -> Vec<String> {
    text.replace("\r\n", "\n")
        .lines()
        .map(|line| line.trim_end().to_string())
        .filter(|line| !line.is_empty())
        .collect()
}

#[test]
fn table2_quick_csv_matches_the_committed_golden_file() {
    let spec = table2_spec(QUICK_SUBSET, 1, SeedMode::Fixed(CAMPAIGN_SEED));
    // Uncached: provenance columns must read `false` in the fixture no
    // matter what caches exist on the developer's machine.
    let results = run_sweep(&spec, &ExecutorOptions::default());
    assert_eq!(
        results.failure_count(),
        0,
        "table2 quick points all succeed"
    );
    let csv = report::to_csv(&results);

    let path = fixture_path();
    if std::env::var_os("LTRF_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture has a parent")).unwrap();
        std::fs::write(&path, &csv).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read the golden fixture {} ({e}); generate it with \
             LTRF_BLESS=1 cargo test -p ltrf-sweep --test golden_table2",
            path.display()
        )
    });
    let expected = normalize(&golden);
    let actual = normalize(&csv);

    for (i, (want, got)) in expected.iter().zip(actual.iter()).enumerate() {
        assert_eq!(
            want,
            got,
            "table2 CSV line {} drifted from the golden file (an intentional \
             change must re-bless the fixture with LTRF_BLESS=1)",
            i + 1
        );
    }
    assert_eq!(
        expected.len(),
        actual.len(),
        "table2 CSV row count drifted from the golden file"
    );
}
