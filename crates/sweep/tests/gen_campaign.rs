//! Integration tests for generated-workload campaigns: cache correctness
//! (warm rerun = 100% hits, seed change = 100% misses), determinism, and the
//! generator columns of the reporters.

use std::path::PathBuf;

use ltrf_sweep::campaigns::{gen_campaign_spec, GenCampaignParams};
use ltrf_sweep::{report, run_sweep, ExecutorOptions, SeedMode};
use ltrf_workloads::{GeneratorConfig, WorkloadGenerator};

/// Small, fast generator bounds for the integration campaigns.
fn test_bounds() -> GeneratorConfig {
    GeneratorConfig {
        min_regs: 12,
        max_regs: 64,
        max_outer_trips: 3,
        max_inner_trips: 6,
        max_body_alu: 6,
        max_body_loads: 2,
    }
}

fn test_params(population_seed: u64) -> GenCampaignParams {
    GenCampaignParams {
        population: 3,
        population_seed,
        config: test_bounds(),
        sm_count: 1,
        seed_mode: SeedMode::Fixed(2018),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltrf-gen-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_rerun_hits_fully_and_a_new_seed_misses_fully() {
    let cache_dir = temp_dir("cache");
    let options = ExecutorOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ExecutorOptions::default()
    };

    // Cold run: everything computes.
    let spec = gen_campaign_spec(&test_params(7));
    let cold = run_sweep(&spec, &options);
    assert_eq!(cold.failure_count(), 0);
    assert_eq!(cold.cached_count(), 0);
    assert_eq!(cold.computed_count(), spec.points.len());

    // Warm rerun: 100% cache hits with bit-identical outcomes.
    let warm = run_sweep(&spec, &options);
    assert_eq!(
        warm.computed_count(),
        0,
        "warm rerun must recompute nothing"
    );
    assert!((warm.cache_hit_rate() - 1.0).abs() < 1e-12);
    for (cold_record, warm_record) in cold.records.iter().zip(&warm.records) {
        assert_eq!(cold_record.outcome, warm_record.outcome);
        assert!(warm_record.from_cache);
    }

    // Changing only the generator seed: every point misses (the population
    // identity is key material) and the results differ.
    let reseeded_spec = gen_campaign_spec(&test_params(8));
    let reseeded = run_sweep(&reseeded_spec, &options);
    assert_eq!(
        reseeded.cached_count(),
        0,
        "a reseeded population shares no cache entries"
    );
    assert_eq!(reseeded.failure_count(), 0);
    assert_ne!(
        serde::to_json_string(&cold.records[0].outcome),
        serde::to_json_string(&reseeded.records[0].outcome),
        "different population seeds produce different kernels"
    );

    // Changing only a generator bound misses as well.
    let widened_spec = gen_campaign_spec(&GenCampaignParams {
        config: GeneratorConfig {
            max_regs: 65,
            ..test_bounds()
        },
        ..test_params(7)
    });
    let widened = run_sweep(&widened_spec, &options);
    assert_eq!(
        widened.cached_count(),
        0,
        "changed generator bounds share no cache entries"
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn generated_campaigns_are_deterministic_and_name_their_members() {
    let spec = gen_campaign_spec(&test_params(7));
    let options = ExecutorOptions::default();
    let first = run_sweep(&spec, &options);
    let second = run_sweep(&spec, &options);
    assert_eq!(first.failure_count(), 0);
    assert_eq!(
        serde::to_json_string(&first),
        serde::to_json_string(&second),
        "same spec, same bits"
    );
    for record in &first.records {
        let generated = record.point.generated.expect("population identity");
        assert_eq!(
            record.point.workload,
            WorkloadGenerator::member_name(generated.index)
        );
    }
}

#[test]
fn reports_carry_the_generator_columns() {
    let spec = gen_campaign_spec(&test_params(7));
    let results = run_sweep(&spec, &ExecutorOptions::default());
    let csv = report::to_csv(&results);
    let mut lines = csv.lines();
    let header = lines.next().expect("header row");
    assert!(
        header.starts_with("workload,gen_seed,gen_index,"),
        "generator columns lead the CSV: {header}"
    );
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[1], "7", "gen_seed column: {line}");
        assert!(fields[2].parse::<u32>().is_ok(), "gen_index column: {line}");
        assert!(
            fields[0].starts_with("gen-"),
            "generated member names: {line}"
        );
    }
    // The JSON report round-trips the population identity.
    let json = serde::to_json_string(&results);
    let parsed: ltrf_sweep::SweepResults = serde::from_json_str(&json).expect("round-trip");
    assert_eq!(parsed, results);
    assert!(json.contains("\"population_seed\":7"));
}
