//! Registry integration tests: the campaign registry, the `REPRODUCING.md`
//! artifact atlas, and the generated `describe` surfaces must agree — and
//! the session event stream must match the batch results exactly.

use std::collections::BTreeSet;
use std::path::PathBuf;

use ltrf_sweep::api::{describe_text, registry, CampaignParams};
use ltrf_sweep::{
    CampaignEvent, CampaignSession, EventLog, ExecutorOptions, SweepResults, SweepSpec,
};

/// The repository-root documentation file naming every campaign command.
fn reproducing_md() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../REPRODUCING.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Every backticked `` `sweep <command>` `` mention in a document — the
/// convention the atlas uses for runnable commands (prose like "the sweep
/// engine" is never backticked with a trailing command word).
fn sweep_commands(doc: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (start, _) in doc.match_indices("`sweep ") {
        let rest = &doc[start + "`sweep ".len()..];
        let word: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
            .collect();
        if word.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
            names.insert(word);
        }
    }
    names
}

/// The CLI's meta-commands: part of the `sweep` surface but not campaigns.
const META_COMMANDS: [&str; 6] = ["list", "describe", "version", "help", "serve", "client"];

#[test]
fn registry_matches_the_reproducing_atlas() {
    let doc = reproducing_md();
    let registry = registry();

    // Forward: every campaign the atlas tells readers to run is registered.
    let mut documented: BTreeSet<String> = sweep_commands(&doc)
        .into_iter()
        .filter(|w| !META_COMMANDS.contains(&w.as_str()))
        .collect();
    assert!(
        !documented.is_empty(),
        "REPRODUCING.md names at least one sweep command"
    );
    for name in &documented {
        assert!(
            registry.find(name).is_some(),
            "REPRODUCING.md documents `sweep {name}` but the registry has no such campaign \
             (names/aliases: {:?})",
            registry
                .campaigns()
                .iter()
                .flat_map(|c| c.names())
                .collect::<Vec<_>>()
        );
    }

    // Reverse: every registered campaign is documented in the atlas.
    for campaign in registry.campaigns() {
        let mentioned = campaign
            .names()
            .any(|name| documented.remove(name) || doc.contains(&format!("sweep {name}")));
        assert!(
            mentioned,
            "campaign `{}` is registered but REPRODUCING.md never mentions `sweep {}`",
            campaign.name, campaign.name
        );
    }
}

#[test]
fn describe_covers_every_accepted_parameter() {
    // The generated describe output (and therefore `sweep describe`) must
    // mention every parameter each campaign accepts — the property that
    // used to require hand-maintaining help text in lockstep with the
    // flag-scope tables.
    for campaign in registry().campaigns() {
        let text = describe_text(campaign);
        for param in campaign.params {
            assert!(
                text.contains(param.flag),
                "`sweep describe {}` does not mention {}",
                campaign.name,
                param.flag
            );
            assert!(
                text.contains(param.help),
                "`sweep describe {}` does not carry the help text of {}",
                campaign.name,
                param.flag
            );
        }
    }
}

/// Splits an event log into per-kind buckets.
struct EventCounts {
    started: usize,
    point_started: usize,
    finished_hits: usize,
    finished_misses: usize,
    restored: usize,
    coalesced: usize,
    failed: usize,
    campaign_finished: Vec<(usize, usize, usize, usize, usize, f64)>,
}

fn count(events: &[CampaignEvent]) -> EventCounts {
    let mut counts = EventCounts {
        started: 0,
        point_started: 0,
        finished_hits: 0,
        finished_misses: 0,
        restored: 0,
        coalesced: 0,
        failed: 0,
        campaign_finished: Vec::new(),
    };
    for event in events {
        match event {
            CampaignEvent::CampaignStarted { .. } => counts.started += 1,
            CampaignEvent::PointStarted { .. } => counts.point_started += 1,
            CampaignEvent::PointFinished {
                cache_hit: true, ..
            } => counts.finished_hits += 1,
            CampaignEvent::PointFinished {
                cache_hit: false, ..
            } => counts.finished_misses += 1,
            CampaignEvent::PointRestored { .. } => counts.restored += 1,
            CampaignEvent::PointCoalesced { .. } => counts.coalesced += 1,
            CampaignEvent::PointFailed { .. } => counts.failed += 1,
            CampaignEvent::CampaignFinished {
                computed,
                cached,
                restored,
                coalesced,
                failed,
                hit_rate,
                ..
            } => counts.campaign_finished.push((
                *computed, *cached, *restored, *coalesced, *failed, *hit_rate,
            )),
        }
    }
    counts
}

fn assert_stream_matches(events: &[CampaignEvent], results: &SweepResults) {
    let counts = count(events);
    assert_eq!(counts.started, 1, "exactly one CampaignStarted");
    assert_eq!(counts.point_started, results.len(), "one start per point");
    assert_eq!(
        counts.finished_hits
            + counts.finished_misses
            + counts.restored
            + counts.coalesced
            + counts.failed,
        results.len(),
        "one terminal event per point"
    );
    assert_eq!(
        counts.restored, 0,
        "non-resume runs never restore from a journal"
    );
    assert_eq!(
        counts.coalesced, 0,
        "coalescing needs a PointCoordinator; plain runs have none"
    );
    assert_eq!(
        counts.finished_hits,
        results.cached_count(),
        "cache_hit flags"
    );
    assert_eq!(counts.failed, results.failure_count(), "failure events");
    let &[(computed, cached, restored, coalesced, failed, hit_rate)] =
        counts.campaign_finished.as_slice()
    else {
        panic!(
            "exactly one CampaignFinished, got {:?}",
            counts.campaign_finished
        );
    };
    assert_eq!(computed, results.computed_count());
    assert_eq!(cached, results.cached_count());
    assert_eq!(restored, 0, "non-resume runs report zero restored points");
    assert_eq!(
        coalesced, 0,
        "uncoordinated runs report zero coalesced points"
    );
    assert_eq!(failed, results.failure_count());
    assert!((hit_rate - results.cache_hit_rate()).abs() < 1e-12);
    // The last event of the stream is the campaign summary.
    assert!(matches!(
        events.last(),
        Some(CampaignEvent::CampaignFinished { .. })
    ));
    // Every JSON line parses and round-trips its event kind.
    for event in events {
        let line = event.to_json_line();
        let value = serde::Value::parse_json(&line)
            .unwrap_or_else(|e| panic!("event line does not parse: {line} ({e})"));
        let serde::Value::Object(fields) = value else {
            panic!("event line is not an object: {line}");
        };
        assert_eq!(fields[0].0, "event", "the kind leads each line: {line}");
    }
}

#[test]
fn event_stream_counts_match_sweep_results_cold_and_warm() {
    let cache_dir =
        std::env::temp_dir().join(format!("ltrf-registry-events-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    // A small registered campaign: gen-campaign with a 2-member population
    // (4 points under BL/LTRF).
    let params = CampaignParams {
        population: Some(2),
        population_seed: Some(7),
        ..CampaignParams::default()
    };
    let spec = registry()
        .find("gen-campaign")
        .unwrap()
        .specs(&params)
        .unwrap();
    let spec = &spec[0];
    let options = ExecutorOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ExecutorOptions::default()
    };

    // Cold: everything computes, every PointFinished is a miss.
    let log = EventLog::new();
    let cold = CampaignSession::new(spec, &options).run(&log);
    assert_eq!(cold.len(), 4);
    assert_eq!(cold.failure_count(), 0);
    assert_eq!(cold.cached_count(), 0);
    assert_stream_matches(&log.take(), &cold);

    // Warm: everything is a hit, and the stream says so per point.
    let warm = CampaignSession::new(spec, &options).run(&log);
    assert_eq!(warm.cached_count(), warm.len());
    let events = log.take();
    assert_stream_matches(&events, &warm);
    let hits = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                CampaignEvent::PointFinished {
                    cache_hit: true,
                    ..
                }
            )
        })
        .count();
    assert_eq!(hits, 4, "warm rerun streams cache_hit on every point");

    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn event_stream_reports_failures_per_point() {
    // One resolvable workload and one unknown one: the campaign survives,
    // the stream carries a PointFailed for exactly the bad point.
    let spec = SweepSpec::builder("registry-failure")
        .workloads(["hotspot", "no-such-workload"])
        .normalize(false)
        .build();
    let log = EventLog::new();
    let results = CampaignSession::new(&spec, &ExecutorOptions::default()).run(&log);
    assert_eq!(results.len(), 2);
    assert_eq!(results.failure_count(), 1);
    let events = log.take();
    assert_stream_matches(&events, &results);
    let failed: Vec<&CampaignEvent> = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::PointFailed { .. }))
        .collect();
    match failed.as_slice() {
        [CampaignEvent::PointFailed {
            workload, error, ..
        }] => {
            assert_eq!(workload, "no-such-workload");
            assert!(error.contains("unknown workload"), "{error}");
        }
        other => panic!("expected one PointFailed, got {other:?}"),
    }
}

#[test]
fn batch_wrapper_and_observed_session_agree() {
    // run_sweep is a thin wrapper over the session: identical results.
    let params = CampaignParams {
        population: Some(2),
        population_seed: Some(11),
        ..CampaignParams::default()
    };
    let spec = registry()
        .find("gen-campaign")
        .unwrap()
        .specs(&params)
        .unwrap();
    let options = ExecutorOptions::default();
    let batch = ltrf_sweep::run_sweep(&spec[0], &options);
    let observed = CampaignSession::new(&spec[0], &options).run(&EventLog::new());
    assert_eq!(batch, observed, "the batch wrapper is output-identical");
}
