//! Integration tests for the `sweep interconnect` campaign: cache-identity
//! semantics (warm reruns hit 100%, changing any network knob misses 100%),
//! the extended-CSV golden fixture, and the sweep-level sanity check that
//! crossbar and mesh genuinely diverge once enough SMs contend.
//!
//! When an *intentional* behaviour change shifts the fixture's numbers,
//! regenerate it and review the diff like any other code change:
//!
//! ```text
//! LTRF_BLESS=1 cargo test -p ltrf-sweep --test interconnect
//! ```

use std::path::PathBuf;

use ltrf_sim::Topology;
use ltrf_sweep::campaigns::{interconnect_specs, InterconnectCampaignParams};
use ltrf_sweep::report::{CsvSchema, CSV_COLUMNS, INTERCONNECT_CSV_COLUMNS};
use ltrf_sweep::{run_sweep, ExecutorOptions, SeedMode, CAMPAIGN_SEED};

/// Narrowed campaign parameters the tests share: one topology, two SM
/// counts, the fixed campaign seed — small enough for the debug test
/// profile while still crossing the shared-memory path (sm_count 4).
fn params(topology: Topology, sm_counts: &[usize]) -> InterconnectCampaignParams {
    InterconnectCampaignParams {
        topologies: vec![topology],
        sm_counts: sm_counts.to_vec(),
        seed_mode: SeedMode::Fixed(CAMPAIGN_SEED),
        ..InterconnectCampaignParams::default()
    }
}

/// A fresh per-process scratch directory (removed and recreated so a stale
/// cache from a previous run can never turn a cold assertion warm).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltrf-interconnect-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn warm_reruns_hit_and_topology_changes_miss() {
    let cache = temp_dir("cache");
    let options = ExecutorOptions {
        cache_dir: Some(cache.clone()),
        ..ExecutorOptions::default()
    };

    let crossbar = &interconnect_specs(&["hotspot"], &params(Topology::Crossbar, &[1, 2]))[0];
    let cold = run_sweep(crossbar, &options);
    assert_eq!(cold.failure_count(), 0);
    assert_eq!(cold.cached_count(), 0, "cold run computes everything");

    let warm = run_sweep(crossbar, &options);
    assert_eq!(
        warm.cached_count(),
        warm.len(),
        "an identical rerun hits the cache 100%"
    );

    // Changing the topology is new cache-key material on every point.
    let mesh = &interconnect_specs(&["hotspot"], &params(Topology::Mesh2D, &[1, 2]))[0];
    let mesh_run = run_sweep(mesh, &options);
    assert_eq!(mesh_run.cached_count(), 0, "a new topology misses 100%");

    // So is changing any link-provisioning knob of an already-cached
    // topology.
    let mut narrow = params(Topology::Crossbar, &[1, 2]);
    narrow.link_width = 16;
    let narrow_spec = &interconnect_specs(&["hotspot"], &narrow)[0];
    let narrow_run = run_sweep(narrow_spec, &options);
    assert_eq!(narrow_run.cached_count(), 0, "a new link width misses 100%");

    // The ideal spec at default provisioning carries the *default* network,
    // which is elided from cache keys: its identity is exactly the
    // pre-interconnect identity of the same experiment.
    let ideal = &interconnect_specs(&["hotspot"], &params(Topology::Ideal, &[1, 2]))[0];
    let ideal_cold = run_sweep(ideal, &options);
    assert_eq!(ideal_cold.cached_count(), 0);
    let ideal_warm = run_sweep(ideal, &options);
    assert_eq!(ideal_warm.cached_count(), ideal_warm.len());

    let _ = std::fs::remove_dir_all(&cache);
}

/// Path of the committed fixture (source-relative, so the test can bless it).
fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/interconnect-crossbar.csv")
}

/// Normalizes CSV text for comparison: line endings and trailing whitespace
/// only — the engine is deterministic, so exact equality is the contract.
fn normalize(text: &str) -> Vec<String> {
    text.replace("\r\n", "\n")
        .lines()
        .map(|line| line.trim_end().to_string())
        .filter(|line| !line.is_empty())
        .collect()
}

#[test]
fn interconnect_crossbar_csv_matches_the_committed_golden_file() {
    let spec = &interconnect_specs(&["hotspot", "btree"], &params(Topology::Crossbar, &[1, 4]))[0];
    // Uncached: provenance columns must read `false` in the fixture no
    // matter what caches exist on the developer's machine.
    let results = run_sweep(spec, &ExecutorOptions::default());
    assert_eq!(results.failure_count(), 0, "crossbar points all succeed");

    // The interconnect campaign writes the extended schema.
    let schema = CsvSchema::for_spec(spec);
    assert_eq!(schema, CsvSchema::Interconnect);
    let mut csv = schema.header();
    csv.push('\n');
    for record in &results.records {
        csv.push_str(&schema.row(record));
        csv.push('\n');
    }

    let path = fixture_path();
    if std::env::var_os("LTRF_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture has a parent")).unwrap();
        std::fs::write(&path, &csv).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read the golden fixture {} ({e}); generate it with \
             LTRF_BLESS=1 cargo test -p ltrf-sweep --test interconnect",
            path.display()
        )
    });
    let expected = normalize(&golden);
    let actual = normalize(&csv);
    for (i, (want, got)) in expected.iter().zip(actual.iter()).enumerate() {
        assert_eq!(
            want,
            got,
            "interconnect CSV line {} drifted from the golden file (an \
             intentional change must re-bless the fixture with LTRF_BLESS=1)",
            i + 1
        );
    }
    assert_eq!(expected.len(), actual.len(), "row count drifted");

    // Structural guarantees the fixture encodes: every row carries the 33
    // columns, 4-SM rows show real network latency, and 1-SM rows (which
    // never touch the shared network) report zeros.
    let header = &actual[0];
    assert_eq!(
        header.split(',').count(),
        CSV_COLUMNS.len() + INTERCONNECT_CSV_COLUMNS.len()
    );
    for row in &actual[1..] {
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields[3], "LTRF");
        assert_eq!(fields[23], "crossbar", "topology column");
        let sm_count: usize = fields[8].parse().unwrap();
        let noc_mean: f64 = fields[30].parse().unwrap();
        if sm_count == 1 {
            assert_eq!(noc_mean, 0.0, "single-SM rows never route messages");
        } else {
            assert!(noc_mean > 0.0, "multi-SM crossbar rows pay NoC latency");
        }
    }
}

#[test]
fn crossbar_and_mesh_diverge_at_sixteen_sms() {
    let crossbar_spec = &interconnect_specs(&["hotspot"], &params(Topology::Crossbar, &[16]))[0];
    let mesh_spec = &interconnect_specs(&["hotspot"], &params(Topology::Mesh2D, &[16]))[0];
    let options = ExecutorOptions::default();
    let crossbar = run_sweep(crossbar_spec, &options);
    let mesh = run_sweep(mesh_spec, &options);
    assert_eq!(crossbar.failure_count() + mesh.failure_count(), 0);

    let stats = |results: &ltrf_sweep::SweepResults| {
        let (_, data) = results.successes().next().expect("one success");
        let memory = data.result.stats.memory;
        (memory.l2_queue_wait_cycles, memory.noc.mean_latency())
    };
    let (xbar_wait, xbar_latency) = stats(&crossbar);
    let (mesh_wait, mesh_latency) = stats(&mesh);
    assert!(xbar_latency > 0.0 && mesh_latency > 0.0);
    // The two topologies must be *measurably* different — not better or
    // worse in a fixed order (short mesh routes can beat the crossbar's
    // two-stage path; congested shared edges can lose to it), just
    // distinguishable in the contention profile they produce.
    assert!(
        (xbar_wait, xbar_latency) != (mesh_wait, mesh_latency),
        "topologies must be measurably different at 16 SMs: \
         crossbar ({xbar_wait}, {xbar_latency}) vs mesh ({mesh_wait}, {mesh_latency})"
    );
}
