//! Content-addressed result cache.
//!
//! Every sweep point is identified by the SHA-256 digest of its *key
//! material*: the canonical JSON of everything that determines its result —
//! schema version, seeding policy, normalization policy, workload name,
//! memory selection, and the full [`ExperimentConfig`] (via
//! [`ExperimentConfig::cache_key_value`]). A cache entry stores the key
//! material alongside the outcome, so entries are self-describing and a
//! digest can be re-verified with standard tools.
//!
//! Entries live in packed append-only segment files under
//! `<cache>/segments/` (see [`crate::packed`]) — a handful of files instead
//! of one per point, which is what keeps 10k+-point campaigns from
//! exhausting inodes. Caches written by older releases used one
//! `<digest>.json` file per point; [`ResultCache::load`] still falls back to
//! those, so existing cache populations keep hitting. New stores always go
//! to the packed store.
//!
//! Stores are crash-ordered (payload flushed before the index line that
//! makes it reachable), so concurrent workers — or concurrent sweep
//! processes — never observe torn entries. Loads are tolerant: anything
//! unreadable or unparsable is treated as a miss and recomputed.

use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize, Value};

use ltrf_core::ExperimentConfig;

use crate::hash::{digest_to_seed, sha256, to_hex};
use crate::packed::PackedStore;
use crate::spec::{SeedMode, SweepPoint, SweepSpec};

/// Bump when the result encoding changes; old entries then simply miss.
///
/// v2: `ExperimentConfig` gained `sm_count` (and `RunResult` the optional
/// `gpu` stats), which changes every point's key material and encoding —
/// all v1 entries are invalid, including their `PerPoint`-derived seeds.
///
/// v3: `ExperimentConfig` gained `power` (the [`ltrf_tech::PowerParams`]
/// calibration of the register-file power model), again changing every
/// point's key material; all v2 entries and their `PerPoint` seeds are
/// invalid.
pub const CACHE_SCHEMA_VERSION: u32 = 3;

/// Engine fingerprint mixed into every cache key: the workspace version.
/// Changing simulator/compiler behaviour without bumping the workspace
/// version (or [`CACHE_SCHEMA_VERSION`]) leaves stale entries valid — during
/// development, pass `--force` / set `force_recompute` after behavioural
/// changes, or delete the cache directory. Release-to-release, the version
/// bump invalidates everything automatically.
pub const ENGINE_FINGERPRINT: &str = env!("CARGO_PKG_VERSION");

/// The identity of a sweep point, fully resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct PointKey {
    /// Canonical JSON string hashed into the digest.
    pub material: String,
    /// Lowercase-hex SHA-256 of the material.
    pub digest_hex: String,
    /// The simulation seed this point runs with.
    pub seed: u64,
}

/// Computes a point's identity under a spec's policies.
///
/// Generated-population points additionally serialize their full
/// [`GeneratedWorkload`](crate::spec::GeneratedWorkload) identity — the
/// population seed, member index, and every generator bound — so a warm rerun
/// of the same campaign hits 100% while changing the seed or any bound
/// misses. Trace points likewise serialize their
/// [`TraceWorkloadId`](ltrf_trace::TraceWorkloadId) — path, content
/// fingerprint, and lowering bounds — so editing the trace file (or moving
/// it) misses while a byte-identical rerun hits. Suite points carry neither
/// entry, which keeps their key material (and therefore existing cache
/// populations) byte-identical to before either axis existed.
#[must_use]
pub fn point_key(spec: &SweepSpec, point: &SweepPoint) -> PointKey {
    let mut fields = vec![
        (
            "version".to_string(),
            Value::UInt(u64::from(CACHE_SCHEMA_VERSION)),
        ),
        (
            "engine".to_string(),
            Value::Str(ENGINE_FINGERPRINT.to_string()),
        ),
        (
            "seed_mode".to_string(),
            Serialize::to_value(&spec.seed_mode),
        ),
        ("normalize".to_string(), Value::Bool(spec.normalize)),
        ("workload".to_string(), Value::Str(point.workload.clone())),
        ("memory".to_string(), Serialize::to_value(&point.memory)),
        (
            "config".to_string(),
            ExperimentConfig::cache_key_value(&point.config),
        ),
    ];
    if let Some(generated) = &point.generated {
        fields.push(("generated".to_string(), Serialize::to_value(generated)));
    }
    if let Some(trace) = &point.trace {
        fields.push(("trace".to_string(), Serialize::to_value(trace)));
    }
    let material = Value::Object(fields).to_json();
    let digest = sha256(material.as_bytes());
    let seed = match spec.seed_mode {
        SeedMode::Fixed(seed) => seed,
        SeedMode::PerPoint(base) => base ^ digest_to_seed(&digest),
    };
    PointKey {
        material,
        digest_hex: to_hex(&digest),
        seed,
    }
}

/// An on-disk content-addressed store of point outcomes.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    packed: PackedStore,
}

/// What a cache entry holds on disk. The outcome stays an untyped [`Value`]
/// here; [`ResultCache::load`] decodes it into the caller's type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheEntry {
    /// The key material the entry was stored under (self-description).
    key_material: String,
    /// The cached outcome.
    outcome: Value,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        // Sweep temp files orphaned by interrupted stores of older releases
        // (which wrote per-point files via temp + rename); packed stores
        // leave no temp files behind.
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.filter_map(Result::ok) {
                let name = entry.file_name();
                if name.to_string_lossy().starts_with(".tmp-") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let packed = PackedStore::open(dir.join("segments"))?;
        Ok(ResultCache { dir, packed })
    }

    /// The cache's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, digest_hex: &str) -> PathBuf {
        self.dir.join(format!("{digest_hex}.json"))
    }

    /// Loads the outcome stored under `key`, verifying the key material.
    ///
    /// The packed segments are consulted first, then the legacy per-point
    /// `<digest>.json` file, so caches written by older releases keep
    /// hitting. Any failure — missing entry, torn write, schema drift,
    /// digest collision on a stale file — is a miss.
    #[must_use]
    pub fn load<T: Deserialize>(&self, key: &PointKey) -> Option<T> {
        let text = self
            .packed
            .load(&key.digest_hex)
            .or_else(|| fs::read_to_string(self.entry_path(&key.digest_hex)).ok())?;
        let entry: CacheEntry = serde::from_json_str(&text).ok()?;
        if entry.key_material != key.material {
            return None;
        }
        T::from_value(&entry.outcome).ok()
    }

    /// Stores `outcome` under `key` in the packed segment store.
    ///
    /// Durability discipline: the payload is framed and flushed before the
    /// index line that makes it reachable is appended, so a kill mid-store
    /// degrades to a miss, never a torn entry.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers may treat a failed store as
    /// non-fatal (the result is still returned to the campaign).
    pub fn store<T: Serialize>(&self, key: &PointKey, outcome: &T) -> std::io::Result<()> {
        let entry = CacheEntry {
            key_material: key.material.clone(),
            outcome: outcome.to_value(),
        };
        self.packed
            .store(&key.digest_hex, &serde::to_json_string(&entry))
    }

    /// Number of entries currently stored: packed entries plus legacy
    /// per-point files, deduplicated by digest.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be read.
    pub fn len(&self) -> std::io::Result<usize> {
        let mut digests: HashSet<String> = self.packed.digests().into_iter().collect();
        for entry in fs::read_dir(&self.dir)?.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    digests.insert(stem.to_string());
                }
            }
        }
        Ok(digests.len())
    }

    /// Whether the cache holds no entries.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be read.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        self.len().map(|n| n == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn test_spec() -> SweepSpec {
        SweepSpec::builder("cache-test")
            .workloads(["hotspot", "btree"])
            .seed_mode(SeedMode::PerPoint(42))
            .build()
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        let spec = test_spec();
        let a1 = point_key(&spec, &spec.points[0]);
        let a2 = point_key(&spec, &spec.points[0]);
        let b = point_key(&spec, &spec.points[1]);
        assert_eq!(a1, a2);
        assert_ne!(a1.digest_hex, b.digest_hex);
        assert_ne!(a1.seed, b.seed, "per-point seeds decorrelate points");
        assert_eq!(a1.digest_hex.len(), 64);
    }

    #[test]
    fn fixed_seed_mode_pins_every_point() {
        let spec = SweepSpec::builder("fixed")
            .workloads(["hotspot", "btree"])
            .seed_mode(SeedMode::Fixed(7))
            .build();
        assert!(spec.points.iter().all(|p| point_key(&spec, p).seed == 7));
    }

    #[test]
    fn generated_identity_is_key_material() {
        use ltrf_workloads::GeneratorConfig;

        let spec = SweepSpec::builder("gen-keys")
            .generated_population(7, 2, GeneratorConfig::default())
            .seed_mode(SeedMode::Fixed(1))
            .build();
        let a = point_key(&spec, &spec.points[0]);
        assert!(
            a.material.contains("\"generated\""),
            "population points serialize their identity: {}",
            a.material
        );
        // Same campaign, different population seed: every digest changes.
        let reseeded = SweepSpec::builder("gen-keys")
            .generated_population(8, 2, GeneratorConfig::default())
            .seed_mode(SeedMode::Fixed(1))
            .build();
        assert_ne!(
            point_key(&spec, &spec.points[0]).digest_hex,
            point_key(&reseeded, &reseeded.points[0]).digest_hex
        );
        // Changing one generator bound changes the digest too.
        let widened = SweepSpec::builder("gen-keys")
            .generated_population(
                7,
                2,
                GeneratorConfig {
                    max_regs: 96,
                    ..GeneratorConfig::default()
                },
            )
            .seed_mode(SeedMode::Fixed(1))
            .build();
        assert_ne!(
            point_key(&spec, &spec.points[0]).digest_hex,
            point_key(&widened, &widened.points[0]).digest_hex
        );
        // Suite points' material is unchanged by the new axis (no
        // "generated" entry), so pre-existing caches keep hitting.
        let suite = test_spec();
        assert!(!point_key(&suite, &suite.points[0])
            .material
            .contains("generated"));
    }

    #[test]
    fn trace_identity_is_key_material() {
        use ltrf_trace::{LoweringBounds, TraceWorkloadId};

        let id = TraceWorkloadId {
            path: "examples/traces/straight_line.trace".to_string(),
            content_hash: "cbf29ce484222325".to_string(),
            bounds: LoweringBounds::default(),
        };
        let spec = SweepSpec::builder("trace-keys")
            .trace_population([id.clone()])
            .seed_mode(SeedMode::Fixed(1))
            .build();
        let a = point_key(&spec, &spec.points[0]);
        assert!(
            a.material.contains("\"trace\"") && a.material.contains("cbf29ce484222325"),
            "trace points serialize their identity: {}",
            a.material
        );
        // Same path, different content fingerprint: every digest changes.
        let edited = SweepSpec::builder("trace-keys")
            .trace_population([TraceWorkloadId {
                content_hash: "0000000000000000".to_string(),
                ..id.clone()
            }])
            .seed_mode(SeedMode::Fixed(1))
            .build();
        assert_ne!(
            point_key(&spec, &spec.points[0]).digest_hex,
            point_key(&edited, &edited.points[0]).digest_hex
        );
        // Tighter lowering bounds change the digest too.
        let bounded = SweepSpec::builder("trace-keys")
            .trace_population([id.with_bounds(LoweringBounds {
                max_dynamic_instructions: 1000,
                max_blocks: 64,
            })])
            .seed_mode(SeedMode::Fixed(1))
            .build();
        assert_ne!(
            point_key(&spec, &spec.points[0]).digest_hex,
            point_key(&bounded, &bounded.points[0]).digest_hex
        );
        // Suite points' material is unchanged by the trace axis.
        let suite = test_spec();
        assert!(!point_key(&suite, &suite.points[0])
            .material
            .contains("trace"));
    }

    #[test]
    fn store_load_round_trip() {
        let dir =
            std::env::temp_dir().join(format!("ltrf-sweep-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let spec = test_spec();
        let key = point_key(&spec, &spec.points[0]);
        assert!(cache.load::<f64>(&key).is_none());
        cache.store(&key, &1.25f64).unwrap();
        assert_eq!(cache.load::<f64>(&key), Some(1.25));
        assert_eq!(cache.len().unwrap(), 1);
        // Entries survive a reopen (the packed index is rebuilt from disk).
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.load::<f64>(&key), Some(1.25));
        // A corrupted segment is a miss, not an error.
        for entry in fs::read_dir(dir.join("segments"))
            .unwrap()
            .filter_map(Result::ok)
        {
            if entry.path().extension().is_some_and(|ext| ext == "pack") {
                fs::write(entry.path(), "garbage").unwrap();
            }
        }
        let corrupted = ResultCache::open(&dir).unwrap();
        assert!(corrupted.load::<f64>(&key).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_per_point_entries_still_hit() {
        let dir = std::env::temp_dir().join(format!("ltrf-cache-legacy-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let spec = test_spec();
        let key = point_key(&spec, &spec.points[0]);
        // Write an entry the way pre-packed releases did: one JSON file per
        // point, named by digest.
        let entry = CacheEntry {
            key_material: key.material.clone(),
            outcome: Serialize::to_value(&2.5f64),
        };
        fs::write(
            dir.join(format!("{}.json", key.digest_hex)),
            serde::to_json_string(&entry),
        )
        .unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(
            cache.load::<f64>(&key),
            Some(2.5),
            "old per-point entries must keep hitting"
        );
        assert_eq!(cache.len().unwrap(), 1);
        // A new store for the same digest goes to the packed store and
        // shadows the legacy file; len() deduplicates the digest.
        cache.store(&key, &3.5f64).unwrap();
        assert_eq!(cache.load::<f64>(&key), Some(3.5));
        assert_eq!(cache.len().unwrap(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
