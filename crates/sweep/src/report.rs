//! Structured campaign reporters: JSON (full fidelity) and CSV (flat, one
//! row per point, ready for plotting tools).

use std::fs;
use std::io;
use std::path::Path;

use crate::executor::{PointOutcome, PointRecord, SweepResults};
use crate::spec::MemorySelection;

/// Writes the full campaign as JSON.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_json(results: &SweepResults, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, serde::to_json_string(results))
}

/// Reads a campaign back from a JSON report.
///
/// # Errors
///
/// Returns an I/O error for unreadable files and `InvalidData` for files
/// that do not parse as a campaign.
pub fn read_json(path: impl AsRef<Path>) -> io::Result<SweepResults> {
    let text = fs::read_to_string(path)?;
    serde::from_json_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// The shared campaign-CSV schema, in column order — every campaign writes
/// exactly these columns (one row per point), so downstream tooling can
/// treat all artifact CSVs uniformly. The header row of [`to_csv`] and the
/// `sweep describe` output are both generated from this list, and
/// `REPRODUCING.md` documents each column's meaning.
pub const CSV_COLUMNS: [&str; 23] = [
    "workload",
    "gen_seed",
    "gen_index",
    "organization",
    "config_id",
    "latency_factor",
    "registers_per_interval",
    "active_warps",
    "sm_count",
    "memory",
    "seed",
    "status",
    "ipc",
    "normalized_ipc",
    "normalized_power",
    "power_mw",
    "energy_pj",
    "leakage_pj",
    "cache_hit_rate",
    "l2_hit_rate",
    "dram_row_hit_rate",
    "from_cache",
    "error",
];

fn memory_label(memory: MemorySelection) -> &'static str {
    match memory {
        MemorySelection::WorkloadDefault => "default",
        MemorySelection::Streaming => "streaming",
        MemorySelection::CacheResident => "cache_resident",
        MemorySelection::Irregular => "irregular",
    }
}

/// The CSV header row (no trailing newline): [`CSV_COLUMNS`] joined.
#[must_use]
pub fn csv_header() -> String {
    CSV_COLUMNS.join(",")
}

/// Renders one record as its CSV row (no trailing newline).
///
/// This is the single row renderer behind both [`to_csv`] (the batch path)
/// and the streaming
/// [`StreamingCsvWriter`](crate::stream::StreamingCsvWriter), so the two
/// emit byte-identical rows by construction.
#[must_use]
pub fn csv_row(record: &PointRecord) -> String {
    let point = &record.point;
    let (status, error) = match &record.outcome {
        PointOutcome::Ok(_) => ("ok", String::new()),
        PointOutcome::Error(e) => ("error", e.clone()),
        PointOutcome::Panicked(e) => ("panicked", e.clone()),
    };
    let data = record.outcome.data();
    let float = |v: Option<f64>| v.map(|f| format!("{f:.6}")).unwrap_or_default();
    let row = [
        csv_escape(&point.workload),
        point
            .generated
            .map(|g| g.population_seed.to_string())
            .unwrap_or_default(),
        point
            .generated
            .map(|g| g.index.to_string())
            .unwrap_or_default(),
        point.config.organization.label().to_string(),
        point.config.mrf_config.id.0.to_string(),
        format!("{:.3}", point.config.latency_factor()),
        point.config.registers_per_interval.to_string(),
        point.config.active_warps.to_string(),
        point.config.sm_count.to_string(),
        memory_label(point.memory).to_string(),
        record.seed.to_string(),
        status.to_string(),
        float(data.map(|d| d.result.ipc)),
        float(data.and_then(|d| d.normalized_ipc)),
        float(data.and_then(|d| d.normalized_power)),
        float(data.map(|d| d.result.power.average_power_mw)),
        float(data.map(|d| d.result.power.total_pj())),
        float(data.map(|d| d.result.power.leakage_pj)),
        float(data.and_then(|d| d.result.cache_hit_rate)),
        // The aggregate stats carry the shared structures' totals for
        // multi-SM points and the private LLC/DRAM for single-SM ones.
        float(data.map(|d| d.result.stats.memory.llc.hit_rate())),
        float(data.map(|d| d.result.stats.memory.dram.row_hit_rate())),
        record.from_cache.to_string(),
        csv_escape(&error),
    ];
    row.join(",")
}

/// Renders the campaign as CSV text.
///
/// Generated-population points fill the `gen_seed`/`gen_index` columns with
/// their population identity; suite points leave them empty. The
/// `power_mw`/`energy_pj`/`leakage_pj` columns carry the register-file
/// power model's absolute outputs (per-SM for multi-SM points) so the power
/// artifacts (Figure 10 and the `sweep power` design-point sweep) are fully
/// reconstructible from the CSV; `normalized_power` remains the paper's
/// baseline-relative reporting convention. `REPRODUCING.md` documents every
/// column.
///
/// Composed from [`csv_header`] and [`csv_row`]; campaigns too large to
/// retain their rows stream the same bytes through a
/// [`StreamingCsvWriter`](crate::stream::StreamingCsvWriter) instead.
#[must_use]
pub fn to_csv(results: &SweepResults) -> String {
    let mut out = csv_header();
    out.push('\n');
    for record in &results.records {
        out.push_str(&csv_row(record));
        out.push('\n');
    }
    out
}

/// Writes the campaign as CSV.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_csv(results: &SweepResults, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_csv(results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
