//! Structured campaign reporters: JSON (full fidelity) and CSV (flat, one
//! row per point, ready for plotting tools).

use std::fs;
use std::io;
use std::path::Path;

use crate::executor::{PointOutcome, PointRecord, SweepResults};
use crate::spec::MemorySelection;

/// Writes the full campaign as JSON.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_json(results: &SweepResults, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, serde::to_json_string(results))
}

/// Reads a campaign back from a JSON report.
///
/// # Errors
///
/// Returns an I/O error for unreadable files and `InvalidData` for files
/// that do not parse as a campaign.
pub fn read_json(path: impl AsRef<Path>) -> io::Result<SweepResults> {
    let text = fs::read_to_string(path)?;
    serde::from_json_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// The shared campaign-CSV schema, in column order — every campaign writes
/// exactly these columns (one row per point), so downstream tooling can
/// treat all artifact CSVs uniformly. The header row of [`to_csv`] and the
/// `sweep describe` output are both generated from this list, and
/// `REPRODUCING.md` documents each column's meaning.
pub const CSV_COLUMNS: [&str; 23] = [
    "workload",
    "gen_seed",
    "gen_index",
    "organization",
    "config_id",
    "latency_factor",
    "registers_per_interval",
    "active_warps",
    "sm_count",
    "memory",
    "seed",
    "status",
    "ipc",
    "normalized_ipc",
    "normalized_power",
    "power_mw",
    "energy_pj",
    "leakage_pj",
    "cache_hit_rate",
    "l2_hit_rate",
    "dram_row_hit_rate",
    "from_cache",
    "error",
];

/// Extra columns appended by [`CsvSchema::Interconnect`], after the 23
/// standard columns: the network configuration of the point and the
/// NoC/slice-contention statistics of its run. Multi-SM points fill the
/// stats from the shared memory; single-SM points (which never touch it)
/// report zeros.
pub const INTERCONNECT_CSV_COLUMNS: [&str; 10] = [
    "topology",
    "link_width",
    "queue_depth",
    "interleave",
    "l2_queue_wait_cycles",
    "l2_slice_wait_min",
    "l2_slice_wait_max",
    "noc_mean_latency",
    "noc_max_queue_wait",
    "noc_max_link_occupancy",
];

/// Which column set a campaign's CSV carries.
///
/// Every campaign has written exactly [`CSV_COLUMNS`] since the schema was
/// frozen (the fig9/fig12 golden fixtures pin those bytes), so extension
/// happens by *appending* columns behind an explicit schema choice rather
/// than editing the shared list. `Standard` is byte-identical to the
/// historical output; `Interconnect` appends [`INTERCONNECT_CSV_COLUMNS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CsvSchema {
    /// The frozen 23-column schema every pre-interconnect campaign writes.
    #[default]
    Standard,
    /// Standard plus the interconnect configuration/stats columns (the
    /// `sweep interconnect` campaign).
    Interconnect,
}

impl CsvSchema {
    /// The schema a spec's CSV should be written with: `interconnect`
    /// campaign specs (by name) and any spec whose points carry a
    /// non-default network get the extended columns.
    #[must_use]
    pub fn for_spec(spec: &crate::spec::SweepSpec) -> Self {
        let non_default = spec
            .points
            .iter()
            .any(|p| p.config.interconnect != ltrf_sim::InterconnectConfig::default());
        if spec.name.starts_with("interconnect") || non_default {
            CsvSchema::Interconnect
        } else {
            CsvSchema::Standard
        }
    }

    /// The header row for this schema (no trailing newline).
    #[must_use]
    pub fn header(self) -> String {
        match self {
            CsvSchema::Standard => CSV_COLUMNS.join(","),
            CsvSchema::Interconnect => {
                let mut header = CSV_COLUMNS.join(",");
                header.push(',');
                header.push_str(&INTERCONNECT_CSV_COLUMNS.join(","));
                header
            }
        }
    }

    /// Renders one record as its CSV row under this schema (no trailing
    /// newline).
    #[must_use]
    pub fn row(self, record: &PointRecord) -> String {
        let mut row = csv_row(record);
        if self == CsvSchema::Interconnect {
            let icn = &record.point.config.interconnect;
            let data = record.outcome.data();
            let memory = data.map(|d| d.result.stats.memory);
            let uint = |v: Option<u64>| v.map(|u| u.to_string()).unwrap_or_default();
            let extra = [
                icn.topology.label().to_string(),
                icn.link_width.to_string(),
                icn.queue_depth.to_string(),
                icn.interleave.label().to_string(),
                uint(memory.map(|m| m.l2_queue_wait_cycles)),
                uint(memory.map(|m| m.l2_slice_wait_min)),
                uint(memory.map(|m| m.l2_slice_wait_max)),
                memory
                    .map(|m| format!("{:.6}", m.noc.mean_latency()))
                    .unwrap_or_default(),
                uint(memory.map(|m| m.noc.max_queue_wait)),
                uint(memory.map(|m| m.noc.max_link_occupancy)),
            ];
            row.push(',');
            row.push_str(&extra.join(","));
        }
        row
    }
}

fn memory_label(memory: MemorySelection) -> &'static str {
    match memory {
        MemorySelection::WorkloadDefault => "default",
        MemorySelection::Streaming => "streaming",
        MemorySelection::CacheResident => "cache_resident",
        MemorySelection::Irregular => "irregular",
    }
}

/// The CSV header row (no trailing newline): [`CSV_COLUMNS`] joined.
#[must_use]
pub fn csv_header() -> String {
    CSV_COLUMNS.join(",")
}

/// Renders one record as its CSV row (no trailing newline).
///
/// This is the single row renderer behind both [`to_csv`] (the batch path)
/// and the streaming
/// [`StreamingCsvWriter`](crate::stream::StreamingCsvWriter), so the two
/// emit byte-identical rows by construction.
#[must_use]
pub fn csv_row(record: &PointRecord) -> String {
    let point = &record.point;
    let (status, error) = match &record.outcome {
        PointOutcome::Ok(_) => ("ok", String::new()),
        PointOutcome::Error(e) => ("error", e.clone()),
        PointOutcome::Panicked(e) => ("panicked", e.clone()),
    };
    let data = record.outcome.data();
    let float = |v: Option<f64>| v.map(|f| format!("{f:.6}")).unwrap_or_default();
    let row = [
        csv_escape(&point.workload),
        point
            .generated
            .map(|g| g.population_seed.to_string())
            .unwrap_or_default(),
        point
            .generated
            .map(|g| g.index.to_string())
            .unwrap_or_default(),
        point.config.organization.label().to_string(),
        point.config.mrf_config.id.0.to_string(),
        format!("{:.3}", point.config.latency_factor()),
        point.config.registers_per_interval.to_string(),
        point.config.active_warps.to_string(),
        point.config.sm_count.to_string(),
        memory_label(point.memory).to_string(),
        record.seed.to_string(),
        status.to_string(),
        float(data.map(|d| d.result.ipc)),
        float(data.and_then(|d| d.normalized_ipc)),
        float(data.and_then(|d| d.normalized_power)),
        float(data.map(|d| d.result.power.average_power_mw)),
        float(data.map(|d| d.result.power.total_pj())),
        float(data.map(|d| d.result.power.leakage_pj)),
        float(data.and_then(|d| d.result.cache_hit_rate)),
        // The aggregate stats carry the shared structures' totals for
        // multi-SM points and the private LLC/DRAM for single-SM ones.
        float(data.map(|d| d.result.stats.memory.llc.hit_rate())),
        float(data.map(|d| d.result.stats.memory.dram.row_hit_rate())),
        record.from_cache.to_string(),
        csv_escape(&error),
    ];
    row.join(",")
}

/// Renders the campaign as CSV text.
///
/// Generated-population points fill the `gen_seed`/`gen_index` columns with
/// their population identity; suite points leave them empty. The
/// `power_mw`/`energy_pj`/`leakage_pj` columns carry the register-file
/// power model's absolute outputs (per-SM for multi-SM points) so the power
/// artifacts (Figure 10 and the `sweep power` design-point sweep) are fully
/// reconstructible from the CSV; `normalized_power` remains the paper's
/// baseline-relative reporting convention. `REPRODUCING.md` documents every
/// column.
///
/// Composed from [`csv_header`] and [`csv_row`]; campaigns too large to
/// retain their rows stream the same bytes through a
/// [`StreamingCsvWriter`](crate::stream::StreamingCsvWriter) instead.
#[must_use]
pub fn to_csv(results: &SweepResults) -> String {
    let mut out = csv_header();
    out.push('\n');
    for record in &results.records {
        out.push_str(&csv_row(record));
        out.push('\n');
    }
    out
}

/// Writes the campaign as CSV.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_csv(results: &SweepResults, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_csv(results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn standard_schema_is_byte_identical_to_the_frozen_header() {
        // The fig9/fig12 golden fixtures pin these bytes; Standard must
        // never drift.
        assert_eq!(CsvSchema::Standard.header(), csv_header());
        assert_eq!(csv_header(), CSV_COLUMNS.join(","));
    }

    #[test]
    fn interconnect_schema_appends_without_touching_standard_columns() {
        let header = CsvSchema::Interconnect.header();
        assert!(header.starts_with(&csv_header()));
        let appended = header.strip_prefix(&csv_header()).unwrap();
        assert_eq!(appended, format!(",{}", INTERCONNECT_CSV_COLUMNS.join(",")));
        assert_eq!(
            header.split(',').count(),
            CSV_COLUMNS.len() + INTERCONNECT_CSV_COLUMNS.len()
        );
    }

    #[test]
    fn schema_selection_follows_name_and_network() {
        use crate::spec::SweepSpec;
        use ltrf_core::Organization;
        use ltrf_sim::{InterconnectConfig, Topology};
        let standard = SweepSpec::builder("fig9")
            .workloads(["hotspot"])
            .organizations([Organization::Ltrf])
            .build();
        assert_eq!(CsvSchema::for_spec(&standard), CsvSchema::Standard);
        let by_name = SweepSpec::builder("interconnect-ideal")
            .workloads(["hotspot"])
            .build();
        assert_eq!(CsvSchema::for_spec(&by_name), CsvSchema::Interconnect);
        let by_network = SweepSpec::builder("custom")
            .workloads(["hotspot"])
            .interconnect(InterconnectConfig::with_topology(Topology::Mesh2D))
            .build();
        assert_eq!(CsvSchema::for_spec(&by_network), CsvSchema::Interconnect);
    }
}
