//! The `sweep` CLI: reproduce the paper's headline experiments through the
//! parallel, cached campaign engine.
//!
//! ```text
//! sweep fig9         [OPTIONS]   six organizations × suite on configurations #6/#7
//! sweep fig11        [OPTIONS]   latency-tolerance matrix (orgs × latency factors)
//! sweep table2       [OPTIONS]   the seven design points, swept under BL and LTRF
//! sweep gpu-scale    [OPTIONS]   BL/LTRF full-GPU scaling over shared L2/DRAM
//! sweep gen-campaign [OPTIONS]   BL/LTRF over a seeded random kernel population
//!
//! OPTIONS:
//!   --quick             four-workload subset instead of the full suite
//!   --out DIR           report directory            (default: sweep-out)
//!   --cache DIR         result-cache directory      (default: .sweep-cache)
//!   --no-cache          disable the result cache
//!   --force             recompute even when cached
//!   --threads N         worker threads              (default: all cores)
//!   --per-point-seeds   derive a distinct seed per point instead of the
//!                       paper's fixed campaign seed
//!   --sm-count N        simulate N SMs sharing the L2/DRAM (fig9, fig11,
//!                       table2, gen-campaign; default 1, the classic
//!                       single-SM campaigns)
//!   --sm-counts A,B,..  the SM-count axis of gpu-scale (default 1,2,4,8)
//!
//! gen-campaign OPTIONS (generator bounds default to GeneratorConfig::default):
//!   --population N      population size             (default: 64)
//!   --seed S            population seed             (default: the campaign seed)
//!   --min-regs R / --max-regs R          registers-per-thread bounds
//!   --max-outer-trips N / --max-inner-trips N   loop trip-count bounds
//!   --max-body-alu N / --max-body-loads N       inner-loop body mix bounds
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use ltrf_core::Organization;
use ltrf_sweep::campaigns::{self, campaign_name, GenCampaignParams, FIG9_ORGS, GEN_CAMPAIGN_ORGS};
use ltrf_sweep::{
    report, run_sweep, ExecutorOptions, SeedMode, SweepResults, SweepSpec, CAMPAIGN_SEED,
};
use ltrf_tech::configs::RegFileConfig;
use ltrf_workloads::{GeneratorConfig, QUICK_SUBSET};

#[derive(Debug)]
struct CliOptions {
    quick: bool,
    out_dir: PathBuf,
    cache_dir: Option<PathBuf>,
    force: bool,
    threads: Option<usize>,
    per_point_seeds: bool,
    /// SM count applied to the fig9/fig11/table2/gen-campaign campaigns
    /// (`--sm-count`); `None` = the flag was not given (defaults to 1).
    sm_count: Option<usize>,
    /// The SM-count axis of the gpu-scale campaign (`--sm-counts`);
    /// `None` = the flag was not given (defaults to 1,2,4,8).
    sm_counts: Option<Vec<usize>>,
    /// Population size of gen-campaign (`--population`).
    population: Option<usize>,
    /// Population seed of gen-campaign (`--seed`).
    population_seed: Option<u64>,
    /// Generator-bound overrides of gen-campaign (each `None` keeps the
    /// corresponding `GeneratorConfig::default()` bound).
    min_regs: Option<u16>,
    max_regs: Option<u16>,
    max_outer_trips: Option<u32>,
    max_inner_trips: Option<u32>,
    max_body_alu: Option<usize>,
    max_body_loads: Option<usize>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            quick: false,
            out_dir: PathBuf::from("sweep-out"),
            cache_dir: Some(PathBuf::from(".sweep-cache")),
            force: false,
            threads: None,
            per_point_seeds: false,
            sm_count: None,
            sm_counts: None,
            population: None,
            population_seed: None,
            min_regs: None,
            max_regs: None,
            max_outer_trips: None,
            max_inner_trips: None,
            max_body_alu: None,
            max_body_loads: None,
        }
    }
}

fn usage() -> &'static str {
    "usage: sweep <fig9|fig11|table2|gpu-scale|gen-campaign> [--quick] [--out DIR] \
     [--cache DIR] [--no-cache] [--force] [--threads N] [--per-point-seeds] \
     [--sm-count N] [--sm-counts A,B,..] [--population N] [--seed S] \
     [--min-regs R] [--max-regs R] [--max-outer-trips N] [--max-inner-trips N] \
     [--max-body-alu N] [--max-body-loads N]"
}

/// Parses the value after a `--flag VALUE` pair.
fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

fn parse_options(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--no-cache" => options.cache_dir = None,
            "--force" => options.force = true,
            "--per-point-seeds" => options.per_point_seeds = true,
            "--out" => {
                options.out_dir = iter
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--out needs a directory")?;
            }
            "--cache" => {
                options.cache_dir = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or("--cache needs a directory")?,
                );
            }
            "--threads" => {
                let n: usize = parse_value("--threads", iter.next())?;
                options.threads = Some(n.max(1));
            }
            "--sm-count" => {
                let n: usize = parse_value("--sm-count", iter.next())?;
                options.sm_count = Some(n.max(1));
            }
            "--sm-counts" => {
                let list = iter.next().ok_or("--sm-counts needs a comma list")?;
                let counts: Result<Vec<usize>, _> =
                    list.split(',').map(|c| c.trim().parse::<usize>()).collect();
                let counts = counts.map_err(|e| format!("--sm-counts: {e}"))?;
                if counts.is_empty() || counts.contains(&0) {
                    return Err("--sm-counts needs positive counts".to_string());
                }
                options.sm_counts = Some(counts);
            }
            "--population" => options.population = Some(parse_value("--population", iter.next())?),
            "--seed" => options.population_seed = Some(parse_value("--seed", iter.next())?),
            "--min-regs" => options.min_regs = Some(parse_value("--min-regs", iter.next())?),
            "--max-regs" => options.max_regs = Some(parse_value("--max-regs", iter.next())?),
            "--max-outer-trips" => {
                options.max_outer_trips = Some(parse_value("--max-outer-trips", iter.next())?)
            }
            "--max-inner-trips" => {
                options.max_inner_trips = Some(parse_value("--max-inner-trips", iter.next())?)
            }
            "--max-body-alu" => {
                options.max_body_alu = Some(parse_value("--max-body-alu", iter.next())?)
            }
            "--max-body-loads" => {
                options.max_body_loads = Some(parse_value("--max-body-loads", iter.next())?)
            }
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let options = match parse_options(rest) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("sweep: {message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match command.as_str() {
        "fig9" => run_fig9(&options),
        "fig11" => run_fig11(&options),
        "table2" => run_table2(&options),
        "gpu-scale" => run_gpu_scale(&options),
        "gen-campaign" => run_gen_campaign(&options),
        other => {
            eprintln!("sweep: unknown command `{other}`\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sweep: {message}");
            ExitCode::FAILURE
        }
    }
}

fn seed_mode(options: &CliOptions) -> SeedMode {
    if options.per_point_seeds {
        SeedMode::PerPoint(CAMPAIGN_SEED)
    } else {
        SeedMode::Fixed(CAMPAIGN_SEED)
    }
}

/// The CLI's workload selection (`--quick` subset or the full evaluated
/// suite), as names — the single source of truth behind both
/// [`workload_axis`] and the campaigns-module constructors.
fn workload_names(options: &CliOptions) -> Vec<String> {
    if options.quick {
        QUICK_SUBSET.iter().map(|w| w.to_string()).collect()
    } else {
        ltrf_workloads::evaluated_suite()
            .iter()
            .map(|w| w.name().to_string())
            .collect()
    }
}

fn workload_axis(
    options: &CliOptions,
    builder: ltrf_sweep::SweepSpecBuilder,
) -> ltrf_sweep::SweepSpecBuilder {
    builder.workloads(workload_names(options))
}

/// The `--sm-count` value for a fig9/fig11/table2/gen-campaign run
/// (default 1), rejecting the gpu-scale-only `--sm-counts` flag so an axis
/// request is never silently ignored.
fn single_sm_count(options: &CliOptions) -> Result<usize, String> {
    if options.sm_counts.is_some() {
        return Err(
            "--sm-counts is the gpu-scale axis; use --sm-count N for this campaign".to_string(),
        );
    }
    Ok(options.sm_count.unwrap_or(1))
}

/// Rejects the gen-campaign-only flags on suite campaigns, so a generator
/// request is never silently ignored.
fn reject_generator_flags(options: &CliOptions, command: &str) -> Result<(), String> {
    let gen_flags: [(&str, bool); 8] = [
        ("--population", options.population.is_some()),
        ("--seed", options.population_seed.is_some()),
        ("--min-regs", options.min_regs.is_some()),
        ("--max-regs", options.max_regs.is_some()),
        ("--max-outer-trips", options.max_outer_trips.is_some()),
        ("--max-inner-trips", options.max_inner_trips.is_some()),
        ("--max-body-alu", options.max_body_alu.is_some()),
        ("--max-body-loads", options.max_body_loads.is_some()),
    ];
    if let Some((flag, _)) = gen_flags.iter().find(|(_, given)| *given) {
        return Err(format!(
            "{flag} configures the generated population; it does not apply to `{command}` \
             (use `sweep gen-campaign`)"
        ));
    }
    Ok(())
}

/// The `--sm-counts` axis for gpu-scale (default 1,2,4,8), rejecting the
/// per-figure `--sm-count` flag so a single-count request is never silently
/// ignored.
fn sm_count_axis(options: &CliOptions) -> Result<Vec<usize>, String> {
    if options.sm_count.is_some() {
        return Err(
            "--sm-count applies to fig9/fig11/table2; use --sm-counts A,B,.. for gpu-scale"
                .to_string(),
        );
    }
    Ok(options
        .sm_counts
        .clone()
        .unwrap_or_else(|| vec![1, 2, 4, 8]))
}

/// Runs a campaign, writes the JSON/CSV reports, prints the summary, and
/// hands the results back for figure-specific post-processing.
fn execute(spec: &SweepSpec, options: &CliOptions) -> Result<SweepResults, String> {
    let executor = ExecutorOptions {
        threads: options.threads,
        cache_dir: options.cache_dir.clone(),
        force_recompute: options.force,
    };
    println!(
        "campaign `{}`: {} points across {} threads",
        spec.name,
        spec.points.len(),
        options.threads.unwrap_or_else(ltrf_sweep::default_threads)
    );
    let started = Instant::now();
    let results = run_sweep(spec, &executor);
    let elapsed = started.elapsed();

    std::fs::create_dir_all(&options.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", options.out_dir.display()))?;
    let json_path = options.out_dir.join(format!("{}.json", spec.name));
    let csv_path = options.out_dir.join(format!("{}.csv", spec.name));
    report::write_json(&results, &json_path)
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    report::write_csv(&results, &csv_path)
        .map_err(|e| format!("writing {}: {e}", csv_path.display()))?;

    println!(
        "  {} computed, {} from cache ({:.0}% hit rate), {} failed, {:.2?} wall clock",
        results.computed_count(),
        results.cached_count(),
        results.cache_hit_rate() * 100.0,
        results.failure_count(),
        elapsed
    );
    println!(
        "  reports: {} and {}",
        json_path.display(),
        csv_path.display()
    );
    for record in results.records.iter().filter(|r| r.outcome.is_failure()) {
        eprintln!(
            "  FAILED {} / {} config {}: {:?}",
            record.point.workload,
            record.point.config.organization.label(),
            record.point.config.mrf_config.id,
            record.outcome
        );
    }
    Ok(results)
}

// ---------------------------------------------------------------------------
// fig9 — six organizations × the suite on configurations #6 and #7
// ---------------------------------------------------------------------------

fn run_fig9(options: &CliOptions) -> Result<(), String> {
    reject_generator_flags(options, "fig9")?;
    let sm_count = single_sm_count(options)?;
    // The canonical constructor (shared with the golden-file regression
    // test, which pins this campaign's CSV byte for byte).
    let spec = campaigns::fig9_spec(workload_names(options), sm_count, seed_mode(options));
    let results = execute(&spec, options)?;

    for config_id in [6u8, 7] {
        println!(
            "\nFigure 9{}: configuration #{config_id}, mean IPC normalized to baseline",
            if config_id == 6 { 'a' } else { 'b' }
        );
        // organization label → (sum, count)
        let mut by_org: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
        for (record, data) in results.successes() {
            if record.point.config.mrf_config.id.0 != config_id {
                continue;
            }
            let entry = by_org
                .entry(record.point.config.organization.label())
                .or_insert((0.0, 0));
            entry.0 += data.normalized_ipc.unwrap_or(0.0);
            entry.1 += 1;
        }
        for org in FIG9_ORGS {
            if let Some((sum, count)) = by_org.get(org.label()) {
                println!("  {:<14} {:.3}", org.label(), sum / *count as f64);
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// fig11 — maximum tolerable register-file latency
// ---------------------------------------------------------------------------

const FIG11_ORGS: [Organization; 4] = [
    Organization::Baseline,
    Organization::Rfc,
    Organization::Ltrf,
    Organization::LtrfPlus,
];

fn run_fig11(options: &CliOptions) -> Result<(), String> {
    reject_generator_flags(options, "fig11")?;
    let factors = ltrf_core::paper_latency_factors();
    let sm_count = single_sm_count(options)?;
    let spec = workload_axis(
        options,
        SweepSpec::builder(campaign_name("fig11", sm_count)),
    )
    .organizations(FIG11_ORGS)
    .config_ids([1])
    .latency_factors(factors.iter().map(|&f| Some(f)))
    .sm_counts([sm_count])
    .seed_mode(seed_mode(options))
    .normalize(false)
    .build();
    let results = execute(&spec, options)?;

    // The paper's default allowed IPC loss (§6.3).
    const ALLOWED_LOSS: f64 = 0.05;
    // (workload, org) → latency-factor bits → ipc
    let mut curves: BTreeMap<(String, Organization), BTreeMap<u64, f64>> = BTreeMap::new();
    for (record, data) in results.successes() {
        let factor = record.point.config.latency_factor();
        curves
            .entry((
                record.point.workload.clone(),
                record.point.config.organization,
            ))
            .or_default()
            .insert(factor.to_bits(), data.result.ipc);
    }
    println!("\nFigure 11: maximum tolerable latency at 5% IPC loss (mean over workloads)");
    let mut tolerance_by_org: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for ((_, org), curve) in &curves {
        let reference = curve.get(&1.0f64.to_bits()).copied().unwrap_or(0.0);
        if reference <= 0.0 {
            continue;
        }
        // Delegate the curve assembly and tolerance definition to the core
        // metric (shared with the `fig11` harness binary).
        let ipc_points: Vec<(f64, f64)> = curve
            .iter()
            .map(|(&bits, &ipc)| (f64::from_bits(bits), ipc))
            .collect();
        let Some(sweep) = ltrf_core::LatencySweep::from_ipc_points(*org, &ipc_points) else {
            continue;
        };
        let entry = tolerance_by_org.entry(org.label()).or_insert((0.0, 0));
        entry.0 += sweep.max_tolerable_latency(ALLOWED_LOSS);
        entry.1 += 1;
    }
    for org in FIG11_ORGS {
        if let Some((sum, count)) = tolerance_by_org.get(org.label()) {
            println!("  {:<8} {:.2}x", org.label(), sum / *count as f64);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// table2 — the seven design points, swept under BL and LTRF
// ---------------------------------------------------------------------------

fn run_table2(options: &CliOptions) -> Result<(), String> {
    reject_generator_flags(options, "table2")?;
    println!("Table 2: register-file design points (calibrated)");
    println!(
        "  {:<4} {:<10} {:>9} {:>8} {:>8} {:>9}",
        "id", "tech", "capacity", "area", "power", "latency"
    );
    for config in RegFileConfig::table2() {
        println!(
            "  {:<4} {:<10} {:>8.1}x {:>7.2}x {:>7.2}x {:>8.2}x",
            config.id.to_string(),
            config.technology.name(),
            config.capacity_factor,
            config.area_factor,
            config.power_factor,
            config.latency_factor
        );
    }

    let sm_count = single_sm_count(options)?;
    let spec = workload_axis(
        options,
        SweepSpec::builder(campaign_name("table2", sm_count)),
    )
    .organizations([Organization::Baseline, Organization::Ltrf])
    .config_ids(1..=7)
    .sm_counts([sm_count])
    .seed_mode(seed_mode(options))
    .normalize(true)
    .build();
    let results = execute(&spec, options)?;

    println!("\nMean normalized IPC per design point:");
    println!("  {:<4} {:>8} {:>8}", "id", "BL", "LTRF");
    for config_id in 1..=7u8 {
        let mean = |org: Organization| {
            let values: Vec<f64> = results
                .successes()
                .filter(|(r, _)| {
                    r.point.config.mrf_config.id.0 == config_id
                        && r.point.config.organization == org
                })
                .filter_map(|(_, d)| d.normalized_ipc)
                .collect();
            if values.is_empty() {
                f64::NAN
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            }
        };
        println!(
            "  #{config_id:<3} {:>8.3} {:>8.3}",
            mean(Organization::Baseline),
            mean(Organization::Ltrf)
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// gpu-scale — BL and LTRF across SM counts, contending for the shared L2/DRAM
// ---------------------------------------------------------------------------

fn run_gpu_scale(options: &CliOptions) -> Result<(), String> {
    reject_generator_flags(options, "gpu-scale")?;
    let sm_counts = sm_count_axis(options)?;
    let spec = workload_axis(options, SweepSpec::builder("gpu-scale"))
        .organizations([Organization::Baseline, Organization::Ltrf])
        .config_ids([6])
        .sm_counts(sm_counts.iter().copied())
        .seed_mode(seed_mode(options))
        .normalize(true)
        .build();
    let results = execute(&spec, options)?;

    println!(
        "\nGPU scaling on configuration #6 (grid weak-scaled with the SM count; \
         means over workloads):"
    );
    println!(
        "  {:<5} {:<6} {:>9} {:>9} {:>8} {:>9} {:>12}",
        "SMs", "org", "IPC", "IPC/SM", "norm", "L2 hit", "DRAM row-hit"
    );
    for (sm_count, org, means) in ltrf_sweep::PointMeans::grouped(
        &results,
        &sm_counts,
        &[Organization::Baseline, Organization::Ltrf],
    ) {
        println!(
            "  {:<5} {:<6} {:>9.3} {:>9.3} {:>8.3} {:>8.1}% {:>11.1}%",
            sm_count,
            org.label(),
            means.ipc,
            means.ipc / sm_count.max(1) as f64,
            means.normalized_ipc,
            means.l2_hit_rate * 100.0,
            means.dram_row_hit_rate * 100.0
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// gen-campaign — BL and LTRF over a seeded random kernel population
// ---------------------------------------------------------------------------

/// Assembles the generator bounds from the CLI overrides, with friendly
/// errors instead of the library's campaign-definition panics.
fn generator_config(options: &CliOptions) -> Result<GeneratorConfig, String> {
    let defaults = GeneratorConfig::default();
    let config = GeneratorConfig {
        min_regs: options.min_regs.unwrap_or(defaults.min_regs),
        max_regs: options.max_regs.unwrap_or(defaults.max_regs),
        max_outer_trips: options.max_outer_trips.unwrap_or(defaults.max_outer_trips),
        max_inner_trips: options.max_inner_trips.unwrap_or(defaults.max_inner_trips),
        max_body_alu: options.max_body_alu.unwrap_or(defaults.max_body_alu),
        max_body_loads: options.max_body_loads.unwrap_or(defaults.max_body_loads),
    };
    config
        .validate()
        .map_err(|complaint| format!("generator bounds: {complaint}"))?;
    Ok(config)
}

fn run_gen_campaign(options: &CliOptions) -> Result<(), String> {
    if options.quick {
        return Err(
            "--quick selects suite workloads; size a gen-campaign with --population N".to_string(),
        );
    }
    let sm_count = single_sm_count(options)?;
    let params = GenCampaignParams {
        population: options.population.unwrap_or(64),
        population_seed: options.population_seed.unwrap_or(CAMPAIGN_SEED),
        config: generator_config(options)?,
        sm_count,
        seed_mode: seed_mode(options),
    };
    if params.population == 0 {
        return Err("--population must be at least 1".to_string());
    }
    println!(
        "generated campaign: population {} from seed {} (regs {}..={}, trips <=({}x{}), \
         body <=({} alu, {} loads)), BL vs LTRF on configuration #6",
        params.population,
        params.population_seed,
        params.config.min_regs,
        params.config.max_regs,
        params.config.max_outer_trips,
        params.config.max_inner_trips,
        params.config.max_body_alu,
        params.config.max_body_loads
    );
    let spec = campaigns::gen_campaign_spec(&params);
    let results = execute(&spec, options)?;

    println!("\nPopulation means (IPC normalized to baseline on the same member):");
    println!(
        "  {:<6} {:>7} {:>9} {:>8} {:>9} {:>12}",
        "org", "points", "IPC", "norm", "L2 hit", "DRAM row-hit"
    );
    for (_, org, means) in
        ltrf_sweep::PointMeans::grouped(&results, &[sm_count], &GEN_CAMPAIGN_ORGS)
    {
        println!(
            "  {:<6} {:>7} {:>9.3} {:>8.3} {:>8.1}% {:>11.1}%",
            org.label(),
            means.count,
            means.ipc,
            means.normalized_ipc,
            means.l2_hit_rate * 100.0,
            means.dram_row_hit_rate * 100.0
        );
    }
    // Where LTRF wins and loses across the population (the tails are what a
    // fixed 14-benchmark suite cannot show).
    let mut ltrf_norms: Vec<(u32, f64)> = results
        .successes()
        .filter(|(r, _)| r.point.config.organization == Organization::Ltrf)
        .filter_map(|(r, d)| {
            let g = r.point.generated?;
            Some((g.index, d.normalized_ipc?))
        })
        .collect();
    if !ltrf_norms.is_empty() {
        ltrf_norms.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (worst_index, worst) = ltrf_norms[0];
        let (best_index, best) = *ltrf_norms.last().expect("non-empty");
        let wins = ltrf_norms.iter().filter(|(_, n)| *n > 1.0).count();
        println!(
            "  LTRF speeds up {wins}/{} members; member #{best_index} best ({best:.3}x), \
             member #{worst_index} worst ({worst:.3}x)",
            ltrf_norms.len()
        );
    }
    Ok(())
}
