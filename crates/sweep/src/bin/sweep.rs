//! The `sweep` CLI: reproduce the paper's headline experiments through the
//! parallel, cached campaign engine.
//!
//! ```text
//! sweep fig9         [OPTIONS]   six organizations × suite on configurations #6/#7
//! sweep fig11        [OPTIONS]   latency-tolerance matrix (orgs × latency factors)
//! sweep fig12        [OPTIONS]   LTRF latency sweep × registers per interval
//! sweep fig13        [OPTIONS]   LTRF latency sweep × active warps
//! sweep fig14        [OPTIONS]   latency sweep × register-caching scheme
//! sweep table2       [OPTIONS]   the seven design points, swept under BL and LTRF
//! sweep power        [OPTIONS]   RF power across all design points (fig10 = the #7 slice)
//! sweep repro        [OPTIONS]   the full paper-artifact set into one directory
//! sweep gpu-scale    [OPTIONS]   BL/LTRF full-GPU scaling over shared L2/DRAM
//! sweep gen-campaign [OPTIONS]   BL/LTRF over a seeded random kernel population
//!
//! OPTIONS:
//!   --quick             four-workload subset instead of the full suite
//!   --out DIR           report directory            (default: sweep-out)
//!   --cache DIR         result-cache directory      (default: .sweep-cache)
//!   --no-cache          disable the result cache
//!   --force             recompute even when cached
//!   --threads N         worker threads              (default: all cores)
//!   --per-point-seeds   derive a distinct seed per point instead of the
//!                       paper's fixed campaign seed
//!   --sm-count N        simulate N SMs sharing the L2/DRAM (every campaign
//!                       except gpu-scale; default 1, the classic
//!                       single-SM campaigns)
//!   --sm-counts A,B,..  the SM-count axis of gpu-scale (default 1,2,4,8)
//!
//! power OPTIONS (the power-model calibration; defaults reproduce the paper):
//!   --access-energy-pj E    per-access dynamic-energy anchor, in pJ
//!   --leakage-mw-per-kb L   static-power anchor, in mW per KB
//!   --dwm-write-penalty P   DWM write/read energy ratio
//!
//! gen-campaign OPTIONS (generator bounds default to GeneratorConfig::default):
//!   --population N      population size             (default: 64)
//!   --seed S            population seed             (default: the campaign seed)
//!   --min-regs R / --max-regs R          registers-per-thread bounds
//!   --max-outer-trips N / --max-inner-trips N   loop trip-count bounds
//!   --max-body-alu N / --max-body-loads N       inner-loop body mix bounds
//! ```
//!
//! Each subcommand accepts only its own scoped flags — a flag given to the
//! wrong subcommand is rejected with a pointer to the right one rather than
//! silently ignored (the `enforce_flag_scopes` table). `REPRODUCING.md`
//! maps every paper artifact to its command, runtime, and CSV schema.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use ltrf_core::Organization;
use ltrf_sweep::campaigns::{
    self, GenCampaignParams, FIG11_ORGS, FIG9_ORGS, GEN_CAMPAIGN_ORGS, POWER_ORGS,
};
use ltrf_sweep::{
    report, run_sweep, ExecutorOptions, PointRecord, SeedMode, SweepResults, SweepSpec,
    CAMPAIGN_SEED,
};
use ltrf_tech::configs::RegFileConfig;
use ltrf_tech::PowerParams;
use ltrf_workloads::{GeneratorConfig, QUICK_SUBSET};

#[derive(Debug)]
struct CliOptions {
    quick: bool,
    out_dir: PathBuf,
    cache_dir: Option<PathBuf>,
    force: bool,
    threads: Option<usize>,
    per_point_seeds: bool,
    /// SM count applied to the fig9/fig11/table2/gen-campaign campaigns
    /// (`--sm-count`); `None` = the flag was not given (defaults to 1).
    sm_count: Option<usize>,
    /// The SM-count axis of the gpu-scale campaign (`--sm-counts`);
    /// `None` = the flag was not given (defaults to 1,2,4,8).
    sm_counts: Option<Vec<usize>>,
    /// Population size of gen-campaign (`--population`).
    population: Option<usize>,
    /// Population seed of gen-campaign (`--seed`).
    population_seed: Option<u64>,
    /// Generator-bound overrides of gen-campaign (each `None` keeps the
    /// corresponding `GeneratorConfig::default()` bound).
    min_regs: Option<u16>,
    max_regs: Option<u16>,
    max_outer_trips: Option<u32>,
    max_inner_trips: Option<u32>,
    max_body_alu: Option<usize>,
    max_body_loads: Option<usize>,
    /// Power-model calibration overrides of `power` (each `None` keeps the
    /// corresponding `PowerParams::default()` knob).
    access_energy_pj: Option<f64>,
    leakage_mw_per_kb: Option<f64>,
    dwm_write_penalty: Option<f64>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            quick: false,
            out_dir: PathBuf::from("sweep-out"),
            cache_dir: Some(PathBuf::from(".sweep-cache")),
            force: false,
            threads: None,
            per_point_seeds: false,
            sm_count: None,
            sm_counts: None,
            population: None,
            population_seed: None,
            min_regs: None,
            max_regs: None,
            max_outer_trips: None,
            max_inner_trips: None,
            max_body_alu: None,
            max_body_loads: None,
            access_energy_pj: None,
            leakage_mw_per_kb: None,
            dwm_write_penalty: None,
        }
    }
}

fn usage() -> &'static str {
    "usage: sweep <fig9|fig11|fig12|fig13|fig14|table2|power|repro|gpu-scale|gen-campaign> \
     [--quick] [--out DIR] [--cache DIR] [--no-cache] [--force] [--threads N] \
     [--per-point-seeds] [--sm-count N] [--sm-counts A,B,..] \
     [--access-energy-pj E] [--leakage-mw-per-kb L] [--dwm-write-penalty P] \
     [--population N] [--seed S] \
     [--min-regs R] [--max-regs R] [--max-outer-trips N] [--max-inner-trips N] \
     [--max-body-alu N] [--max-body-loads N]"
}

/// Parses the value after a `--flag VALUE` pair.
fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

fn parse_options(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--no-cache" => options.cache_dir = None,
            "--force" => options.force = true,
            "--per-point-seeds" => options.per_point_seeds = true,
            "--out" => {
                options.out_dir = iter
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--out needs a directory")?;
            }
            "--cache" => {
                options.cache_dir = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or("--cache needs a directory")?,
                );
            }
            "--threads" => {
                let n: usize = parse_value("--threads", iter.next())?;
                options.threads = Some(n.max(1));
            }
            "--sm-count" => {
                let n: usize = parse_value("--sm-count", iter.next())?;
                options.sm_count = Some(n.max(1));
            }
            "--sm-counts" => {
                let list = iter.next().ok_or("--sm-counts needs a comma list")?;
                let counts: Result<Vec<usize>, _> =
                    list.split(',').map(|c| c.trim().parse::<usize>()).collect();
                let counts = counts.map_err(|e| format!("--sm-counts: {e}"))?;
                if counts.is_empty() || counts.contains(&0) {
                    return Err("--sm-counts needs positive counts".to_string());
                }
                options.sm_counts = Some(counts);
            }
            "--population" => options.population = Some(parse_value("--population", iter.next())?),
            "--seed" => options.population_seed = Some(parse_value("--seed", iter.next())?),
            "--min-regs" => options.min_regs = Some(parse_value("--min-regs", iter.next())?),
            "--max-regs" => options.max_regs = Some(parse_value("--max-regs", iter.next())?),
            "--max-outer-trips" => {
                options.max_outer_trips = Some(parse_value("--max-outer-trips", iter.next())?)
            }
            "--max-inner-trips" => {
                options.max_inner_trips = Some(parse_value("--max-inner-trips", iter.next())?)
            }
            "--max-body-alu" => {
                options.max_body_alu = Some(parse_value("--max-body-alu", iter.next())?)
            }
            "--max-body-loads" => {
                options.max_body_loads = Some(parse_value("--max-body-loads", iter.next())?)
            }
            "--access-energy-pj" => {
                options.access_energy_pj = Some(parse_value("--access-energy-pj", iter.next())?)
            }
            "--leakage-mw-per-kb" => {
                options.leakage_mw_per_kb = Some(parse_value("--leakage-mw-per-kb", iter.next())?)
            }
            "--dwm-write-penalty" => {
                options.dwm_write_penalty = Some(parse_value("--dwm-write-penalty", iter.next())?)
            }
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    Ok(options)
}

// ---------------------------------------------------------------------------
// Flag scoping — every subcommand accepts only its own flags
// ---------------------------------------------------------------------------

/// Every `sweep` subcommand, in help order.
const COMMANDS: [&str; 10] = [
    "fig9",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table2",
    "power",
    "repro",
    "gpu-scale",
    "gen-campaign",
];

/// The campaigns that take a single `--sm-count` (everything except the
/// `gpu-scale` axis campaign).
const SINGLE_SM_COMMANDS: [&str; 9] = [
    "fig9",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table2",
    "power",
    "repro",
    "gen-campaign",
];

/// The campaigns whose workload axis `--quick` subsets (everything except
/// `gen-campaign`, which is sized by `--population` instead).
const SUITE_COMMANDS: [&str; 9] = [
    "fig9",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table2",
    "power",
    "repro",
    "gpu-scale",
];

/// A flag together with the subcommands it applies to: whether this
/// invocation gave it, and what to tell the user when it lands on the wrong
/// subcommand.
struct FlagScope {
    /// The flag as typed.
    flag: &'static str,
    /// Whether the parsed options carry it.
    given: bool,
    /// The subcommands it applies to.
    commands: &'static [&'static str],
    /// Appended to the rejection, pointing at the right usage.
    hint: &'static str,
}

/// The scope table: one row per subcommand-specific flag. Globally
/// applicable flags (`--out`, `--cache`, `--no-cache`, `--force`,
/// `--threads`, `--per-point-seeds`) are deliberately absent.
fn flag_scopes(options: &CliOptions) -> Vec<FlagScope> {
    const GEN_HINT: &str = "it configures the generated population (use `sweep gen-campaign`)";
    const POWER_HINT: &str = "it recalibrates the power model (use `sweep power`)";
    let scope = |flag, given, commands, hint| FlagScope {
        flag,
        given,
        commands,
        hint,
    };
    vec![
        scope(
            "--quick",
            options.quick,
            &SUITE_COMMANDS,
            "size a gen-campaign with --population N instead",
        ),
        scope(
            "--sm-count",
            options.sm_count.is_some(),
            &SINGLE_SM_COMMANDS,
            "use --sm-counts A,B,.. for the gpu-scale axis",
        ),
        scope(
            "--sm-counts",
            options.sm_counts.is_some(),
            &["gpu-scale"],
            "use --sm-count N for a single-count campaign",
        ),
        scope(
            "--population",
            options.population.is_some(),
            &["gen-campaign"],
            GEN_HINT,
        ),
        scope(
            "--seed",
            options.population_seed.is_some(),
            &["gen-campaign"],
            GEN_HINT,
        ),
        scope(
            "--min-regs",
            options.min_regs.is_some(),
            &["gen-campaign"],
            GEN_HINT,
        ),
        scope(
            "--max-regs",
            options.max_regs.is_some(),
            &["gen-campaign"],
            GEN_HINT,
        ),
        scope(
            "--max-outer-trips",
            options.max_outer_trips.is_some(),
            &["gen-campaign"],
            GEN_HINT,
        ),
        scope(
            "--max-inner-trips",
            options.max_inner_trips.is_some(),
            &["gen-campaign"],
            GEN_HINT,
        ),
        scope(
            "--max-body-alu",
            options.max_body_alu.is_some(),
            &["gen-campaign"],
            GEN_HINT,
        ),
        scope(
            "--max-body-loads",
            options.max_body_loads.is_some(),
            &["gen-campaign"],
            GEN_HINT,
        ),
        scope(
            "--access-energy-pj",
            options.access_energy_pj.is_some(),
            &["power"],
            POWER_HINT,
        ),
        scope(
            "--leakage-mw-per-kb",
            options.leakage_mw_per_kb.is_some(),
            &["power"],
            POWER_HINT,
        ),
        scope(
            "--dwm-write-penalty",
            options.dwm_write_penalty.is_some(),
            &["power"],
            POWER_HINT,
        ),
    ]
}

/// Rejects any given flag whose scope excludes `command`, so a request is
/// never silently ignored. Called once from `main` for every subcommand —
/// the uniform replacement for the per-subcommand rejection helpers the
/// `--sm-count`/`--sm-counts` split introduced.
fn enforce_flag_scopes(options: &CliOptions, command: &str) -> Result<(), String> {
    for scope in flag_scopes(options) {
        if scope.given && !scope.commands.contains(&command) {
            return Err(format!(
                "{} does not apply to `{command}` (it applies to {}); {}",
                scope.flag,
                scope.commands.join("/"),
                scope.hint
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    if !COMMANDS.contains(&command.as_str()) {
        eprintln!("sweep: unknown command `{command}`\n{}", usage());
        return ExitCode::FAILURE;
    }
    let options = match parse_options(rest) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("sweep: {message}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(message) = enforce_flag_scopes(&options, command) {
        eprintln!("sweep: {message}");
        return ExitCode::FAILURE;
    }
    let outcome = match command.as_str() {
        "fig9" => run_fig9(&options),
        "fig11" => run_fig11(&options),
        "fig12" => run_fig12(&options),
        "fig13" => run_fig13(&options),
        "fig14" => run_fig14(&options),
        "table2" => run_table2(&options),
        "power" => run_power(&options),
        "repro" => run_repro(&options),
        "gpu-scale" => run_gpu_scale(&options),
        "gen-campaign" => run_gen_campaign(&options),
        _ => unreachable!("COMMANDS is exhaustive"),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sweep: {message}");
            ExitCode::FAILURE
        }
    }
}

fn seed_mode(options: &CliOptions) -> SeedMode {
    if options.per_point_seeds {
        SeedMode::PerPoint(CAMPAIGN_SEED)
    } else {
        SeedMode::Fixed(CAMPAIGN_SEED)
    }
}

/// The CLI's workload selection (`--quick` subset or the full evaluated
/// suite), as names — the single source of truth behind both
/// [`workload_axis`] and the campaigns-module constructors.
fn workload_names(options: &CliOptions) -> Vec<String> {
    if options.quick {
        QUICK_SUBSET.iter().map(|w| w.to_string()).collect()
    } else {
        ltrf_workloads::evaluated_suite()
            .iter()
            .map(|w| w.name().to_string())
            .collect()
    }
}

fn workload_axis(
    options: &CliOptions,
    builder: ltrf_sweep::SweepSpecBuilder,
) -> ltrf_sweep::SweepSpecBuilder {
    builder.workloads(workload_names(options))
}

/// The `--sm-count` value for a single-count campaign (default 1). Scope
/// enforcement already happened in `main`, so this is a plain default.
fn single_sm_count(options: &CliOptions) -> usize {
    options.sm_count.unwrap_or(1)
}

/// The `--sm-counts` axis for gpu-scale (default 1,2,4,8).
fn sm_count_axis(options: &CliOptions) -> Vec<usize> {
    options
        .sm_counts
        .clone()
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Cache-hit percentage as an integer floor: "100" only when literally
/// every point was a hit — the CI smoke jobs grep for it, and `{:.0}`
/// rounding would report 100% at 293/294.
fn floored_hit_percent(cached: usize, total: usize) -> usize {
    (cached * 100).checked_div(total).unwrap_or(0)
}

/// Runs a campaign, writes the JSON/CSV reports, prints the summary, and
/// hands the results back for figure-specific post-processing.
fn execute(spec: &SweepSpec, options: &CliOptions) -> Result<SweepResults, String> {
    let executor = ExecutorOptions {
        threads: options.threads,
        cache_dir: options.cache_dir.clone(),
        force_recompute: options.force,
    };
    println!(
        "campaign `{}`: {} points across {} threads",
        spec.name,
        spec.points.len(),
        options.threads.unwrap_or_else(ltrf_sweep::default_threads)
    );
    let started = Instant::now();
    let results = run_sweep(spec, &executor);
    let elapsed = started.elapsed();

    std::fs::create_dir_all(&options.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", options.out_dir.display()))?;
    let json_path = options.out_dir.join(format!("{}.json", spec.name));
    let csv_path = options.out_dir.join(format!("{}.csv", spec.name));
    report::write_json(&results, &json_path)
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    report::write_csv(&results, &csv_path)
        .map_err(|e| format!("writing {}: {e}", csv_path.display()))?;

    let rate = floored_hit_percent(results.cached_count(), results.len());
    println!(
        "  {} computed, {} from cache ({rate}% hit rate), {} failed, {:.2?} wall clock",
        results.computed_count(),
        results.cached_count(),
        results.failure_count(),
        elapsed
    );
    println!(
        "  reports: {} and {}",
        json_path.display(),
        csv_path.display()
    );
    for record in results.records.iter().filter(|r| r.outcome.is_failure()) {
        eprintln!(
            "  FAILED {} / {} config {}: {:?}",
            record.point.workload,
            record.point.config.organization.label(),
            record.point.config.mrf_config.id,
            record.outcome
        );
    }
    Ok(results)
}

// ---------------------------------------------------------------------------
// fig9 — six organizations × the suite on configurations #6 and #7
// ---------------------------------------------------------------------------

fn run_fig9(options: &CliOptions) -> Result<(), String> {
    let sm_count = single_sm_count(options);
    // The canonical constructor (shared with the golden-file regression
    // test, which pins this campaign's CSV byte for byte).
    let spec = campaigns::fig9_spec(workload_names(options), sm_count, seed_mode(options));
    let results = execute(&spec, options)?;

    for config_id in [6u8, 7] {
        println!(
            "\nFigure 9{}: configuration #{config_id}, mean IPC normalized to baseline",
            if config_id == 6 { 'a' } else { 'b' }
        );
        // organization label → (sum, count)
        let mut by_org: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
        for (record, data) in results.successes() {
            if record.point.config.mrf_config.id.0 != config_id {
                continue;
            }
            let entry = by_org
                .entry(record.point.config.organization.label())
                .or_insert((0.0, 0));
            entry.0 += data.normalized_ipc.unwrap_or(0.0);
            entry.1 += 1;
        }
        for org in FIG9_ORGS {
            if let Some((sum, count)) = by_org.get(org.label()) {
                println!("  {:<14} {:.3}", org.label(), sum / *count as f64);
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// fig11 — maximum tolerable register-file latency
// ---------------------------------------------------------------------------

fn run_fig11(options: &CliOptions) -> Result<(), String> {
    let sm_count = single_sm_count(options);
    // The canonical constructor (shared with the `fig11` harness binary).
    let spec = campaigns::fig11_spec(workload_names(options), sm_count, seed_mode(options));
    let results = execute(&spec, options)?;

    // The paper's default allowed IPC loss (§6.3).
    const ALLOWED_LOSS: f64 = 0.05;
    // (workload, org) → latency-factor bits → ipc
    let mut curves: BTreeMap<(String, Organization), BTreeMap<u64, f64>> = BTreeMap::new();
    for (record, data) in results.successes() {
        let factor = record.point.config.latency_factor();
        curves
            .entry((
                record.point.workload.clone(),
                record.point.config.organization,
            ))
            .or_default()
            .insert(factor.to_bits(), data.result.ipc);
    }
    println!("\nFigure 11: maximum tolerable latency at 5% IPC loss (mean over workloads)");
    let mut tolerance_by_org: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for ((_, org), curve) in &curves {
        let reference = curve.get(&1.0f64.to_bits()).copied().unwrap_or(0.0);
        if reference <= 0.0 {
            continue;
        }
        // Delegate the curve assembly and tolerance definition to the core
        // metric (shared with the `fig11` harness binary).
        let ipc_points: Vec<(f64, f64)> = curve
            .iter()
            .map(|(&bits, &ipc)| (f64::from_bits(bits), ipc))
            .collect();
        let Some(sweep) = ltrf_core::LatencySweep::from_ipc_points(*org, &ipc_points) else {
            continue;
        };
        let entry = tolerance_by_org.entry(org.label()).or_insert((0.0, 0));
        entry.0 += sweep.max_tolerable_latency(ALLOWED_LOSS);
        entry.1 += 1;
    }
    for org in FIG11_ORGS {
        if let Some((sum, count)) = tolerance_by_org.get(org.label()) {
            println!("  {:<8} {:.2}x", org.label(), sum / *count as f64);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// fig12/fig13/fig14 — latency sweeps over design parameters and schemes
// ---------------------------------------------------------------------------

/// One summary row of a latency-sweep campaign: a label and the predicate
/// selecting the series' points.
type LatencySeries<'a> = (String, Box<dyn Fn(&PointRecord) -> bool + 'a>);

/// Prints a latency-sweep summary table: one row per series, one column per
/// latency factor, via the engine's canonical
/// [`ltrf_sweep::relative_ipc_series`] aggregation (the CSV report carries
/// the raw per-point rows).
fn print_latency_series(results: &SweepResults, factors: &[f64], series: &[LatencySeries<'_>]) {
    print!("  {:<22}", "Series");
    for factor in factors {
        print!(" {factor:>5.0}x");
    }
    println!();
    for (label, select) in series {
        match ltrf_sweep::relative_ipc_series(results, factors, select.as_ref()) {
            Some(means) => {
                print!("  {label:<22}");
                for mean in means {
                    print!(" {mean:>6.2}");
                }
                println!();
            }
            None => println!("  {label:<22} (no complete curves)"),
        }
    }
}

fn run_fig12(options: &CliOptions) -> Result<(), String> {
    let sm_count = single_sm_count(options);
    // The canonical constructor (shared with the golden-file regression
    // test, which pins this campaign's CSV byte for byte, and with the
    // `fig12` harness binary).
    let spec = campaigns::fig12_spec(workload_names(options), sm_count, seed_mode(options));
    let results = execute(&spec, options)?;
    let factors = ltrf_core::paper_latency_factors();
    println!(
        "\nFigure 12: LTRF IPC (relative to the 1x point) vs. MRF latency, \
         by registers per register-interval"
    );
    let series: Vec<LatencySeries> = campaigns::FIG12_INTERVAL_SIZES
        .into_iter()
        .map(|n| {
            (
                format!("{n} regs"),
                Box::new(move |r: &PointRecord| r.point.config.registers_per_interval == n)
                    as Box<dyn Fn(&PointRecord) -> bool>,
            )
        })
        .collect();
    print_latency_series(&results, &factors, &series);
    Ok(())
}

fn run_fig13(options: &CliOptions) -> Result<(), String> {
    let sm_count = single_sm_count(options);
    let spec = campaigns::fig13_spec(workload_names(options), sm_count, seed_mode(options));
    let results = execute(&spec, options)?;
    let factors = ltrf_core::paper_latency_factors();
    println!("\nFigure 13: LTRF IPC (relative to the 1x point) vs. MRF latency, by active warps");
    let series: Vec<LatencySeries> = campaigns::FIG13_WARP_COUNTS
        .into_iter()
        .map(|warps| {
            (
                format!("{warps} warps"),
                Box::new(move |r: &PointRecord| r.point.config.active_warps == warps)
                    as Box<dyn Fn(&PointRecord) -> bool>,
            )
        })
        .collect();
    print_latency_series(&results, &factors, &series);
    Ok(())
}

fn run_fig14(options: &CliOptions) -> Result<(), String> {
    let sm_count = single_sm_count(options);
    let spec = campaigns::fig14_spec(workload_names(options), sm_count, seed_mode(options));
    let results = execute(&spec, options)?;
    let factors = ltrf_core::paper_latency_factors();
    println!("\nFigure 14: IPC (relative to each scheme's 1x point) vs. MRF latency, by scheme");
    let series: Vec<LatencySeries> = campaigns::FIG14_ORGS
        .into_iter()
        .map(|org| {
            (
                org.label().to_string(),
                Box::new(move |r: &PointRecord| r.point.config.organization == org)
                    as Box<dyn Fn(&PointRecord) -> bool>,
            )
        })
        .collect();
    print_latency_series(&results, &factors, &series);
    Ok(())
}

// ---------------------------------------------------------------------------
// power — register-file power across every Table 2 design point
// ---------------------------------------------------------------------------

/// Assembles the power-model calibration from the CLI overrides, with
/// friendly errors instead of the library's campaign-definition panics.
fn power_calibration(options: &CliOptions) -> Result<PowerParams, String> {
    let defaults = PowerParams::default();
    let params = PowerParams {
        base_access_pj: options.access_energy_pj.unwrap_or(defaults.base_access_pj),
        base_leakage_mw_per_kb: options
            .leakage_mw_per_kb
            .unwrap_or(defaults.base_leakage_mw_per_kb),
        dwm_write_penalty: options
            .dwm_write_penalty
            .unwrap_or(defaults.dwm_write_penalty),
    };
    params.validate().map_err(|complaint| {
        // The library complains in field names; translate to the CLI flags.
        let complaint = complaint
            .replace("base_access_pj", "--access-energy-pj")
            .replace("base_leakage_mw_per_kb", "--leakage-mw-per-kb")
            .replace("dwm_write_penalty", "--dwm-write-penalty");
        format!("power calibration: {complaint}")
    })?;
    Ok(params)
}

fn run_power(options: &CliOptions) -> Result<(), String> {
    let sm_count = single_sm_count(options);
    let params = power_calibration(options)?;
    println!(
        "power sweep: RFC/LTRF/LTRF+ on configurations #1..#7, normalized to baseline \
         (calibration: {} pJ/access, {} mW/KB leakage, {}x DWM write penalty)",
        params.base_access_pj, params.base_leakage_mw_per_kb, params.dwm_write_penalty
    );
    let spec = campaigns::power_sweep_spec(
        workload_names(options),
        sm_count,
        seed_mode(options),
        params,
    );
    let results = execute(&spec, options)?;

    println!("\nMean normalized register-file power per design point (suite mean):");
    print!("  {:<4}", "id");
    for org in POWER_ORGS {
        print!(" {:>8}", org.label());
    }
    println!();
    for config_id in 1..=7u8 {
        print!("  #{config_id:<3}");
        for org in POWER_ORGS {
            let values: Vec<f64> = results
                .successes()
                .filter(|(r, _)| {
                    r.point.config.mrf_config.id.0 == config_id
                        && r.point.config.organization == org
                })
                .filter_map(|(_, d)| d.normalized_power)
                .collect();
            let mean = if values.is_empty() {
                f64::NAN
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            };
            print!(" {mean:>8.3}");
        }
        println!();
    }
    println!(
        "  (the configuration #7 row is Figure 10; the paper reports 0.65 / 0.65 / 0.54 there)"
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// repro — the full paper-artifact set into one directory
// ---------------------------------------------------------------------------

fn run_repro(options: &CliOptions) -> Result<(), String> {
    let sm_count = single_sm_count(options);
    let workloads = workload_names(options);
    let specs = campaigns::repro_specs(&workloads, sm_count, seed_mode(options));
    println!(
        "repro: {} campaigns over {} workload(s){} into {}",
        specs.len(),
        workloads.len(),
        if options.quick { " (--quick)" } else { "" },
        options.out_dir.display()
    );
    let mut points = 0usize;
    let mut cached = 0usize;
    let mut failed = 0usize;
    let mut artifacts = Vec::new();
    for spec in &specs {
        println!();
        let results = execute(spec, options)?;
        points += results.len();
        cached += results.cached_count();
        failed += results.failure_count();
        artifacts.push(format!("{}.csv", spec.name));
    }
    let rate = floored_hit_percent(cached, points);
    println!(
        "\nrepro total: {points} points across {} campaigns, {cached} from cache \
         ({rate}% hit rate), {failed} failed",
        specs.len()
    );
    println!(
        "artifacts in {}: {} (plus the matching .json reports); \
         see REPRODUCING.md for the figure-by-figure atlas",
        options.out_dir.display(),
        artifacts.join(", ")
    );
    if failed > 0 {
        return Err(format!("{failed} repro point(s) failed"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// table2 — the seven design points, swept under BL and LTRF
// ---------------------------------------------------------------------------

fn run_table2(options: &CliOptions) -> Result<(), String> {
    println!("Table 2: register-file design points (calibrated)");
    println!(
        "  {:<4} {:<10} {:>9} {:>8} {:>8} {:>9}",
        "id", "tech", "capacity", "area", "power", "latency"
    );
    for config in RegFileConfig::table2() {
        println!(
            "  {:<4} {:<10} {:>8.1}x {:>7.2}x {:>7.2}x {:>8.2}x",
            config.id.to_string(),
            config.technology.name(),
            config.capacity_factor,
            config.area_factor,
            config.power_factor,
            config.latency_factor
        );
    }

    let sm_count = single_sm_count(options);
    // The canonical constructor (its configuration #6/#7 BL/LTRF points are
    // the same cache entries fig9 computes).
    let spec = campaigns::table2_spec(workload_names(options), sm_count, seed_mode(options));
    let results = execute(&spec, options)?;

    println!("\nMean normalized IPC per design point:");
    println!("  {:<4} {:>8} {:>8}", "id", "BL", "LTRF");
    for config_id in 1..=7u8 {
        let mean = |org: Organization| {
            let values: Vec<f64> = results
                .successes()
                .filter(|(r, _)| {
                    r.point.config.mrf_config.id.0 == config_id
                        && r.point.config.organization == org
                })
                .filter_map(|(_, d)| d.normalized_ipc)
                .collect();
            if values.is_empty() {
                f64::NAN
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            }
        };
        println!(
            "  #{config_id:<3} {:>8.3} {:>8.3}",
            mean(Organization::Baseline),
            mean(Organization::Ltrf)
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// gpu-scale — BL and LTRF across SM counts, contending for the shared L2/DRAM
// ---------------------------------------------------------------------------

fn run_gpu_scale(options: &CliOptions) -> Result<(), String> {
    let sm_counts = sm_count_axis(options);
    let spec = workload_axis(options, SweepSpec::builder("gpu-scale"))
        .organizations([Organization::Baseline, Organization::Ltrf])
        .config_ids([6])
        .sm_counts(sm_counts.iter().copied())
        .seed_mode(seed_mode(options))
        .normalize(true)
        .build();
    let results = execute(&spec, options)?;

    println!(
        "\nGPU scaling on configuration #6 (grid weak-scaled with the SM count; \
         means over workloads):"
    );
    println!(
        "  {:<5} {:<6} {:>9} {:>9} {:>8} {:>9} {:>12}",
        "SMs", "org", "IPC", "IPC/SM", "norm", "L2 hit", "DRAM row-hit"
    );
    for (sm_count, org, means) in ltrf_sweep::PointMeans::grouped(
        &results,
        &sm_counts,
        &[Organization::Baseline, Organization::Ltrf],
    ) {
        println!(
            "  {:<5} {:<6} {:>9.3} {:>9.3} {:>8.3} {:>8.1}% {:>11.1}%",
            sm_count,
            org.label(),
            means.ipc,
            means.ipc / sm_count.max(1) as f64,
            means.normalized_ipc,
            means.l2_hit_rate * 100.0,
            means.dram_row_hit_rate * 100.0
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// gen-campaign — BL and LTRF over a seeded random kernel population
// ---------------------------------------------------------------------------

/// Assembles the generator bounds from the CLI overrides, with friendly
/// errors instead of the library's campaign-definition panics.
fn generator_config(options: &CliOptions) -> Result<GeneratorConfig, String> {
    let defaults = GeneratorConfig::default();
    let config = GeneratorConfig {
        min_regs: options.min_regs.unwrap_or(defaults.min_regs),
        max_regs: options.max_regs.unwrap_or(defaults.max_regs),
        max_outer_trips: options.max_outer_trips.unwrap_or(defaults.max_outer_trips),
        max_inner_trips: options.max_inner_trips.unwrap_or(defaults.max_inner_trips),
        max_body_alu: options.max_body_alu.unwrap_or(defaults.max_body_alu),
        max_body_loads: options.max_body_loads.unwrap_or(defaults.max_body_loads),
    };
    config
        .validate()
        .map_err(|complaint| format!("generator bounds: {complaint}"))?;
    Ok(config)
}

fn run_gen_campaign(options: &CliOptions) -> Result<(), String> {
    let sm_count = single_sm_count(options);
    let params = GenCampaignParams {
        population: options.population.unwrap_or(64),
        population_seed: options.population_seed.unwrap_or(CAMPAIGN_SEED),
        config: generator_config(options)?,
        sm_count,
        seed_mode: seed_mode(options),
    };
    if params.population == 0 {
        return Err("--population must be at least 1".to_string());
    }
    println!(
        "generated campaign: population {} from seed {} (regs {}..={}, trips <=({}x{}), \
         body <=({} alu, {} loads)), BL vs LTRF on configuration #6",
        params.population,
        params.population_seed,
        params.config.min_regs,
        params.config.max_regs,
        params.config.max_outer_trips,
        params.config.max_inner_trips,
        params.config.max_body_alu,
        params.config.max_body_loads
    );
    let spec = campaigns::gen_campaign_spec(&params);
    let results = execute(&spec, options)?;

    println!("\nPopulation means (IPC normalized to baseline on the same member):");
    println!(
        "  {:<6} {:>7} {:>9} {:>8} {:>9} {:>12}",
        "org", "points", "IPC", "norm", "L2 hit", "DRAM row-hit"
    );
    for (_, org, means) in
        ltrf_sweep::PointMeans::grouped(&results, &[sm_count], &GEN_CAMPAIGN_ORGS)
    {
        println!(
            "  {:<6} {:>7} {:>9.3} {:>8.3} {:>8.1}% {:>11.1}%",
            org.label(),
            means.count,
            means.ipc,
            means.normalized_ipc,
            means.l2_hit_rate * 100.0,
            means.dram_row_hit_rate * 100.0
        );
    }
    // Where LTRF wins and loses across the population (the tails are what a
    // fixed 14-benchmark suite cannot show).
    let mut ltrf_norms: Vec<(u32, f64)> = results
        .successes()
        .filter(|(r, _)| r.point.config.organization == Organization::Ltrf)
        .filter_map(|(r, d)| {
            let g = r.point.generated?;
            Some((g.index, d.normalized_ipc?))
        })
        .collect();
    if !ltrf_norms.is_empty() {
        ltrf_norms.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (worst_index, worst) = ltrf_norms[0];
        let (best_index, best) = *ltrf_norms.last().expect("non-empty");
        let wins = ltrf_norms.iter().filter(|(_, n)| *n > 1.0).count();
        println!(
            "  LTRF speeds up {wins}/{} members; member #{best_index} best ({best:.3}x), \
             member #{worst_index} worst ({worst:.3}x)",
            ltrf_norms.len()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Options with exactly one scoped flag given.
    fn with<F: FnOnce(&mut CliOptions)>(set: F) -> CliOptions {
        let mut options = CliOptions::default();
        set(&mut options);
        options
    }

    #[test]
    fn every_scoped_flag_names_only_known_commands() {
        for scope in flag_scopes(&CliOptions::default()) {
            assert!(
                !scope.commands.is_empty(),
                "{} has an empty scope",
                scope.flag
            );
            for command in scope.commands {
                assert!(
                    COMMANDS.contains(command),
                    "{} is scoped to unknown command `{command}`",
                    scope.flag
                );
            }
        }
    }

    #[test]
    fn unscoped_invocations_pass_everywhere() {
        let options = CliOptions::default();
        for command in COMMANDS {
            assert!(
                enforce_flag_scopes(&options, command).is_ok(),
                "default options rejected on `{command}`"
            );
        }
    }

    #[test]
    fn out_of_scope_flags_are_rejected_with_a_pointer() {
        // --sm-counts belongs to gpu-scale alone.
        let axis = with(|o| o.sm_counts = Some(vec![1, 2]));
        for command in COMMANDS {
            let verdict = enforce_flag_scopes(&axis, command);
            if command == "gpu-scale" {
                assert!(verdict.is_ok());
            } else {
                let message = verdict.unwrap_err();
                assert!(message.contains("--sm-counts"), "{message}");
                assert!(message.contains("--sm-count N"), "hint present: {message}");
            }
        }
        // --sm-count applies everywhere except gpu-scale.
        let single = with(|o| o.sm_count = Some(4));
        assert!(enforce_flag_scopes(&single, "fig12").is_ok());
        assert!(enforce_flag_scopes(&single, "repro").is_ok());
        assert!(enforce_flag_scopes(&single, "gpu-scale").is_err());
        // Generator flags belong to gen-campaign alone.
        let generator = with(|o| o.max_regs = Some(96));
        assert!(enforce_flag_scopes(&generator, "gen-campaign").is_ok());
        let message = enforce_flag_scopes(&generator, "power").unwrap_err();
        assert!(message.contains("gen-campaign"), "{message}");
        // Power knobs belong to power alone — including under repro, whose
        // artifacts are pinned to the canonical calibration.
        let calibrated = with(|o| o.access_energy_pj = Some(75.0));
        assert!(enforce_flag_scopes(&calibrated, "power").is_ok());
        let message = enforce_flag_scopes(&calibrated, "repro").unwrap_err();
        assert!(message.contains("sweep power"), "{message}");
        // --quick sizes suite campaigns, not generated populations.
        let quick = with(|o| o.quick = true);
        assert!(enforce_flag_scopes(&quick, "repro").is_ok());
        let message = enforce_flag_scopes(&quick, "gen-campaign").unwrap_err();
        assert!(message.contains("--population"), "{message}");
    }

    #[test]
    fn hit_percent_floors_instead_of_rounding() {
        assert_eq!(floored_hit_percent(294, 294), 100);
        assert_eq!(floored_hit_percent(293, 294), 99, "never round up to 100");
        assert_eq!(floored_hit_percent(0, 294), 0);
        assert_eq!(floored_hit_percent(0, 0), 0);
    }

    #[test]
    fn power_calibration_defaults_and_validates() {
        assert_eq!(
            power_calibration(&CliOptions::default()).unwrap(),
            PowerParams::default()
        );
        let overridden = power_calibration(&with(|o| o.access_energy_pj = Some(75.0))).unwrap();
        assert_eq!(overridden.base_access_pj, 75.0);
        assert_eq!(
            overridden.base_leakage_mw_per_kb,
            PowerParams::default().base_leakage_mw_per_kb
        );
        let bad = power_calibration(&with(|o| o.dwm_write_penalty = Some(-1.0)));
        assert!(bad.unwrap_err().contains("--dwm-write-penalty"));
    }
}
