//! The `sweep` CLI: reproduce the paper's headline experiments through the
//! parallel, cached campaign engine.
//!
//! This binary is a thin driver over the campaign registry
//! ([`ltrf_sweep::api`]): the subcommand list, per-campaign flag parsing,
//! flag cross-rejection, and the `list`/`describe` surfaces are all
//! *generated* from the registered [`Campaign`] definitions — adding a
//! campaign to the registry adds its subcommand here with no CLI edits.
//!
//! ```text
//! sweep <campaign>  [OPTIONS]   run a registered campaign (see `sweep list`)
//! sweep list        [--json]    the campaign index
//! sweep describe <campaign> [--json]   a campaign's parameters and schema
//! sweep version                 crate version, engine fingerprint, cache schema
//!
//! execution OPTIONS (every campaign):
//!   --out DIR           report directory            (default: sweep-out)
//!   --cache DIR         result-cache directory      (default: .sweep-cache)
//!   --no-cache          disable the result cache
//!   --force             recompute even when cached
//!   --resume            restore points completed by a previous (killed)
//!                       run of the same campaign from its checkpoint
//!                       journal instead of re-evaluating them
//!   --threads N         worker threads              (default: all cores)
//!   --progress MODE     human (default) or json — line-delimited
//!                       campaign events for CI (see REPRODUCING.md)
//! ```
//!
//! Execution streams: every completed point's CSV row is written to
//! `<out>/<campaign>.csv` as it completes (bounded memory, byte-identical
//! to the batch renderer) and folded into the running aggregates the
//! summary tables read, while a checkpoint journal
//! (`<out>/<campaign>.journal`, deleted on success) records completed
//! points so `--resume` can pick up where a killed run stopped.
//!
//! Campaign parameters (`--quick`, `--sm-count`, the generator bounds, the
//! power-calibration knobs, …) are declared per campaign in the registry;
//! a flag given to the wrong subcommand is rejected with a pointer to the
//! right one rather than silently ignored, and a mistyped subcommand gets
//! a nearest-name suggestion. `REPRODUCING.md` maps every paper artifact
//! to its command, runtime, and CSV schema.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use ltrf_sweep::api::{self, registry, Campaign, CampaignParams, RenderContext};
use ltrf_sweep::serve::{client_request, client_stream, CampaignServer, ServeConfig};
use ltrf_sweep::{
    report, AggregateSink, CampaignEvent, CampaignSession, ExecutorOptions, FanoutSink, RecordSink,
    RunningAggregates, StreamingCsvWriter, SweepResults, SweepSpec, CACHE_SCHEMA_VERSION,
    ENGINE_FINGERPRINT,
};
use serde::Value;

/// How execution progress reaches stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProgressMode {
    /// The classic summary lines (campaign header, hit-rate totals,
    /// figure tables).
    Human,
    /// One JSON object per campaign event, nothing else on stdout.
    Json,
}

/// Execution options shared by every campaign (everything that is not a
/// campaign parameter).
#[derive(Debug)]
struct RuntimeOptions {
    out_dir: PathBuf,
    cache_dir: Option<PathBuf>,
    force: bool,
    resume: bool,
    threads: Option<usize>,
    progress: ProgressMode,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            out_dir: PathBuf::from("sweep-out"),
            cache_dir: Some(PathBuf::from(".sweep-cache")),
            force: false,
            resume: false,
            threads: None,
            progress: ProgressMode::Human,
        }
    }
}

/// The usage line, generated from the registry.
fn usage() -> String {
    let commands: Vec<&str> = registry().campaigns().iter().map(|c| c.name).collect();
    format!(
        "usage: sweep <{}|list|describe|version|serve|client> [--out DIR] [--cache DIR] \
         [--no-cache] [--force] [--resume] [--threads N] [--progress human|json] \
         [campaign options]\n\
         `sweep list` prints the campaign index; `sweep describe <campaign>` its options;\n\
         `sweep serve` runs the campaign service and `sweep client` drives one \
         (see REPRODUCING.md, \"Campaign service\")",
        commands.join("|")
    )
}

/// Parses the value after a `--flag VALUE` pair.
fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

/// Parses an invocation's arguments: execution options are handled here,
/// everything else resolves against the registry's parameter vocabulary —
/// applied when the campaign accepts the flag, rejected with a
/// registry-derived scope message when another campaign owns it, and an
/// unknown-option error otherwise.
fn parse_invocation(
    campaign: &Campaign,
    args: &[String],
) -> Result<(RuntimeOptions, CampaignParams), String> {
    let mut runtime = RuntimeOptions::default();
    let mut params = CampaignParams::default();
    let registry = registry();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--no-cache" => runtime.cache_dir = None,
            "--force" => runtime.force = true,
            "--resume" => runtime.resume = true,
            "--out" => {
                runtime.out_dir = iter
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--out needs a directory")?;
            }
            "--cache" => {
                runtime.cache_dir = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or("--cache needs a directory")?,
                );
            }
            "--threads" => {
                let n: usize = parse_value("--threads", iter.next())?;
                runtime.threads = Some(n.max(1));
            }
            "--progress" => {
                runtime.progress = match iter.next().map(String::as_str) {
                    Some("human") => ProgressMode::Human,
                    Some("json") => ProgressMode::Json,
                    Some(other) => {
                        return Err(format!("--progress: unknown mode `{other}` (human|json)"))
                    }
                    None => return Err("--progress needs a mode (human|json)".to_string()),
                };
            }
            flag => match registry.param(flag) {
                Some(spec) if campaign.accepts(spec) => {
                    let value = if spec.takes_value() {
                        iter.next().map(String::as_str)
                    } else {
                        None
                    };
                    spec.apply(&mut params, value)?;
                }
                Some(spec) => return Err(registry.scope_error(campaign, spec)),
                None => return Err(format!("unknown option `{flag}`\n{}", usage())),
            },
        }
    }
    Ok((runtime, params))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sweep: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Routes the first argument: meta-commands, then the registry.
fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(usage());
    };
    match command.as_str() {
        "version" | "--version" | "-V" => {
            print!("{}", version_text());
            Ok(())
        }
        "list" => run_list(rest),
        "describe" => run_describe(rest),
        "serve" => run_serve(rest),
        "client" => run_client(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        name => match registry().find(name) {
            Some(campaign) => run_campaign(campaign, rest),
            None => Err(unknown_command(name)),
        },
    }
}

/// The unknown-subcommand error, with a nearest-registered-name suggestion
/// (edit distance over campaign names and aliases) when one is plausible.
fn unknown_command(name: &str) -> String {
    let suggestion = registry()
        .suggest(name)
        .map(|campaign| format!(" (did you mean `{}`?)", campaign.name))
        .unwrap_or_default();
    format!("unknown command `{name}`{suggestion}\n{}", usage())
}

/// `sweep version`: everything a cache-invalidation bug report needs to be
/// self-describing.
fn version_text() -> String {
    format!(
        "sweep {}\nengine fingerprint: {ENGINE_FINGERPRINT}\ncache schema: v{CACHE_SCHEMA_VERSION}\n",
        env!("CARGO_PKG_VERSION")
    )
}

fn run_list(args: &[String]) -> Result<(), String> {
    match args {
        [] => print!("{}", api::list_text()),
        [flag] if flag == "--json" => println!("{}", api::list_json()),
        _ => return Err(format!("list takes only --json\n{}", usage())),
    }
    Ok(())
}

fn run_describe(args: &[String]) -> Result<(), String> {
    let (name, json) = match args {
        [name] => (name, false),
        [name, flag] if flag == "--json" => (name, true),
        [flag, name] if flag == "--json" => (name, true),
        _ => return Err("usage: sweep describe <campaign> [--json]".to_string()),
    };
    let campaign = registry().find(name).ok_or_else(|| unknown_command(name))?;
    if json {
        println!("{}", api::describe_value(campaign).to_json());
    } else {
        print!("{}", api::describe_text(campaign));
    }
    Ok(())
}

/// Runs a registered campaign: build its specs from the parsed parameters,
/// execute each through an observed session, write the reports, and render
/// the summary (human mode) or stream events (json mode).
fn run_campaign(campaign: &Campaign, args: &[String]) -> Result<(), String> {
    let (runtime, params) = parse_invocation(campaign, args)?;
    let specs = campaign.specs(&params)?;
    let human = runtime.progress == ProgressMode::Human;
    if human {
        // Before execution there are no aggregates yet.
        let preamble_ctx = RenderContext {
            params: &params,
            out_dir: &runtime.out_dir,
            aggregates: &[],
        };
        let preamble = (campaign.preamble)(&specs, &preamble_ctx);
        if !preamble.is_empty() {
            println!("{preamble}");
        }
    }
    let mut all = Vec::with_capacity(specs.len());
    let mut aggregates = Vec::with_capacity(specs.len());
    for spec in &specs {
        if human && specs.len() > 1 {
            println!();
        }
        let (results, agg) = execute(spec, &runtime)?;
        all.push(results);
        aggregates.push(agg);
    }
    if human {
        let ctx = RenderContext {
            params: &params,
            out_dir: &runtime.out_dir,
            aggregates: &aggregates,
        };
        (campaign.render)(&all, &ctx)?;
    }
    if campaign.fail_on_point_failure {
        let failed: usize = all.iter().map(SweepResults::failure_count).sum();
        if failed > 0 {
            return Err(format!("{failed} {} point(s) failed", campaign.name));
        }
    }
    Ok(())
}

/// Runs one campaign spec with progress on the event stream, streaming the
/// CSV report row by row (and the summary aggregates) as points complete,
/// writes the JSON report, prints the summary (human mode), and hands the
/// results plus aggregates back for the campaign's summary renderer.
///
/// The checkpoint journal lives at `<out>/<name>.journal` while the
/// campaign runs and is deleted once it completes; a journal left behind by
/// a killed run is what `--resume` picks up.
fn execute(
    spec: &SweepSpec,
    runtime: &RuntimeOptions,
) -> Result<(SweepResults, RunningAggregates), String> {
    // The out dir must exist before the run: the streaming CSV and the
    // checkpoint journal are written while points execute.
    std::fs::create_dir_all(&runtime.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", runtime.out_dir.display()))?;
    let json_path = runtime.out_dir.join(format!("{}.json", spec.name));
    let csv_path = runtime.out_dir.join(format!("{}.csv", spec.name));
    let journal_path = runtime.out_dir.join(format!("{}.journal", spec.name));
    if runtime.resume && runtime.cache_dir.is_none() {
        eprintln!(
            "sweep: --resume without a cache cannot restore outcomes; \
             previously completed points will be recomputed"
        );
    }

    let executor = ExecutorOptions {
        threads: runtime.threads,
        cache_dir: runtime.cache_dir.clone(),
        force_recompute: runtime.force,
        journal_path: Some(journal_path.clone()),
        resume: runtime.resume,
        ..ExecutorOptions::default()
    };
    let threads = runtime.threads.unwrap_or_else(ltrf_sweep::default_threads);
    let session = CampaignSession::new(spec, &executor);

    // Interconnect specs carry the extended network columns; everything
    // else keeps the frozen standard schema byte for byte.
    let csv = StreamingCsvWriter::create_with_schema(&csv_path, report::CsvSchema::for_spec(spec))
        .map_err(|e| format!("creating {}: {e}", csv_path.display()))?;
    let agg = AggregateSink::new();
    let sinks: [&dyn RecordSink; 2] = [&csv, &agg];
    let fanout = FanoutSink(&sinks);

    let started = Instant::now();
    let (results, totals) = match runtime.progress {
        ProgressMode::Human => session.run_with_sink(
            &|event: &CampaignEvent| match event {
                CampaignEvent::CampaignStarted { campaign, points } => {
                    println!("campaign `{campaign}`: {points} points across {threads} threads");
                }
                CampaignEvent::PointFailed {
                    workload,
                    organization,
                    config_id,
                    error,
                    ..
                } => {
                    eprintln!("  FAILED {workload} / {organization} config {config_id}: {error}");
                }
                _ => {}
            },
            &fanout,
        ),
        ProgressMode::Json => session.run_with_sink(
            &|event: &CampaignEvent| println!("{}", event.to_json_line()),
            &fanout,
        ),
    };
    let elapsed = started.elapsed();

    csv.finish()
        .map_err(|e| format!("writing {}: {e}", csv_path.display()))?;
    let aggregates = agg.finish();
    report::write_json(&results, &json_path)
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    // The campaign completed: its checkpoint has served its purpose.
    let _ = std::fs::remove_file(&journal_path);

    if runtime.progress == ProgressMode::Human {
        let rate = ltrf_sweep::hit_percent_1dp(results.cached_count(), results.len());
        let restored = if totals.restored > 0 {
            format!("{} restored, ", totals.restored)
        } else {
            String::new()
        };
        println!(
            "  {} computed, {restored}{} from cache ({rate:.1}% hit rate), {} failed, \
             {:.2?} wall clock",
            totals.computed, totals.cached, totals.failed, elapsed
        );
        println!(
            "  reports: {} and {}",
            json_path.display(),
            csv_path.display()
        );
    }
    Ok((results, aggregates))
}

/// `sweep serve`: run the long-lived campaign service (see
/// `REPRODUCING.md`, "Campaign service", for the wire protocol).
fn run_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServeConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = iter.next().ok_or("--addr needs host:port")?.clone();
            }
            "--out" => {
                config.out_dir = iter
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--out needs a directory")?;
            }
            "--cache" => {
                config.cache_dir = Some(
                    iter.next()
                        .map(PathBuf::from)
                        .ok_or("--cache needs a directory")?,
                );
            }
            "--no-cache" => config.cache_dir = None,
            "--pool" => {
                let n: usize = parse_value("--pool", iter.next())?;
                config.pool = n.max(1);
            }
            "--session-threads" => {
                let n: usize = parse_value("--session-threads", iter.next())?;
                config.session_threads = n.max(1);
            }
            "--replay" => {
                let n: usize = parse_value("--replay", iter.next())?;
                config.replay_capacity = n.max(1);
            }
            flag => {
                return Err(format!(
                    "unknown serve option `{flag}` (--addr HOST:PORT --out DIR --cache DIR \
                     --no-cache --pool N --session-threads N --replay N)"
                ))
            }
        }
    }
    let server = CampaignServer::bind(config).map_err(|e| format!("serve: {e}"))?;
    let addr = server.local_addr().map_err(|e| format!("serve: {e}"))?;
    println!("sweep serve listening on {addr}");
    server.run().map_err(|e| format!("serve: {e}"))
}

/// Collects the registry-vocabulary campaign flags after `sweep client
/// ADDR submit <campaign>` into protocol `params` pairs. The registry only
/// supplies flag *arity* here (value-less flags become `true`); the server
/// re-validates names, scope, and values against the same schemas.
fn client_params(
    args: &mut std::slice::Iter<'_, String>,
) -> Result<(Vec<(String, Value)>, bool), String> {
    let mut params = Vec::new();
    let mut watch = false;
    let registry = registry();
    while let Some(arg) = args.next() {
        if arg == "--watch" {
            watch = true;
            continue;
        }
        let Some(spec) = registry.param(arg) else {
            return Err(format!("unknown campaign option `{arg}`"));
        };
        let key = arg.trim_start_matches("--").to_string();
        if spec.takes_value() {
            let value = args.next().ok_or_else(|| format!("{arg} needs a value"))?;
            params.push((key, Value::Str(value.clone())));
        } else {
            params.push((key, Value::Bool(true)));
        }
    }
    Ok((params, watch))
}

fn object(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// `sweep client ADDR <submit|attach|status|cancel|shutdown> ...`: a thin
/// line-protocol client for scripts, CI, and the concurrency tests.
fn run_client(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: sweep client ADDR <submit <campaign> [campaign options] \
                         [--watch] | attach <session-id> [--after N] | status | \
                         cancel <session-id> | shutdown>";
    let mut iter = args.iter();
    let addr = iter.next().ok_or(USAGE)?.clone();
    let action = iter.next().ok_or(USAGE)?.as_str();
    match action {
        "submit" => {
            let campaign = iter.next().ok_or("submit needs a campaign name")?.clone();
            let (params, watch) = client_params(&mut iter)?;
            let request = object(vec![
                ("cmd", Value::Str("submit".to_string())),
                ("campaign", Value::Str(campaign)),
                ("params", Value::Object(params)),
            ]);
            let reply = client_request(&addr, &request)?;
            println!("{}", reply.to_json());
            check_ok(&reply)?;
            if watch {
                let session_id = reply
                    .get("session_id")
                    .and_then(Value::as_str)
                    .ok_or("submit reply carried no session_id")?
                    .to_string();
                stream_to_stdout(&addr, &session_id, None)?;
            }
            Ok(())
        }
        "attach" => {
            let session_id = iter.next().ok_or("attach needs a session id")?.clone();
            let after = match iter.next().map(String::as_str) {
                Some("--after") => Some(parse_value::<u64>("--after", iter.next())?),
                Some(other) => return Err(format!("unknown attach option `{other}`")),
                None => None,
            };
            stream_to_stdout(&addr, &session_id, after)
        }
        "status" => {
            let reply = client_request(
                &addr,
                &object(vec![("cmd", Value::Str("status".to_string()))]),
            )?;
            println!("{}", reply.to_json());
            check_ok(&reply)
        }
        "cancel" => {
            let session_id = iter.next().ok_or("cancel needs a session id")?.clone();
            let reply = client_request(
                &addr,
                &object(vec![
                    ("cmd", Value::Str("cancel".to_string())),
                    ("session_id", Value::Str(session_id)),
                ]),
            )?;
            println!("{}", reply.to_json());
            check_ok(&reply)
        }
        "shutdown" => {
            let reply = client_request(
                &addr,
                &object(vec![("cmd", Value::Str("shutdown".to_string()))]),
            )?;
            println!("{}", reply.to_json());
            check_ok(&reply)
        }
        other => Err(format!("unknown client action `{other}`\n{USAGE}")),
    }
}

/// Fails on an `{"ok":false}` reply, surfacing the server's error text.
fn check_ok(reply: &Value) -> Result<(), String> {
    match reply.get("ok") {
        Some(Value::Bool(true)) => Ok(()),
        _ => Err(reply
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("server reported an error")
            .to_string()),
    }
}

/// Attaches to a session and prints its event stream (and the final
/// detached response) line by line.
fn stream_to_stdout(addr: &str, session_id: &str, after: Option<u64>) -> Result<(), String> {
    let mut fields = vec![
        ("cmd", Value::Str("attach".to_string())),
        ("session_id", Value::Str(session_id.to_string())),
    ];
    if let Some(after) = after {
        fields.push(("after", Value::UInt(after)));
    }
    let detached = client_stream(addr, &object(fields), |line| println!("{line}"))?;
    println!("{}", detached.to_json());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn every_documented_invocation_still_parses() {
        let registry = registry();
        // The REPRODUCING.md command lines, verbatim.
        let invocations: &[(&str, &[&str])] = &[
            ("repro", &["--quick"]),
            ("repro", &[]),
            (
                "fig9",
                &["--quick", "--out", "ci-out", "--cache", "ci-cache"],
            ),
            ("gen-campaign", &["--population", "8", "--seed", "7"]),
            ("gpu-scale", &["--sm-counts", "1,2,4,8"]),
            ("power", &["--quick", "--access-energy-pj", "75"]),
            (
                "power",
                &[
                    "--quick",
                    "--leakage-mw-per-kb",
                    "0.3",
                    "--dwm-write-penalty",
                    "2.0",
                ],
            ),
            ("fig12", &["--sm-count", "4", "--per-point-seeds"]),
            ("table2", &["--threads", "2", "--no-cache", "--force"]),
            (
                "trace-campaign",
                &["--trace", "examples/traces/straight_line.trace"],
            ),
            ("trace-campaign", &[]),
            ("interconnect", &["--quick"]),
            ("interconnect", &["--quick", "--topology", "mesh"]),
            (
                "interconnect",
                &[
                    "--quick",
                    "--topology",
                    "crossbar",
                    "--link-width",
                    "16",
                    "--queue-depth",
                    "4",
                    "--sm-counts",
                    "1,4,16",
                ],
            ),
        ];
        for (name, args) in invocations {
            let campaign = registry.find(name).expect(name);
            parse_invocation(campaign, &strings(args))
                .unwrap_or_else(|e| panic!("`sweep {name} {}` broke: {e}", args.join(" ")));
        }
    }

    #[test]
    fn out_of_scope_flags_are_rejected_with_a_pointer() {
        let registry = registry();
        let fig9 = registry.find("fig9").unwrap();
        let message = parse_invocation(fig9, &strings(&["--sm-counts", "1,2"])).unwrap_err();
        assert!(message.contains("--sm-counts"), "{message}");
        assert!(message.contains("gpu-scale"), "{message}");
        assert!(message.contains("--sm-count N"), "hint present: {message}");

        let gpu_scale = registry.find("gpu-scale").unwrap();
        let message = parse_invocation(gpu_scale, &strings(&["--sm-count", "4"])).unwrap_err();
        assert!(message.contains("--sm-count does not apply"), "{message}");

        let repro = registry.find("repro").unwrap();
        let message = parse_invocation(repro, &strings(&["--access-energy-pj", "75"])).unwrap_err();
        assert!(message.contains("sweep power"), "{message}");

        let gen = registry.find("gen-campaign").unwrap();
        let message = parse_invocation(gen, &strings(&["--quick"])).unwrap_err();
        assert!(message.contains("--population"), "{message}");

        let message = parse_invocation(fig9, &strings(&["--trace", "a.trace"])).unwrap_err();
        assert!(message.contains("trace-campaign"), "{message}");

        let message = parse_invocation(fig9, &strings(&["--topology", "mesh"])).unwrap_err();
        assert!(message.contains("sweep interconnect"), "{message}");
        let interconnect = registry.find("interconnect").unwrap();
        let message = parse_invocation(interconnect, &strings(&["--sm-count", "4"])).unwrap_err();
        assert!(message.contains("--sm-counts"), "{message}");

        let message = parse_invocation(fig9, &strings(&["--frobnicate"])).unwrap_err();
        assert!(message.contains("unknown option"), "{message}");
    }

    #[test]
    fn resume_flag_parses_for_every_campaign() {
        for campaign in registry().campaigns() {
            let (runtime, _) = parse_invocation(campaign, &strings(&["--resume"]))
                .unwrap_or_else(|e| panic!("`sweep {} --resume` broke: {e}", campaign.name));
            assert!(runtime.resume);
        }
        let fig9 = registry().find("fig9").unwrap();
        let (runtime, _) = parse_invocation(fig9, &strings(&[])).unwrap();
        assert!(!runtime.resume, "resume must be opt-in");
    }

    #[test]
    fn progress_modes_parse_and_reject() {
        let fig9 = registry().find("fig9").unwrap();
        let (runtime, _) = parse_invocation(fig9, &strings(&["--progress", "json"])).unwrap();
        assert_eq!(runtime.progress, ProgressMode::Json);
        let (runtime, _) = parse_invocation(fig9, &strings(&["--progress", "human"])).unwrap();
        assert_eq!(runtime.progress, ProgressMode::Human);
        let message = parse_invocation(fig9, &strings(&["--progress", "xml"])).unwrap_err();
        assert!(message.contains("human|json"), "{message}");
    }

    #[test]
    fn unknown_commands_suggest_the_nearest_campaign() {
        let message = unknown_command("fig12x");
        assert!(message.contains("did you mean `fig12`?"), "{message}");
        let message = unknown_command("zzzzz");
        assert!(!message.contains("did you mean"), "{message}");
        assert!(message.contains("usage:"), "{message}");
    }

    #[test]
    fn version_text_is_self_describing() {
        let text = version_text();
        assert!(text.contains(env!("CARGO_PKG_VERSION")), "{text}");
        assert!(text.contains("engine fingerprint"), "{text}");
        assert!(
            text.contains(&format!("cache schema: v{CACHE_SCHEMA_VERSION}")),
            "{text}"
        );
    }
}
