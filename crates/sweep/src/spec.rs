//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names a campaign, fixes its seeding policy, and carries
//! the list of [`SweepPoint`]s to evaluate. Specs are normally produced by
//! [`SweepSpecBuilder`], which enumerates the cross-product of whatever axes
//! the caller varies: register-file organization, workload (named suite
//! benchmarks and/or a generated population), Table 2 design point, latency
//! factor, registers per register-interval, active warps, SM count (full-GPU
//! campaigns with shared-L2/DRAM contention), and memory behaviour.
//!
//! Specs are *data*: the paper-artifact campaigns each have one canonical
//! constructor in [`crate::campaigns`], surfaced to every front-end as a
//! registry entry in [`crate::api`], and execute on a
//! [`CampaignSession`](crate::CampaignSession).

use serde::{Deserialize, Serialize};

use ltrf_core::{ExperimentConfig, Organization};
use ltrf_sim::{InterconnectConfig, MemoryBehavior};
use ltrf_tech::PowerParams;
use ltrf_trace::TraceWorkloadId;
use ltrf_workloads::{GeneratorConfig, Workload, WorkloadGenerator};

/// Memory behaviour selection for a point.
///
/// A sweep axis must be serializable for content addressing, and
/// [`MemoryBehavior`]'s calibrated profiles are reachable from these tokens,
/// so points carry the token rather than the raw behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemorySelection {
    /// The workload's own calibrated memory profile (the default).
    WorkloadDefault,
    /// Force coalesced streaming behaviour.
    Streaming,
    /// Force a cache-resident working set.
    CacheResident,
    /// Force scattered, data-dependent accesses.
    Irregular,
}

impl MemorySelection {
    /// Resolves the selection against a concrete workload.
    #[must_use]
    pub fn behavior(self, workload: &Workload) -> MemoryBehavior {
        match self {
            MemorySelection::WorkloadDefault => workload.memory(),
            MemorySelection::Streaming => MemoryBehavior::streaming(),
            MemorySelection::CacheResident => MemoryBehavior::cache_resident(),
            MemorySelection::Irregular => MemoryBehavior::irregular(),
        }
    }
}

/// How per-point simulation seeds are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedMode {
    /// Every point runs with exactly this seed (the historical behaviour of
    /// the per-figure harness functions, which compare organizations on
    /// identical dynamic traces).
    Fixed(u64),
    /// Each point's seed is derived from the base seed and the point's
    /// content digest, so points are decorrelated but still reproducible.
    PerPoint(u64),
}

impl SeedMode {
    /// The base seed of either mode.
    #[must_use]
    pub fn base_seed(self) -> u64 {
        match self {
            SeedMode::Fixed(seed) | SeedMode::PerPoint(seed) => seed,
        }
    }
}

/// The identity of one member of a generated workload population: the
/// population seed, the member index, and the full generator bounds.
///
/// This triple (plus nothing else) determines the member's kernel — the
/// executor rematerializes it via
/// [`WorkloadGenerator::population_member`], and the cache serializes it
/// into the point's key material exactly as suite points serialize their
/// workload names. Equal identities therefore always hit warm cache entries,
/// and changing the seed or any generator bound misses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratedWorkload {
    /// Seed of the population the member is drawn from.
    pub population_seed: u64,
    /// Member index within the population (index-stable: independent of the
    /// population size it was enumerated with).
    pub index: u32,
    /// The generator bounds the population was drawn under.
    pub config: GeneratorConfig,
}

impl GeneratedWorkload {
    /// Materializes the member's workload (spec + built kernel).
    #[must_use]
    pub fn materialize(&self) -> Workload {
        WorkloadGenerator::population_member(self.population_seed, self.index, self.config)
    }
}

/// One point of the design space: a workload under an experiment
/// configuration and a memory behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Workload name. For suite points this resolves against the evaluated
    /// suite at run time; for generated points it is the member's stable
    /// display name (the kernel itself comes from `generated`).
    pub workload: String,
    /// The generated-population identity, when this point's workload is a
    /// population member rather than a suite benchmark.
    pub generated: Option<GeneratedWorkload>,
    /// The trace identity (path + content fingerprint + lowering bounds),
    /// when this point's workload is lowered from an execution trace. The
    /// executor rematerializes the kernel from the identity when the point
    /// runs, and the cache serializes the identity into the key material.
    pub trace: Option<TraceWorkloadId>,
    /// Memory behaviour selection.
    pub memory: MemorySelection,
    /// The full experiment configuration (organization, Table 2 design
    /// point, latency override, interval size, active warps, RFC capacity).
    pub config: ExperimentConfig,
}

/// A named campaign: seeding policy, normalization policy, and points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Campaign name (used for report file names).
    pub name: String,
    /// Seeding policy.
    pub seed_mode: SeedMode,
    /// When `true`, every point is normalized against the baseline reference
    /// on the same kernel/memory/seed (the paper's reporting convention).
    pub normalize: bool,
    /// The run matrix.
    pub points: Vec<SweepPoint>,
}

impl SweepSpec {
    /// Starts a builder for a campaign with the given name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> SweepSpecBuilder {
        SweepSpecBuilder::new(name)
    }
}

/// Enumerates the cross-product of the configured axes.
///
/// Every axis has a sensible default, so a builder with only workloads and
/// organizations set produces the classic "who wins on configuration #6"
/// matrix. Setting an axis replaces its default entirely.
#[derive(Debug, Clone)]
pub struct SweepSpecBuilder {
    name: String,
    seed_mode: SeedMode,
    normalize: bool,
    organizations: Vec<Organization>,
    workloads: Vec<String>,
    generated_population: Option<(u64, usize, GeneratorConfig)>,
    trace_population: Vec<TraceWorkloadId>,
    config_ids: Vec<u8>,
    latency_factors: Vec<Option<f64>>,
    registers_per_interval: Vec<usize>,
    active_warps: Vec<usize>,
    sm_counts: Vec<usize>,
    memory: Vec<MemorySelection>,
    power_params: PowerParams,
    interconnect: InterconnectConfig,
}

impl SweepSpecBuilder {
    /// Creates a builder with single-value defaults on every axis.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SweepSpecBuilder {
            name: name.into(),
            seed_mode: SeedMode::Fixed(crate::CAMPAIGN_SEED),
            normalize: true,
            organizations: vec![Organization::Ltrf],
            workloads: Vec::new(),
            generated_population: None,
            trace_population: Vec::new(),
            config_ids: vec![6],
            latency_factors: vec![None],
            registers_per_interval: vec![16],
            active_warps: vec![8],
            sm_counts: vec![1],
            memory: vec![MemorySelection::WorkloadDefault],
            power_params: PowerParams::default(),
            interconnect: InterconnectConfig::default(),
        }
    }

    /// Sets the seeding policy.
    #[must_use]
    pub fn seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// Sets whether points are normalized against the baseline reference.
    #[must_use]
    pub fn normalize(mut self, normalize: bool) -> Self {
        self.normalize = normalize;
        self
    }

    /// Sets the organization axis.
    #[must_use]
    pub fn organizations(mut self, orgs: impl IntoIterator<Item = Organization>) -> Self {
        self.organizations = orgs.into_iter().collect();
        self
    }

    /// Sets the workload axis by name.
    #[must_use]
    pub fn workloads<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.workloads = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the workload axis to the full evaluated suite.
    #[must_use]
    pub fn full_suite(self) -> Self {
        let names: Vec<String> = ltrf_workloads::evaluated_suite()
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        self.workloads(names)
    }

    /// Sets the workload axis to a generated population: the first `count`
    /// members of the population seeded `population_seed`, drawn under
    /// `config`. May be combined with named suite workloads; the population
    /// members are enumerated after them.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`GeneratorConfig::validate`] or `count` is
    /// zero — static campaign-definition bugs, not runtime conditions.
    #[must_use]
    pub fn generated_population(
        mut self,
        population_seed: u64,
        count: usize,
        config: GeneratorConfig,
    ) -> Self {
        if let Err(complaint) = config.validate() {
            panic!(
                "sweep `{}`: invalid generator bounds: {complaint}",
                self.name
            );
        }
        assert!(
            count > 0,
            "sweep `{}` has an empty generated population",
            self.name
        );
        self.generated_population = Some((population_seed, count, config));
        self
    }

    /// Sets the workload axis to a set of trace-driven workloads, identified
    /// by path + content fingerprint + lowering bounds. May be combined with
    /// named suite workloads and a generated population; trace members are
    /// enumerated last. The executor rematerializes each kernel from its
    /// identity when the point runs, so a trace file that changed on disk
    /// (or fails to parse/lower) surfaces as a per-point failure rather than
    /// a stale result.
    #[must_use]
    pub fn trace_population(mut self, traces: impl IntoIterator<Item = TraceWorkloadId>) -> Self {
        self.trace_population = traces.into_iter().collect();
        self
    }

    /// Sets the Table 2 design-point axis (ids in `1..=7`).
    #[must_use]
    pub fn config_ids(mut self, ids: impl IntoIterator<Item = u8>) -> Self {
        self.config_ids = ids.into_iter().collect();
        self
    }

    /// Sets the latency-factor axis. `None` keeps a design point's
    /// calibrated factor; `Some(f)` overrides it (Figures 11–14).
    #[must_use]
    pub fn latency_factors(mut self, factors: impl IntoIterator<Item = Option<f64>>) -> Self {
        self.latency_factors = factors.into_iter().collect();
        self
    }

    /// Sets the registers-per-interval axis (Figure 12).
    #[must_use]
    pub fn registers_per_interval(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.registers_per_interval = sizes.into_iter().collect();
        self
    }

    /// Sets the active-warp axis (Figure 13).
    #[must_use]
    pub fn active_warps(mut self, warps: impl IntoIterator<Item = usize>) -> Self {
        self.active_warps = warps.into_iter().collect();
        self
    }

    /// Sets the SM-count axis (full-GPU scaling campaigns; each point
    /// simulates that many SMs over a shared L2/DRAM, `1` being the
    /// classic single-SM configuration).
    #[must_use]
    pub fn sm_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.sm_counts = counts.into_iter().collect();
        self
    }

    /// Sets the memory-behaviour axis.
    #[must_use]
    pub fn memory(mut self, selections: impl IntoIterator<Item = MemorySelection>) -> Self {
        self.memory = selections.into_iter().collect();
        self
    }

    /// Sets the power-model calibration every point runs under (the `sweep
    /// power` knobs; defaults to [`PowerParams::default`]). This is a
    /// campaign-wide setting rather than a cross-product axis: the
    /// calibration is threaded into every point's [`ExperimentConfig`] and
    /// therefore into its content-addressed cache key.
    ///
    /// # Panics
    ///
    /// Panics if the calibration fails [`PowerParams::validate`] — a static
    /// campaign-definition bug, not a runtime condition (the CLI validates
    /// first and reports a friendly error).
    #[must_use]
    pub fn power_params(mut self, params: PowerParams) -> Self {
        if let Err(complaint) = params.validate() {
            panic!(
                "sweep `{}`: invalid power calibration: {complaint}",
                self.name
            );
        }
        self.power_params = params;
        self
    }

    /// Sets the SM↔L2 interconnect configuration every point runs under
    /// (the `sweep interconnect` knobs; defaults to the `Ideal` topology).
    /// Campaign-wide like [`Self::power_params`]: the configuration threads
    /// into every point's [`ExperimentConfig`], where any non-default field
    /// becomes cache-key material (the default is elided, keeping
    /// pre-interconnect keys stable).
    #[must_use]
    pub fn interconnect(mut self, interconnect: InterconnectConfig) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Enumerates the cross-product into a spec.
    ///
    /// # Panics
    ///
    /// Panics if the workload axis is empty (no named workloads and no
    /// generated population — there is nothing to run) or a config id is
    /// outside `1..=7` — both are static campaign-definition bugs, not
    /// runtime conditions.
    #[must_use]
    pub fn build(self) -> SweepSpec {
        // The workload axis: named suite benchmarks first, then the
        // generated population's members, then trace-driven workloads
        // (names and identities only — the executor materializes kernels
        // from the identity when the point runs).
        let mut workload_axis: Vec<(String, Option<GeneratedWorkload>, Option<TraceWorkloadId>)> =
            self.workloads
                .iter()
                .map(|name| (name.clone(), None, None))
                .collect();
        if let Some((population_seed, count, config)) = self.generated_population {
            for index in 0..count {
                let index = u32::try_from(index).expect("population fits in u32 indices");
                workload_axis.push((
                    WorkloadGenerator::member_name(index).to_string(),
                    Some(GeneratedWorkload {
                        population_seed,
                        index,
                        config,
                    }),
                    None,
                ));
            }
        }
        for trace in &self.trace_population {
            workload_axis.push((trace.workload_name().to_string(), None, Some(trace.clone())));
        }
        assert!(
            !workload_axis.is_empty(),
            "sweep `{}` has no workloads; call workloads(), full_suite(), generated_population(), \
             or trace_population()",
            self.name
        );
        let axis_len = self.organizations.len()
            * workload_axis.len()
            * self.config_ids.len()
            * self.latency_factors.len()
            * self.registers_per_interval.len()
            * self.active_warps.len()
            * self.sm_counts.len()
            * self.memory.len();
        let mut points = Vec::with_capacity(axis_len);
        for (workload, generated, trace) in &workload_axis {
            for &org in &self.organizations {
                for &config_id in &self.config_ids {
                    for &latency in &self.latency_factors {
                        for &rpi in &self.registers_per_interval {
                            for &warps in &self.active_warps {
                                for &sm_count in &self.sm_counts {
                                    for &memory in &self.memory {
                                        let mut config =
                                            ExperimentConfig::for_table2(org, config_id)
                                                .with_registers_per_interval(rpi)
                                                .with_active_warps(warps)
                                                .with_sm_count(sm_count)
                                                .with_power_params(self.power_params)
                                                .with_interconnect(self.interconnect);
                                        config.latency_factor_override = latency;
                                        points.push(SweepPoint {
                                            workload: workload.clone(),
                                            generated: *generated,
                                            trace: trace.clone(),
                                            memory,
                                            config,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        SweepSpec {
            name: self.name,
            seed_mode: self.seed_mode,
            normalize: self.normalize,
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_enumerates_every_axis() {
        let spec = SweepSpec::builder("test")
            .workloads(["hotspot", "btree"])
            .organizations([Organization::Baseline, Organization::Ltrf])
            .config_ids([6, 7])
            .latency_factors([None, Some(4.0)])
            .build();
        assert_eq!(spec.points.len(), 2 * 2 * 2 * 2);
        // Every combination is distinct.
        for (i, a) in spec.points.iter().enumerate() {
            for b in &spec.points[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn defaults_are_single_valued() {
        let spec = SweepSpec::builder("one").workloads(["hotspot"]).build();
        assert_eq!(spec.points.len(), 1);
        let p = &spec.points[0];
        assert_eq!(p.config.organization, Organization::Ltrf);
        assert_eq!(p.config.mrf_config.id.0, 6);
        assert_eq!(p.config.sm_count, 1);
        assert_eq!(p.memory, MemorySelection::WorkloadDefault);
    }

    #[test]
    fn sm_count_axis_enumerates_gpu_scales() {
        let spec = SweepSpec::builder("gpu-scale")
            .workloads(["hotspot"])
            .sm_counts([1, 2, 4, 8])
            .build();
        assert_eq!(spec.points.len(), 4);
        let counts: Vec<usize> = spec.points.iter().map(|p| p.config.sm_count).collect();
        assert_eq!(counts, vec![1, 2, 4, 8]);
        // Distinct sm_counts are distinct cache identities.
        assert_ne!(
            spec.points[0].config.cache_key_material(),
            spec.points[1].config.cache_key_material()
        );
    }

    #[test]
    fn power_params_thread_into_every_point() {
        let calibration = PowerParams {
            base_access_pj: 75.0,
            ..PowerParams::default()
        };
        let spec = SweepSpec::builder("power")
            .workloads(["hotspot"])
            .config_ids([6, 7])
            .power_params(calibration)
            .build();
        assert!(spec.points.iter().all(|p| p.config.power == calibration));
        // A recalibrated point has a different cache identity than the
        // default-calibration point.
        let default_spec = SweepSpec::builder("power")
            .workloads(["hotspot"])
            .config_ids([6, 7])
            .build();
        assert_ne!(
            spec.points[0].config.cache_key_material(),
            default_spec.points[0].config.cache_key_material()
        );
    }

    #[test]
    fn interconnect_threads_into_every_point() {
        use ltrf_sim::Topology;
        let icn = InterconnectConfig::with_topology(Topology::Mesh2D);
        let spec = SweepSpec::builder("noc")
            .workloads(["hotspot"])
            .sm_counts([1, 16])
            .interconnect(icn)
            .build();
        assert!(spec.points.iter().all(|p| p.config.interconnect == icn));
        // A non-default topology changes every point's cache identity...
        let default_spec = SweepSpec::builder("noc")
            .workloads(["hotspot"])
            .sm_counts([1, 16])
            .build();
        assert_ne!(
            spec.points[0].config.cache_key_material(),
            default_spec.points[0].config.cache_key_material()
        );
        // ...while the default (Ideal) setting leaves key material exactly
        // as it was before the interconnect axis existed.
        assert!(!default_spec.points[0]
            .config
            .cache_key_material()
            .contains("interconnect"));
    }

    #[test]
    #[should_panic(expected = "invalid power calibration")]
    fn degenerate_power_params_are_rejected() {
        let bad = PowerParams {
            dwm_write_penalty: 0.0,
            ..PowerParams::default()
        };
        let _ = SweepSpec::builder("bad-power").power_params(bad);
    }

    #[test]
    #[should_panic(expected = "no workloads")]
    fn empty_workload_axis_is_rejected() {
        let _ = SweepSpec::builder("empty").build();
    }

    #[test]
    fn generated_population_axis_enumerates_members() {
        let spec = SweepSpec::builder("gen")
            .organizations([Organization::Baseline, Organization::Ltrf])
            .generated_population(7, 3, GeneratorConfig::default())
            .build();
        assert_eq!(spec.points.len(), 3 * 2);
        for point in &spec.points {
            let g = point.generated.expect("population points carry identity");
            assert_eq!(g.population_seed, 7);
            assert!(g.index < 3);
            assert_eq!(point.workload, WorkloadGenerator::member_name(g.index));
        }
        // Identities are index-distinct within an organization.
        let indices: Vec<u32> = spec
            .points
            .iter()
            .filter(|p| p.config.organization == Organization::Ltrf)
            .map(|p| p.generated.unwrap().index)
            .collect();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn suite_and_population_axes_combine() {
        let spec = SweepSpec::builder("mixed")
            .workloads(["hotspot"])
            .generated_population(7, 2, GeneratorConfig::default())
            .build();
        assert_eq!(spec.points.len(), 3);
        assert!(spec.points[0].generated.is_none());
        assert!(spec.points[1].generated.is_some());
        assert!(spec.points[2].generated.is_some());
    }

    #[test]
    #[should_panic(expected = "invalid generator bounds")]
    fn degenerate_generator_bounds_are_rejected() {
        let bad = GeneratorConfig {
            min_regs: 2,
            ..GeneratorConfig::default()
        };
        let _ = SweepSpec::builder("bad").generated_population(1, 4, bad);
    }
}
