//! The sharded campaign executor.
//!
//! [`CampaignSession`] takes a [`SweepSpec`] and evaluates every point
//! across all cores: workers claim points from a shared queue (so uneven
//! point costs balance out), each point runs under panic isolation,
//! per-point seeds follow the spec's [`SeedMode`](crate::SeedMode), and —
//! when a cache is attached — outcomes are served from and stored to the
//! content-addressed [`ResultCache`]. While the session runs it emits a
//! typed [`CampaignEvent`] stream to a [`CampaignObserver`] (the `sweep`
//! CLI's progress printing — human or `--progress json` — and the bench
//! harness's failure reporting both ride this stream); the batch
//! [`run_sweep`] call is a thin unobserved wrapper kept for callers that
//! only want the final [`SweepResults`].
//!
//! Large campaigns run *streaming*: [`CampaignSession::run_with_sink`]
//! pushes every completed [`PointRecord`] into a [`RecordSink`] (a CSV
//! writer, a running aggregator — see [`crate::stream`]) as it completes,
//! and [`CampaignSession::run_streaming`] drops the records entirely so a
//! 10k+-point campaign never materializes its full row set. Attaching a
//! checkpoint journal ([`ExecutorOptions::journal_path`]) makes the session
//! crash-safe: every completed point is journaled, and a rerun with
//! [`ExecutorOptions::resume`] *restores* journaled points from the cache —
//! with their original cache provenance, so resumed reports are
//! byte-identical to an uninterrupted run's — instead of re-evaluating
//! them.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize, Value};

use ltrf_core::{run_experiment, run_normalized, RunResult};
use ltrf_workloads::{evaluated_suite, Workload};

use crate::cache::{point_key, PointKey, ResultCache};
use crate::journal::{CampaignJournal, JournalSnapshot};
use crate::pool::{panic_message, parallel_map};
use crate::spec::{SweepPoint, SweepSpec};

/// The data produced by a successfully evaluated point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointData {
    /// The raw run result.
    pub result: RunResult,
    /// IPC relative to the baseline reference (when the spec normalizes).
    pub normalized_ipc: Option<f64>,
    /// Register-file power relative to the baseline reference (when the
    /// spec normalizes).
    pub normalized_power: Option<f64>,
}

/// How a point concluded.
///
/// The success variant carries the full per-run statistics inline; campaigns
/// allocate one of these per point anyway, so boxing would only add pointer
/// chasing to the hot reporting paths.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PointOutcome {
    /// The point ran (or was cached) successfully.
    Ok(PointData),
    /// The runner returned an error (e.g. a compiler failure or an unknown
    /// workload name).
    Error(String),
    /// The point panicked; the shard survived and the payload is recorded.
    Panicked(String),
}

impl PointOutcome {
    /// The point's data, if it succeeded.
    #[must_use]
    pub fn data(&self) -> Option<&PointData> {
        match self {
            PointOutcome::Ok(data) => Some(data),
            _ => None,
        }
    }

    /// Whether the point failed (error or panic).
    #[must_use]
    pub fn is_failure(&self) -> bool {
        !matches!(self, PointOutcome::Ok(_))
    }
}

/// One evaluated point: identity, outcome, and provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointRecord {
    /// The point as specified.
    pub point: SweepPoint,
    /// The content digest the point is cached under.
    pub digest_hex: String,
    /// The seed the point ran with.
    pub seed: u64,
    /// The outcome.
    pub outcome: PointOutcome,
    /// Whether the outcome was served from the cache.
    pub from_cache: bool,
}

/// A completed campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResults {
    /// Campaign name (from the spec).
    pub name: String,
    /// One record per spec point, in spec order.
    pub records: Vec<PointRecord>,
}

impl SweepResults {
    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the campaign had no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of points served from the cache.
    #[must_use]
    pub fn cached_count(&self) -> usize {
        self.records.iter().filter(|r| r.from_cache).count()
    }

    /// Number of points computed in this run.
    #[must_use]
    pub fn computed_count(&self) -> usize {
        self.len() - self.cached_count()
    }

    /// Number of failed points (errors plus panics).
    #[must_use]
    pub fn failure_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome.is_failure())
            .count()
    }

    /// Fraction of points served from the cache, in `[0, 1]`.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.cached_count() as f64 / self.len() as f64
        }
    }

    /// Iterates over successful records with their data.
    pub fn successes(&self) -> impl Iterator<Item = (&PointRecord, &PointData)> {
        self.records
            .iter()
            .filter_map(|r| r.outcome.data().map(|d| (r, d)))
    }
}

/// Mean metrics over a set of successful points — the aggregation behind
/// the GPU-scaling summaries (the `sweep gpu-scale` table and
/// `ltrf-bench`'s `gpu_scale` rows share this so the two cannot drift).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMeans {
    /// Number of points aggregated.
    pub count: usize,
    /// Mean (whole-GPU) IPC.
    pub ipc: f64,
    /// Mean IPC normalized to the baseline reference (points without
    /// normalization contribute zero).
    pub normalized_ipc: f64,
    /// Mean L2 hit rate (the shared L2 for multi-SM points, the private
    /// LLC for single-SM ones).
    pub l2_hit_rate: f64,
    /// Mean DRAM row-buffer hit rate.
    pub dram_row_hit_rate: f64,
    /// Mean cycles requests spent queued behind busy shared-L2 slices
    /// (zero for single-SM points, whose private L2 never queues).
    pub l2_queue_wait: f64,
    /// Mean SM↔L2 network transport latency per routed message (zero under
    /// the `Ideal` topology and for single-SM points).
    pub noc_latency: f64,
}

impl PointMeans {
    /// The GPU-scaling pivot: means per `(sm_count, organization)` cell, in
    /// the given axis order, skipping empty cells. Both the `sweep
    /// gpu-scale` summary table and `ltrf-bench`'s `gpu_scale` rows are
    /// this call, so the grouping logic cannot drift between them.
    #[must_use]
    pub fn grouped(
        results: &SweepResults,
        sm_counts: &[usize],
        organizations: &[ltrf_core::Organization],
    ) -> Vec<(usize, ltrf_core::Organization, PointMeans)> {
        let mut cells = Vec::new();
        for &sm_count in sm_counts {
            for &org in organizations {
                let means = PointMeans::over(
                    results
                        .successes()
                        .filter(|(r, _)| {
                            r.point.config.sm_count == sm_count
                                && r.point.config.organization == org
                        })
                        .map(|(_, d)| d),
                );
                if let Some(means) = means {
                    cells.push((sm_count, org, means));
                }
            }
        }
        cells
    }

    /// Averages the given points; `None` when the iterator is empty.
    pub fn over<'a>(points: impl IntoIterator<Item = &'a PointData>) -> Option<Self> {
        let mut acc = PointMeansAcc::default();
        for data in points {
            acc.push(data);
        }
        acc.finish()
    }
}

/// The online fold behind [`PointMeans`]: push successful points one at a
/// time, then [`finish`](PointMeansAcc::finish) into the means. This is what
/// the streaming aggregation path ([`crate::stream::RunningAggregates`])
/// folds `PointFinished` records into, so summary statistics never require
/// the full row set in memory; [`PointMeans::over`] is this fold applied to
/// an iterator, so the batch and streaming paths cannot drift.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PointMeansAcc {
    count: usize,
    ipc: f64,
    normalized_ipc: f64,
    l2_hit_rate: f64,
    dram_row_hit_rate: f64,
    l2_queue_wait: f64,
    noc_latency: f64,
}

impl PointMeansAcc {
    /// Folds one successful point into the running sums.
    pub fn push(&mut self, data: &PointData) {
        self.count += 1;
        self.ipc += data.result.ipc;
        self.normalized_ipc += data.normalized_ipc.unwrap_or(0.0);
        self.l2_hit_rate += data.result.stats.memory.llc.hit_rate();
        self.dram_row_hit_rate += data.result.stats.memory.dram.row_hit_rate();
        self.l2_queue_wait += data.result.stats.memory.l2_queue_wait_cycles as f64;
        self.noc_latency += data.result.stats.memory.noc.mean_latency();
    }

    /// Number of points folded in so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The means over everything pushed; `None` when nothing was.
    #[must_use]
    pub fn finish(&self) -> Option<PointMeans> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        Some(PointMeans {
            count: self.count,
            ipc: self.ipc / n,
            normalized_ipc: self.normalized_ipc / n,
            l2_hit_rate: self.l2_hit_rate / n,
            dram_row_hit_rate: self.dram_row_hit_rate / n,
            l2_queue_wait: self.l2_queue_wait / n,
            noc_latency: self.noc_latency / n,
        })
    }
}

/// Mean IPC relative to each workload's own 1× point, per latency factor,
/// over the successful points selected by `select` — the canonical
/// aggregation behind the Figure 12/13/14 latency-sweep summaries. The
/// `sweep` CLI's fig12/13/14 tables and `ltrf-bench`'s `SweepSeries` rows
/// are both this call, so the relative-IPC convention cannot drift between
/// the two entry points.
///
/// A workload contributes only a *complete* curve: if its 1× reference is
/// missing or non-positive, or any factor's point is absent, the whole
/// workload is excluded from the series (not just the missing factors), so
/// every returned mean averages the same workload set. Returns `None` when
/// no workload has a complete curve. `factors` must contain `1.0` for any
/// curve to be complete.
pub fn relative_ipc_series<F>(
    results: &SweepResults,
    factors: &[f64],
    select: F,
) -> Option<Vec<f64>>
where
    F: Fn(&PointRecord) -> bool,
{
    // workload → latency-factor bits → ipc
    let mut curves: std::collections::BTreeMap<&str, std::collections::BTreeMap<u64, f64>> =
        std::collections::BTreeMap::new();
    for (record, data) in results.successes() {
        if !select(record) {
            continue;
        }
        curves
            .entry(record.point.workload.as_str())
            .or_default()
            .insert(
                record.point.config.latency_factor().to_bits(),
                data.result.ipc,
            );
    }
    let mut sums = vec![0.0; factors.len()];
    let mut complete = 0usize;
    for curve in curves.values() {
        let Some(&reference) = curve.get(&1.0f64.to_bits()) else {
            continue;
        };
        if reference <= 0.0 {
            continue;
        }
        let Some(relatives) = factors
            .iter()
            .map(|f| curve.get(&f.to_bits()).map(|ipc| ipc / reference))
            .collect::<Option<Vec<f64>>>()
        else {
            continue;
        };
        for (sum, relative) in sums.iter_mut().zip(relatives) {
            *sum += relative;
        }
        complete += 1;
    }
    if complete == 0 {
        return None;
    }
    Some(sums.into_iter().map(|s| s / complete as f64).collect())
}

/// Execution policy knobs.
#[derive(Debug, Default)]
pub struct ExecutorOptions {
    /// Worker threads; `None` uses every available core.
    pub threads: Option<usize>,
    /// Cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// An already-open cache *instance* to use instead of opening
    /// `cache_dir`. The campaign service shares one instance across every
    /// concurrent session so a point stored by one session is immediately
    /// visible to the others' in-memory index (per-session opens would each
    /// snapshot the packed index at open time and miss each other's
    /// stores). Takes precedence over `cache_dir` when both are set.
    pub shared_cache: Option<Arc<ResultCache>>,
    /// When `true`, ignore cached outcomes (but still store fresh ones).
    pub force_recompute: bool,
    /// Checkpoint journal path; `None` runs unjournaled. When set, every
    /// completed point appends one line (digest, seed, provenance) so a
    /// killed campaign can be resumed.
    pub journal_path: Option<PathBuf>,
    /// When `true` (and a journal path is set), load the journal left by a
    /// previous run and *restore* its completed points from the cache
    /// instead of re-evaluating them. Requires a cache: restored outcomes
    /// are read back through it.
    pub resume: bool,
    /// Cross-session coordination hooks (single-flight dedup of identical
    /// in-flight points plus a shared bounded worker pool) — the campaign
    /// service (`sweep serve`, [`crate::serve`]) installs its
    /// [`SingleFlight`](crate::serve::SingleFlight) here. `None` runs
    /// standalone with no coordination overhead.
    pub coordinator: Option<Arc<dyn PointCoordinator>>,
    /// Cooperative cancellation flag. When it reads `true`, every point not
    /// yet claimed resolves as a `cancelled` failure record (with its
    /// `PointFailed` event) instead of being evaluated, so the campaign
    /// drains quickly but still emits exactly one terminal event per point
    /// and a final `CampaignFinished`.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl ExecutorOptions {
    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }
}

/// How a coordinated session should resolve a point that missed the cache —
/// what [`PointCoordinator::claim`] returns.
#[derive(Debug, Clone, PartialEq)]
pub enum PointClaim {
    /// This session leads the digest: it evaluates the point, stores the
    /// outcome, and must call [`PointCoordinator::publish`] exactly once so
    /// waiting sessions (and the worker-pool permit) are released.
    Lead,
    /// Another session was already computing the same digest; its finished
    /// outcome is fanned out here without re-evaluating. Successful
    /// coalesced points surface as [`CampaignEvent::PointCoalesced`].
    /// (Boxed: the outcome dwarfs the data-less [`PointClaim::Lead`].)
    Coalesced(Box<PointOutcome>),
}

/// Cross-session execution hooks for the campaign service: single-flight
/// dedup of identical in-flight points (keyed on the content-addressed cache
/// digest) and a shared bounded worker pool.
///
/// The executor calls [`claim`](PointCoordinator::claim) after a cache miss
/// and before evaluation; a [`PointClaim::Lead`] answer obliges it to call
/// [`publish`](PointCoordinator::publish) with the final outcome (it does so
/// on every path, including cache-recheck hits and failures). Because a
/// leader may have blocked in `claim` waiting for a pool permit while some
/// other session finished the same digest, the executor re-checks the
/// (shared) cache once more after winning a claim — that recheck is what
/// makes "each digest evaluated at most once service-wide" hold even across
/// the store/publish race.
pub trait PointCoordinator: std::fmt::Debug + Send + Sync {
    /// Claims `digest` for evaluation. May block — waiting for a worker
    /// pool permit (leaders) or for another session's in-flight computation
    /// of the same digest (followers).
    fn claim(&self, digest: &str) -> PointClaim;

    /// Publishes the leader's final outcome for `digest`: wakes every
    /// session waiting on it and releases the worker-pool permit. Called
    /// exactly once per successful [`PointClaim::Lead`].
    fn publish(&self, digest: &str, outcome: &PointOutcome);
}

/// A consumer of completed [`PointRecord`]s, called from the worker threads
/// as points finish (in completion order, not spec order — the record's
/// `index` is its position in [`SweepSpec::points`]).
///
/// Sinks are how streaming campaigns bound their memory: a
/// [`StreamingCsvWriter`](crate::stream::StreamingCsvWriter) writes each row
/// to disk as it completes and an
/// [`AggregateSink`](crate::stream::AggregateSink) folds each record into
/// running per-config statistics, so neither needs the full row set. Every
/// point reaches the sink exactly once, including failures (panic-isolated
/// fallbacks included).
pub trait RecordSink: Sync {
    /// Called once per completed point.
    fn on_record(&self, index: usize, record: &PointRecord);
}

/// The no-op sink.
impl RecordSink for () {
    fn on_record(&self, _index: usize, _record: &PointRecord) {}
}

/// Broadcasts every record to several sinks in order (CSV writer plus
/// aggregator is the common pair).
#[derive(Clone, Copy)]
pub struct FanoutSink<'a>(
    /// The sinks, each of which sees every record.
    pub &'a [&'a dyn RecordSink],
);

impl RecordSink for FanoutSink<'_> {
    fn on_record(&self, index: usize, record: &PointRecord) {
        for sink in self.0 {
            sink.on_record(index, record);
        }
    }
}

/// How a campaign's points resolved, by provenance — the summary a
/// streaming run reports without retaining its records. The counts
/// partition the campaign:
/// `computed + cached + restored + coalesced == points`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CampaignTotals {
    /// Total points in the campaign.
    pub points: usize,
    /// Points evaluated fresh in this run (including failures).
    pub computed: usize,
    /// Points served live from the result cache.
    pub cached: usize,
    /// Points restored from the checkpoint journal (resume runs).
    pub restored: usize,
    /// Points fanned out from another session's in-flight computation of
    /// the same digest (single-flight dedup under the campaign service;
    /// zero outside `sweep serve`).
    pub coalesced: usize,
    /// Points that failed (errors plus panics).
    pub failed: usize,
    /// Fraction of records carrying cache provenance, in `[0, 1]` — the
    /// same quantity as [`SweepResults::cache_hit_rate`] (restored points
    /// count with their *original* provenance).
    pub hit_rate: f64,
}

// ---------------------------------------------------------------------------
// The event stream — typed progress emitted while a session runs
// ---------------------------------------------------------------------------

/// A typed progress event emitted by a [`CampaignSession`] while it runs.
///
/// Events for different points interleave freely (workers claim points from
/// a shared queue), so every per-point event carries the point's index into
/// [`SweepSpec::points`]. Per campaign, the stream always contains exactly
/// one `CampaignStarted`, then one `PointStarted` and one terminal
/// `PointFinished`, `PointRestored`, `PointCoalesced` *or* `PointFailed`
/// per point, and finally exactly one `CampaignFinished` whose counts match
/// the returned [`SweepResults`].
///
/// [`CampaignEvent::to_json_line`] renders an event as the stable
/// line-delimited JSON schema behind the CLI's `--progress json` mode
/// (documented in `REPRODUCING.md`).
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// The session is about to evaluate the campaign's points.
    CampaignStarted {
        /// Campaign name (from the spec).
        campaign: String,
        /// Number of points the campaign will evaluate.
        points: usize,
    },
    /// A worker claimed a point and is about to resolve it.
    PointStarted {
        /// Index into [`SweepSpec::points`].
        index: usize,
        /// The point's workload name.
        workload: String,
        /// The point's register-file organization label.
        organization: &'static str,
    },
    /// A point resolved successfully (computed, or served from the cache).
    PointFinished {
        /// Index into [`SweepSpec::points`].
        index: usize,
        /// Whether the outcome was served from the result cache.
        cache_hit: bool,
    },
    /// A resume run restored a point the checkpoint journal recorded as
    /// completed, instead of re-evaluating it.
    PointRestored {
        /// Index into [`SweepSpec::points`].
        index: usize,
        /// The cache provenance the point originally completed with (what
        /// its record — and CSV row — carries).
        from_cache: bool,
    },
    /// Another session of the campaign service was already computing the
    /// identical point (same content-addressed digest); its outcome was
    /// computed once and fanned out here (single-flight dedup). Terminal,
    /// like `PointFinished`; never emitted outside `sweep serve`. A
    /// coalesced *failure* surfaces as `PointFailed` instead, so failures
    /// are always visible.
    PointCoalesced {
        /// Index into [`SweepSpec::points`].
        index: usize,
        /// The content digest the point was deduplicated on (correlates
        /// coalesced points across concurrent sessions).
        digest: String,
    },
    /// A point failed (runner error or isolated panic); the campaign
    /// continues.
    PointFailed {
        /// Index into [`SweepSpec::points`].
        index: usize,
        /// The point's workload name.
        workload: String,
        /// The point's register-file organization label.
        organization: &'static str,
        /// The point's Table 2 design point (disambiguates multi-config
        /// campaigns in failure reports).
        config_id: u8,
        /// The error or panic payload.
        error: String,
    },
    /// Every point resolved; the campaign's results are final.
    CampaignFinished {
        /// Campaign name (from the spec).
        campaign: String,
        /// Points evaluated fresh in this run.
        computed: usize,
        /// Points served live from the cache.
        cached: usize,
        /// Points restored from the checkpoint journal (zero outside
        /// resume runs).
        restored: usize,
        /// Points fanned out from another session's in-flight computation
        /// (zero outside the campaign service).
        coalesced: usize,
        /// Points that failed.
        failed: usize,
        /// Fraction of points served from the cache, in `[0, 1]` (matches
        /// [`SweepResults::cache_hit_rate`]; restored points count with
        /// their original provenance).
        hit_rate: f64,
    },
}

impl CampaignEvent {
    /// Renders the event as one line of the CLI's `--progress json` stream:
    /// a flat JSON object whose `event` field is the snake_case variant
    /// name, followed by the variant's fields. The schema is documented in
    /// `REPRODUCING.md` and pinned by the registry tests.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let obj = |fields: Vec<(&str, Value)>| {
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
            .to_json()
        };
        match self {
            CampaignEvent::CampaignStarted { campaign, points } => obj(vec![
                ("event", Value::Str("campaign_started".into())),
                ("campaign", Value::Str(campaign.clone())),
                ("points", Value::UInt(*points as u64)),
            ]),
            CampaignEvent::PointStarted {
                index,
                workload,
                organization,
            } => obj(vec![
                ("event", Value::Str("point_started".into())),
                ("index", Value::UInt(*index as u64)),
                ("workload", Value::Str(workload.clone())),
                ("organization", Value::Str((*organization).to_string())),
            ]),
            CampaignEvent::PointFinished { index, cache_hit } => obj(vec![
                ("event", Value::Str("point_finished".into())),
                ("index", Value::UInt(*index as u64)),
                ("cache_hit", Value::Bool(*cache_hit)),
            ]),
            CampaignEvent::PointRestored { index, from_cache } => obj(vec![
                ("event", Value::Str("point_restored".into())),
                ("index", Value::UInt(*index as u64)),
                ("from_cache", Value::Bool(*from_cache)),
            ]),
            CampaignEvent::PointCoalesced { index, digest } => obj(vec![
                ("event", Value::Str("point_coalesced".into())),
                ("index", Value::UInt(*index as u64)),
                ("digest", Value::Str(digest.clone())),
            ]),
            CampaignEvent::PointFailed {
                index,
                workload,
                organization,
                config_id,
                error,
            } => obj(vec![
                ("event", Value::Str("point_failed".into())),
                ("index", Value::UInt(*index as u64)),
                ("workload", Value::Str(workload.clone())),
                ("organization", Value::Str((*organization).to_string())),
                ("config_id", Value::UInt(u64::from(*config_id))),
                ("error", Value::Str(error.clone())),
            ]),
            CampaignEvent::CampaignFinished {
                campaign,
                computed,
                cached,
                restored,
                coalesced,
                failed,
                hit_rate,
            } => obj(vec![
                ("event", Value::Str("campaign_finished".into())),
                ("campaign", Value::Str(campaign.clone())),
                ("computed", Value::UInt(*computed as u64)),
                ("cached", Value::UInt(*cached as u64)),
                ("restored", Value::UInt(*restored as u64)),
                ("coalesced", Value::UInt(*coalesced as u64)),
                ("failed", Value::UInt(*failed as u64)),
                ("hit_rate", Value::Float(*hit_rate)),
            ]),
        }
    }
}

/// A consumer of a session's [`CampaignEvent`] stream.
///
/// Observers are called from the worker threads, so they must be `Sync`;
/// events for different points arrive interleaved. Any `Fn(&CampaignEvent) +
/// Sync` closure is an observer, and two adapters cover the common shapes:
/// [`EventLog`] collects the stream for inspection (tests, summaries) and
/// [`event_channel`] forwards it over an `mpsc` channel to a consumer on
/// another thread.
pub trait CampaignObserver: Sync {
    /// Called once per event, in stream order per point (but interleaved
    /// across points).
    fn on_event(&self, event: &CampaignEvent);
}

impl<F: Fn(&CampaignEvent) + Sync> CampaignObserver for F {
    fn on_event(&self, event: &CampaignEvent) {
        self(event);
    }
}

/// The no-op observer behind the batch [`run_sweep`] wrapper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unobserved;

impl CampaignObserver for Unobserved {
    fn on_event(&self, _event: &CampaignEvent) {}
}

/// An observer that collects the whole event stream, for inspection after
/// the run (the event-stream regression tests are built on this).
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<CampaignEvent>>,
}

impl EventLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Drains and returns the events collected so far, in arrival order.
    #[must_use]
    pub fn take(&self) -> Vec<CampaignEvent> {
        std::mem::take(&mut self.events.lock().expect("event log poisoned"))
    }
}

impl CampaignObserver for EventLog {
    fn on_event(&self, event: &CampaignEvent) {
        self.events
            .lock()
            .expect("event log poisoned")
            .push(event.clone());
    }
}

/// A channel-backed observer: events are forwarded to the returned receiver,
/// so a consumer on another thread can stream progress while the session
/// runs. A dropped receiver is tolerated (sends become no-ops).
#[derive(Debug)]
pub struct EventSender {
    sender: Mutex<mpsc::Sender<CampaignEvent>>,
}

/// Creates a connected [`EventSender`]/receiver pair.
#[must_use]
pub fn event_channel() -> (EventSender, mpsc::Receiver<CampaignEvent>) {
    let (sender, receiver) = mpsc::channel();
    (
        EventSender {
            sender: Mutex::new(sender),
        },
        receiver,
    )
}

impl CampaignObserver for EventSender {
    fn on_event(&self, event: &CampaignEvent) {
        let _ = self
            .sender
            .lock()
            .expect("event sender poisoned")
            .send(event.clone());
    }
}

// ---------------------------------------------------------------------------
// The session — observed campaign execution
// ---------------------------------------------------------------------------

/// One observed execution of a campaign: a [`SweepSpec`] bound to its
/// [`ExecutorOptions`], run with [`CampaignSession::run`] under any
/// [`CampaignObserver`].
///
/// This is the engine's primary execution API; the batch [`run_sweep`] call
/// is `CampaignSession::new(spec, options).run(&Unobserved)`.
#[derive(Debug, Clone, Copy)]
pub struct CampaignSession<'a> {
    spec: &'a SweepSpec,
    options: &'a ExecutorOptions,
}

impl<'a> CampaignSession<'a> {
    /// Binds a spec to its execution options.
    #[must_use]
    pub fn new(spec: &'a SweepSpec, options: &'a ExecutorOptions) -> Self {
        CampaignSession { spec, options }
    }

    /// The spec this session runs.
    #[must_use]
    pub fn spec(&self) -> &SweepSpec {
        self.spec
    }

    /// Runs the campaign, streaming [`CampaignEvent`]s to `observer`.
    ///
    /// Never fails as a whole: per-point problems (unknown workloads,
    /// runner errors, panics) become failure records (and `PointFailed`
    /// events), and an unusable cache directory degrades to running
    /// uncached with a note on stderr.
    #[must_use]
    pub fn run(&self, observer: &dyn CampaignObserver) -> SweepResults {
        self.run_with_sink(observer, &()).0
    }

    /// Runs the campaign, additionally pushing every completed record into
    /// `sink` as it completes (in completion order), and returns the
    /// retained [`SweepResults`] alongside the provenance totals.
    ///
    /// This is the full-fidelity streaming entry point: the CLI fans out to
    /// a streaming CSV writer and a running aggregator while still
    /// retaining records for the JSON report. Failure semantics match
    /// [`run`](CampaignSession::run).
    #[must_use]
    pub fn run_with_sink(
        &self,
        observer: &dyn CampaignObserver,
        sink: &dyn RecordSink,
    ) -> (SweepResults, CampaignTotals) {
        let (records, totals) = self.run_inner(observer, sink, true);
        (
            SweepResults {
                name: self.spec.name.clone(),
                records,
            },
            totals,
        )
    }

    /// Runs the campaign without retaining records: every completed record
    /// is pushed into `sink` and dropped, so memory stays bounded by the
    /// sinks (not the point count). Returns the provenance totals only.
    ///
    /// This is the 10k+-point entry point — pair it with a
    /// [`StreamingCsvWriter`](crate::stream::StreamingCsvWriter) and/or an
    /// [`AggregateSink`](crate::stream::AggregateSink). Failure semantics
    /// match [`run`](CampaignSession::run).
    pub fn run_streaming(
        &self,
        observer: &dyn CampaignObserver,
        sink: &dyn RecordSink,
    ) -> CampaignTotals {
        self.run_inner(observer, sink, false).1
    }

    fn run_inner(
        &self,
        observer: &dyn CampaignObserver,
        sink: &dyn RecordSink,
        retain: bool,
    ) -> (Vec<PointRecord>, CampaignTotals) {
        let spec = self.spec;
        let options = self.options;
        // A shared instance (the campaign service) wins over a directory:
        // the service's sessions must see each other's stores through one
        // in-memory index, not per-open snapshots.
        let cache: Option<Arc<ResultCache>> = options.shared_cache.clone().or_else(|| {
            options.cache_dir.as_ref().and_then(|dir| {
                ResultCache::open(dir)
                    .map(Arc::new)
                    .map_err(|e| {
                        eprintln!(
                            "sweep: cache at {} unusable ({e}); running uncached",
                            dir.display()
                        )
                    })
                    .ok()
            })
        });
        // The checkpoint journal (when requested). A resume loads the
        // previous run's snapshot; an unusable journal degrades to running
        // unjournaled with a note on stderr, like the cache.
        let (journal, snapshot) = match &options.journal_path {
            Some(path) => {
                let opened = if options.resume {
                    CampaignJournal::resume(path, &spec.name)
                } else {
                    CampaignJournal::create(path, &spec.name)
                        .map(|j| (j, JournalSnapshot::default()))
                };
                match opened {
                    Ok((journal, snapshot)) => (Some(journal), snapshot),
                    Err(e) => {
                        eprintln!(
                            "sweep: journal at {} unusable ({e}); running unjournaled",
                            path.display()
                        );
                        (None, JournalSnapshot::default())
                    }
                }
            }
            None => (None, JournalSnapshot::default()),
        };
        let suite: HashMap<&str, Workload> = evaluated_suite()
            .into_iter()
            .map(|w| (w.name(), w))
            .collect();

        observer.on_event(&CampaignEvent::CampaignStarted {
            campaign: spec.name.clone(),
            points: spec.points.len(),
        });

        let outcomes = parallel_map(&spec.points, options.threads, |index, point| {
            observer.on_event(&CampaignEvent::PointStarted {
                index,
                workload: point.workload.clone(),
                organization: point.config.organization.label(),
            });
            let key = point_key(spec, point);

            // Resume path: a point the journal recorded as completed — and
            // whose outcome is still in the cache — is restored with its
            // *original* provenance, so a resumed run's records (and CSV)
            // are byte-identical to an uninterrupted run's.
            let prior = if options.resume && !options.force_recompute {
                snapshot.get(&key.digest_hex)
            } else {
                None
            };
            if let Some(prior) = prior {
                if let Some(outcome) = cache.as_ref().and_then(|c| c.load::<PointOutcome>(&key)) {
                    observer.on_event(&CampaignEvent::PointRestored {
                        index,
                        from_cache: prior.from_cache,
                    });
                    let record = make_record(point, &key, outcome, prior.from_cache);
                    sink.on_record(index, &record);
                    let tally = Tally {
                        cached: false,
                        restored: true,
                        restored_hit: prior.from_cache,
                        coalesced: false,
                        failed: record.outcome.is_failure(),
                    };
                    return (retain.then_some(record), tally);
                }
                // Journaled but no longer in the cache (e.g. killed between
                // the journal append and the cache store): fall through and
                // recompute — restores never invent results.
            }

            // Cancellation drains the remaining points as failures without
            // evaluating them, keeping the one-terminal-event-per-point
            // stream invariant (and the final CampaignFinished) intact.
            if options.cancelled() {
                let error = "cancelled by service request".to_string();
                observer.on_event(&CampaignEvent::PointFailed {
                    index,
                    workload: point.workload.clone(),
                    organization: point.config.organization.label(),
                    config_id: point.config.mrf_config.id.0,
                    error: error.clone(),
                });
                let record = make_record(point, &key, PointOutcome::Error(error), false);
                sink.on_record(index, &record);
                let tally = Tally {
                    cached: false,
                    restored: false,
                    restored_hit: false,
                    coalesced: false,
                    failed: true,
                };
                return (retain.then_some(record), tally);
            }

            let cached = if options.force_recompute {
                None
            } else {
                cache.as_ref().and_then(|c| c.load::<PointOutcome>(&key))
            };
            let mut from_cache = cached.is_some();
            let mut coalesced = false;
            let outcome = match cached {
                Some(outcome) => outcome,
                None => {
                    // Single-flight dedup: claim the digest. A follower gets
                    // the leader's outcome fanned out; a leader (or an
                    // uncoordinated run) evaluates it here.
                    let claim = options
                        .coordinator
                        .as_ref()
                        .map(|coordinator| coordinator.claim(&key.digest_hex));
                    match claim {
                        Some(PointClaim::Coalesced(outcome)) => {
                            coalesced = true;
                            *outcome
                        }
                        lead => {
                            // A leader may have waited in `claim` for a pool
                            // permit while a *different* session finished
                            // this digest and published: re-check the shared
                            // cache once so each digest is evaluated at most
                            // once service-wide.
                            let recheck = if lead.is_some() && !options.force_recompute {
                                cache.as_ref().and_then(|c| c.load::<PointOutcome>(&key))
                            } else {
                                None
                            };
                            let outcome = match recheck {
                                Some(outcome) => {
                                    from_cache = true;
                                    outcome
                                }
                                None => {
                                    let outcome = evaluate_point(spec, point, &suite, key.seed);
                                    // Only successes are cached: failures may
                                    // be transient (and must stay visible on
                                    // every run until fixed).
                                    if let PointOutcome::Ok(_) = &outcome {
                                        // Journal *before* the cache store: a
                                        // kill between the two costs one
                                        // recompute on resume; the reverse
                                        // order would let the resume serve
                                        // the point as a live cache hit and
                                        // flip its recorded provenance.
                                        if let Some(journal) = &journal {
                                            if let Err(e) =
                                                journal.record(&key.digest_hex, key.seed, false)
                                            {
                                                eprintln!(
                                                    "sweep: failed to journal {}: {e}",
                                                    key.digest_hex
                                                );
                                            }
                                        }
                                        if let Some(cache) = &cache {
                                            if let Err(e) = cache.store(&key, &outcome) {
                                                eprintln!(
                                                    "sweep: failed to store {}: {e}",
                                                    key.digest_hex
                                                );
                                            }
                                        }
                                    }
                                    outcome
                                }
                            };
                            // Publish *after* the store so followers' later
                            // cache loads (and leaders' rechecks) can hit.
                            if let Some(coordinator) = &options.coordinator {
                                coordinator.publish(&key.digest_hex, &outcome);
                            }
                            outcome
                        }
                    }
                }
            };
            // A coalesced success carries cache provenance in its record:
            // by the time it is fanned out, the leader has stored it.
            let record_hit = from_cache || (coalesced && !outcome.is_failure());
            if record_hit {
                // A live hit (or a coalesced success) is a completed point
                // too: journal it (with its provenance) so a later kill
                // does not lose it.
                if let (Some(journal), PointOutcome::Ok(_)) = (&journal, &outcome) {
                    if snapshot.get(&key.digest_hex).is_none() {
                        if let Err(e) = journal.record(&key.digest_hex, key.seed, true) {
                            eprintln!("sweep: failed to journal {}: {e}", key.digest_hex);
                        }
                    }
                }
            }
            observer.on_event(&match &outcome {
                PointOutcome::Ok(_) if coalesced => CampaignEvent::PointCoalesced {
                    index,
                    digest: key.digest_hex.clone(),
                },
                PointOutcome::Ok(_) => CampaignEvent::PointFinished {
                    index,
                    cache_hit: from_cache,
                },
                PointOutcome::Error(e) | PointOutcome::Panicked(e) => CampaignEvent::PointFailed {
                    index,
                    workload: point.workload.clone(),
                    organization: point.config.organization.label(),
                    config_id: point.config.mrf_config.id.0,
                    error: e.clone(),
                },
            });
            let record = make_record(point, &key, outcome, record_hit);
            sink.on_record(index, &record);
            let tally = Tally {
                cached: from_cache,
                restored: false,
                restored_hit: false,
                coalesced,
                failed: record.outcome.is_failure(),
            };
            (retain.then_some(record), tally)
        });

        let mut totals = CampaignTotals {
            points: spec.points.len(),
            ..CampaignTotals::default()
        };
        let mut hit_records = 0usize;
        let mut records = Vec::with_capacity(if retain { spec.points.len() } else { 0 });
        for (index, (result, point)) in outcomes.into_iter().zip(&spec.points).enumerate() {
            let (record, tally) = result.unwrap_or_else(|panic_msg| {
                // The evaluation itself is already panic-isolated, so this
                // only triggers if record assembly or the cache panicked —
                // emit the failure so the stream (and the sink) still carry
                // one terminal event per point.
                observer.on_event(&CampaignEvent::PointFailed {
                    index,
                    workload: point.workload.clone(),
                    organization: point.config.organization.label(),
                    config_id: point.config.mrf_config.id.0,
                    error: panic_msg.clone(),
                });
                let key = point_key(spec, point);
                let record = make_record(point, &key, PointOutcome::Panicked(panic_msg), false);
                sink.on_record(index, &record);
                let tally = Tally {
                    cached: false,
                    restored: false,
                    restored_hit: false,
                    coalesced: false,
                    failed: true,
                };
                (retain.then_some(record), tally)
            });
            if tally.cached {
                totals.cached += 1;
            } else if tally.restored {
                totals.restored += 1;
            } else if tally.coalesced {
                totals.coalesced += 1;
            } else {
                totals.computed += 1;
            }
            if tally.failed {
                totals.failed += 1;
            }
            if tally.cached || tally.restored_hit || (tally.coalesced && !tally.failed) {
                hit_records += 1;
            }
            if let Some(record) = record {
                records.push(record);
            }
        }
        totals.hit_rate = if totals.points == 0 {
            0.0
        } else {
            hit_records as f64 / totals.points as f64
        };

        observer.on_event(&CampaignEvent::CampaignFinished {
            campaign: spec.name.clone(),
            computed: totals.computed,
            cached: totals.cached,
            restored: totals.restored,
            coalesced: totals.coalesced,
            failed: totals.failed,
            hit_rate: totals.hit_rate,
        });
        (records, totals)
    }
}

/// Per-point provenance bookkeeping carried back from the workers.
#[derive(Debug, Clone, Copy)]
struct Tally {
    cached: bool,
    restored: bool,
    restored_hit: bool,
    coalesced: bool,
    failed: bool,
}

/// Runs a campaign unobserved — the batch wrapper over
/// [`CampaignSession::run`], kept for callers that only want the final
/// [`SweepResults`].
///
/// Never fails as a whole: per-point problems (unknown workloads, runner
/// errors, panics) become failure records, and an unusable cache directory
/// degrades to running uncached with a note on stderr.
#[must_use]
pub fn run_sweep(spec: &SweepSpec, options: &ExecutorOptions) -> SweepResults {
    CampaignSession::new(spec, options).run(&Unobserved)
}

fn make_record(
    point: &SweepPoint,
    key: &PointKey,
    outcome: PointOutcome,
    from_cache: bool,
) -> PointRecord {
    PointRecord {
        point: point.clone(),
        digest_hex: key.digest_hex.clone(),
        seed: key.seed,
        outcome,
        from_cache,
    }
}

/// Evaluates one point, converting panics into [`PointOutcome::Panicked`].
///
/// Suite points resolve their workload by name against the evaluated suite;
/// generated points rematerialize theirs from the point's
/// [`GeneratedWorkload`](crate::spec::GeneratedWorkload) identity (an
/// index-stable draw, so the same identity always yields the same kernel);
/// trace points re-read, fingerprint-verify, and lower theirs from the
/// point's [`TraceWorkloadId`](ltrf_trace::TraceWorkloadId) (a missing,
/// edited, or malformed trace file becomes a typed per-point error, not a
/// campaign failure). Everything downstream — the runner, normalization
/// against the baseline at the same SM count, and power reporting — is
/// identical for all three.
fn evaluate_point(
    spec: &SweepSpec,
    point: &SweepPoint,
    suite: &HashMap<&str, Workload>,
    seed: u64,
) -> PointOutcome {
    let traced = match point
        .trace
        .as_ref()
        .map(ltrf_trace::TraceWorkloadId::materialize)
    {
        Some(Ok(workload)) => Some(workload),
        Some(Err(e)) => return PointOutcome::Error(e.to_string()),
        None => None,
    };
    let generated = point.generated.as_ref().map(|g| g.materialize());
    let workload = match (&traced, &generated, suite.get(point.workload.as_str())) {
        (Some(traced), _, _) => traced,
        (None, Some(generated), _) => generated,
        (None, None, Some(suite_workload)) => suite_workload,
        (None, None, None) => {
            return PointOutcome::Error(format!(
                "unknown workload `{}` (not in the evaluated suite)",
                point.workload
            ));
        }
    };
    let memory = point.memory.behavior(workload);
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if spec.normalize {
            run_normalized(&workload.kernel, memory, seed, &point.config).map(|n| PointData {
                result: n.result,
                normalized_ipc: Some(n.normalized_ipc),
                normalized_power: Some(n.normalized_power),
            })
        } else {
            run_experiment(&workload.kernel, memory, seed, &point.config).map(|r| PointData {
                result: r,
                normalized_ipc: None,
                normalized_power: None,
            })
        }
    }));
    match run {
        Ok(Ok(data)) => PointOutcome::Ok(data),
        Ok(Err(core_err)) => PointOutcome::Error(core_err.to_string()),
        Err(payload) => PointOutcome::Panicked(panic_message(payload)),
    }
}

/// Order-preserving parallel map over arbitrary items with panic isolation:
/// the engine's raw primitive, re-exported for harness code (the per-figure
/// experiment functions in `ltrf-bench`) that parallelizes shapes a
/// cross-product spec does not express.
pub fn parallel_points<T, R, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map(items, threads, |_, item| f(item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SeedMode;

    /// An empty campaign must report a 0.0 hit rate, not NaN: the vendored
    /// serde stand-in renders floats with `{:?}`, so a NaN flowing into
    /// `CampaignFinished{hit_rate}` would emit a literal `NaN` — invalid
    /// JSON — on the `--progress json` stream.
    #[test]
    fn empty_campaign_hit_rate_is_zero_not_nan() {
        let results = SweepResults {
            name: "empty".to_string(),
            records: Vec::new(),
        };
        let rate = results.cache_hit_rate();
        assert!(rate.is_finite(), "0/0 must not produce NaN");
        assert_eq!(rate, 0.0);

        let event = CampaignEvent::CampaignFinished {
            campaign: "empty".to_string(),
            computed: 0,
            cached: 0,
            restored: 0,
            coalesced: 0,
            failed: 0,
            hit_rate: rate,
        };
        let line = event.to_json_line();
        assert!(
            serde::from_json_str::<Value>(&line).is_ok(),
            "the finished event must stay valid JSON: {line}"
        );
        assert!(!line.contains("NaN"), "no NaN leakage: {line}");
    }

    /// The empty-spec degenerate case end to end: an executed zero-point
    /// campaign yields finite totals. (Built via a struct literal — the
    /// builder rejects empty workload axes by design.)
    #[test]
    fn zero_point_session_reports_finite_totals() {
        let spec = SweepSpec {
            name: "degenerate".to_string(),
            points: Vec::new(),
            seed_mode: SeedMode::Fixed(1),
            normalize: false,
        };
        let options = ExecutorOptions::default();
        let (results, totals) =
            CampaignSession::new(&spec, &options).run_with_sink(&Unobserved, &());
        assert!(results.is_empty());
        assert_eq!(totals.points, 0);
        assert!(totals.hit_rate.is_finite());
        assert_eq!(totals.hit_rate, 0.0);
    }

    /// `PointMeans::over` is the [`PointMeansAcc`] fold applied to an
    /// iterator; the degenerate cases must agree.
    #[test]
    fn point_means_acc_matches_over_on_empty() {
        assert_eq!(PointMeans::over(std::iter::empty()), None);
        assert_eq!(PointMeansAcc::default().finish(), None);
        assert_eq!(PointMeansAcc::default().count(), 0);
    }
}
