//! The checkpoint journal behind resumable campaigns.
//!
//! While a session runs, every point that *completes* (evaluated or served
//! from the cache) appends one line to a journal file: its content digest,
//! the seed it ran with, and the cache provenance it completed with. A rerun
//! of a killed campaign (`sweep <campaign> --resume`) loads the journal,
//! and any point whose digest appears in it — and whose outcome is still in
//! the result cache — is *restored* instead of re-evaluated, with its
//! original provenance, so the resumed run's reports are byte-identical to
//! an uninterrupted one.
//!
//! The file is line-delimited JSON: a header line naming the campaign, the
//! cache schema version, and the engine fingerprint (a mismatched header
//! invalidates the whole journal — stale checkpoints degrade to a full
//! recompute, never to wrong results), then one entry line per completed
//! point. Appends are flushed per line, and loading is tolerant the same
//! way the cache is: a torn or garbled line (a kill mid-append) is skipped,
//! never a panic, and costs at most that one point's recompute.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::cache::{CACHE_SCHEMA_VERSION, ENGINE_FINGERPRINT};

/// The journal's first line: which campaign and engine wrote it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JournalHeader {
    campaign: String,
    schema: u32,
    engine: String,
}

impl JournalHeader {
    fn current(campaign: &str) -> Self {
        JournalHeader {
            campaign: campaign.to_string(),
            schema: CACHE_SCHEMA_VERSION,
            engine: ENGINE_FINGERPRINT.to_string(),
        }
    }
}

/// One completed point, as journaled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JournalLine {
    digest: String,
    seed: u64,
    from_cache: bool,
}

/// The provenance a completed point was journaled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedPoint {
    /// The seed the point ran with (recorded for external tools; the
    /// executor re-derives it from the spec).
    pub seed: u64,
    /// Whether the point's outcome came from the cache when it first
    /// completed — restored records carry this original provenance so a
    /// resumed run's CSV matches an uninterrupted one byte for byte.
    pub from_cache: bool,
}

/// The completed points recovered from a journal file.
#[derive(Debug, Default)]
pub struct JournalSnapshot {
    entries: HashMap<String, CompletedPoint>,
}

impl JournalSnapshot {
    /// Loads the journal at `path` for `campaign`.
    ///
    /// Returns `None` when the file is missing or its header does not match
    /// the campaign, cache schema, and engine fingerprint — a stale journal
    /// is ignored wholesale. Entry lines are parsed tolerantly: anything
    /// unparsable (a partial last line from a kill mid-append, stray bytes)
    /// is skipped.
    #[must_use]
    pub fn load(path: &Path, campaign: &str) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        let header: JournalHeader = serde::from_json_str(lines.next()?).ok()?;
        if header != JournalHeader::current(campaign) {
            return None;
        }
        let mut entries = HashMap::new();
        for line in lines {
            let Ok(entry) = serde::from_json_str::<JournalLine>(line) else {
                continue;
            };
            entries.insert(
                entry.digest,
                CompletedPoint {
                    seed: entry.seed,
                    from_cache: entry.from_cache,
                },
            );
        }
        Some(JournalSnapshot { entries })
    }

    /// The journaled completion of the point with this digest, if any.
    #[must_use]
    pub fn get(&self, digest_hex: &str) -> Option<CompletedPoint> {
        self.entries.get(digest_hex).copied()
    }

    /// Number of completed points recovered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal recorded no completed points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The append side of a campaign's checkpoint journal.
///
/// Shared by the session's worker threads; each append is one `write` of a
/// whole line under a lock, flushed immediately, so a kill tears at most
/// the line being written (which [`JournalSnapshot::load`] skips).
#[derive(Debug)]
pub struct CampaignJournal {
    file: Mutex<File>,
}

impl CampaignJournal {
    /// Starts a fresh journal at `path`, truncating any previous one, and
    /// writes the header line.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created or
    /// the header cannot be written.
    pub fn create(path: &Path, campaign: &str) -> io::Result<Self> {
        let mut file = File::create(path)?;
        let header = serde::to_json_string(&JournalHeader::current(campaign));
        file.write_all(format!("{header}\n").as_bytes())?;
        file.flush()?;
        Ok(CampaignJournal {
            file: Mutex::new(file),
        })
    }

    /// Resumes the journal at `path`: loads the completed points recorded
    /// so far and reopens the file for appending. When the file is missing
    /// or its header is stale (another campaign, schema, or engine), the
    /// journal is recreated fresh and the snapshot is empty.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened.
    pub fn resume(path: &Path, campaign: &str) -> io::Result<(Self, JournalSnapshot)> {
        match JournalSnapshot::load(path, campaign) {
            Some(snapshot) => {
                let file = OpenOptions::new().append(true).open(path)?;
                Ok((
                    CampaignJournal {
                        file: Mutex::new(file),
                    },
                    snapshot,
                ))
            }
            None => Ok((Self::create(path, campaign)?, JournalSnapshot::default())),
        }
    }

    /// Appends one completed point.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers may treat a failed append
    /// as non-fatal (the point's result is still reported — only a future
    /// resume loses it).
    pub fn record(&self, digest_hex: &str, seed: u64, from_cache: bool) -> io::Result<()> {
        let line = serde::to_json_string(&JournalLine {
            digest: digest_hex.to_string(),
            seed,
            from_cache,
        });
        let mut file = self.file.lock().expect("journal file poisoned");
        file.write_all(format!("{line}\n").as_bytes())?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ltrf-journal-{tag}-{}", std::process::id()))
    }

    #[test]
    fn round_trips_entries_and_preserves_provenance() {
        let path = temp_path("round-trip");
        let journal = CampaignJournal::create(&path, "camp").unwrap();
        journal.record("aa", 7, false).unwrap();
        journal.record("bb", 8, true).unwrap();
        let snapshot = JournalSnapshot::load(&path, "camp").expect("valid journal");
        assert_eq!(snapshot.len(), 2);
        assert_eq!(
            snapshot.get("aa"),
            Some(CompletedPoint {
                seed: 7,
                from_cache: false
            })
        );
        assert_eq!(
            snapshot.get("bb"),
            Some(CompletedPoint {
                seed: 8,
                from_cache: true
            })
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_headers_invalidate_the_whole_journal() {
        let path = temp_path("stale");
        let journal = CampaignJournal::create(&path, "camp-a").unwrap();
        journal.record("aa", 1, false).unwrap();
        assert!(
            JournalSnapshot::load(&path, "camp-b").is_none(),
            "another campaign's journal must be ignored"
        );
        // Resuming under the other name recreates the journal fresh.
        let (journal, snapshot) = CampaignJournal::resume(&path, "camp-b").unwrap();
        assert!(snapshot.is_empty());
        journal.record("cc", 2, true).unwrap();
        let reloaded = JournalSnapshot::load(&path, "camp-b").expect("recreated");
        assert_eq!(reloaded.len(), 1);
        assert!(reloaded.get("aa").is_none(), "old entries are gone");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_appends_without_duplicating() {
        let path = temp_path("append");
        let journal = CampaignJournal::create(&path, "camp").unwrap();
        journal.record("aa", 1, false).unwrap();
        drop(journal);
        let (journal, snapshot) = CampaignJournal::resume(&path, "camp").unwrap();
        assert_eq!(snapshot.len(), 1);
        journal.record("bb", 2, false).unwrap();
        let reloaded = JournalSnapshot::load(&path, "camp").expect("valid");
        assert_eq!(reloaded.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_lines_are_skipped_not_fatal() {
        let path = temp_path("torn");
        let journal = CampaignJournal::create(&path, "camp").unwrap();
        journal.record("aa", 1, false).unwrap();
        drop(journal);
        // Simulate a kill mid-append: a partial JSON line with no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"digest\":\"bb\",\"se");
        std::fs::write(&path, text).unwrap();
        let snapshot = JournalSnapshot::load(&path, "camp").expect("valid header");
        assert_eq!(snapshot.len(), 1, "the torn line is skipped");
        assert!(snapshot.get("aa").is_some());
        let _ = std::fs::remove_file(&path);
    }
}
