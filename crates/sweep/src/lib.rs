//! # ltrf-sweep
//!
//! The design-space-exploration engine of the LTRF reproduction. The paper's
//! evaluation is a large cross-product — register-file organizations ×
//! workloads × Table 2 design points × latency factors — and this crate
//! turns that into a first-class, declarative, parallel campaign driver:
//!
//! * [`SweepSpec`] / [`SweepSpecBuilder`] enumerate arbitrary cross-products
//!   over [`ltrf_core::Organization`], workload selections (the evaluated
//!   suite and/or generated populations — see
//!   [`SweepSpecBuilder::generated_population`]),
//!   [`ltrf_core::ExperimentConfig`] design points, latency factors, SM
//!   counts (full-GPU campaigns with shared-L2/DRAM contention), and
//!   memory-behaviour variants;
//! * [`CampaignSession`] shards the run matrix across all cores with
//!   deterministic per-point seeds and panic isolation (one bad point
//!   yields an error record, not a dead campaign), emitting a typed
//!   [`CampaignEvent`] stream — point starts, finishes with cache
//!   provenance, failures, and the campaign summary — to any
//!   [`CampaignObserver`] (the CLI's progress printing and its
//!   `--progress json` mode are observers); [`run_sweep`] is the thin
//!   batch wrapper for callers that only want the final results, while
//!   [`CampaignSession::run_streaming`] pushes completed records into
//!   [`RecordSink`]s (streaming CSV, running aggregates — see [`stream`])
//!   without retaining them, and a checkpoint [`journal`] plus
//!   `--resume` makes killed campaigns restartable from where they
//!   stopped;
//! * [`ResultCache`] content-addresses outcomes (SHA-256 of the canonical
//!   point encoding, which includes `sm_count`) so re-running a figure only
//!   recomputes changed points;
//! * [`report`] renders campaigns as JSON and CSV (including the absolute
//!   power/energy columns behind the power artifacts), and the `sweep`
//!   binary reproduces *every* simulation-backed paper artifact end-to-end:
//!   Figures 9 and 11–14, Table 2, and the power sweep (`sweep power`, with
//!   `--access-energy-pj`/`--leakage-mw-per-kb`/`--dwm-write-penalty`
//!   calibration knobs; Figure 10 is its configuration-#7 slice) — each at
//!   an arbitrary SM count via `--sm-count` — plus `sweep repro`, which
//!   emits the whole artifact set into one directory with 100%-cache-hit
//!   warm reruns, the `gpu-scale` scaling campaign over an SM-count axis
//!   (`--sm-counts 1,2,4,8`), and `gen-campaign`, which sweeps a seeded
//!   random population of hundreds of generated kernels (`--population`,
//!   `--seed`, generator bounds as flags) far beyond the paper's fixed
//!   suite, and `trace-campaign`, which ingests accelsim-style kernel trace
//!   files (`--trace`, repeatable; the `ltrf-trace` frontend lowers each
//!   dynamic PC stream back into a CFG with recovered branch behaviors) and
//!   sweeps the lowered kernels under BL and LTRF — see
//!   [`SweepSpecBuilder::trace_population`] and
//!   [`campaigns::TraceCampaignParams`];
//! * [`campaigns`] holds the canonical spec constructors — exactly one
//!   definition per paper artifact — and [`api`] wraps them in the campaign
//!   registry: typed [`Campaign`] definitions (name/aliases, parameter
//!   schema, artifact kind, summary renderer) that the CLI *generates* its
//!   subcommands, `--help` text, and flag scoping from, that the bench
//!   harness (which attaches this engine's cache when `LTRF_CACHE_DIR` is
//!   set) dispatches through, and that the registry/golden/differential
//!   regression tests pin against `REPRODUCING.md`.
//!
//! * [`serve`] turns the engine into a long-lived campaign service:
//!   `sweep serve` daemonizes a line-delimited JSON protocol over TCP
//!   (submit/attach/status/cancel/shutdown) with registry-validated
//!   requests, concurrent sessions multiplexed over ONE shared cache, a
//!   bounded worker pool with single-flight dedup of identical in-flight
//!   points (surfaced as [`CampaignEvent::PointCoalesced`]), and
//!   disconnect-tolerant event streams replayable by session id — `sweep
//!   client` is the matching scriptable driver.
//!
//! `REPRODUCING.md` at the repository root maps every artifact to its
//! command, runtime, CSV schema, and cache behaviour.
//!
//! The per-figure harness in `ltrf-bench` drives its parallelism through
//! [`parallel_points`], so every `fig*`/`table*` binary rides this engine.
//!
//! ```
//! use ltrf_sweep::{run_sweep, ExecutorOptions, SweepSpec};
//! use ltrf_core::Organization;
//!
//! let spec = SweepSpec::builder("doc-example")
//!     .workloads(["hotspot"])
//!     .organizations([Organization::Baseline, Organization::Ltrf])
//!     .build();
//! let results = run_sweep(&spec, &ExecutorOptions::default());
//! assert_eq!(results.len(), 2);
//! assert_eq!(results.failure_count(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod campaigns;
pub mod executor;
pub mod hash;
pub mod journal;
pub mod packed;
pub mod pool;
pub mod report;
pub mod serve;
pub mod spec;
pub mod stream;

/// The fixed campaign seed shared by every driver of the engine (the
/// per-figure harness in `ltrf-bench` and the `sweep` CLI), so their cached
/// points are interchangeable. There is deliberately exactly one copy of
/// this literal in the workspace.
pub const CAMPAIGN_SEED: u64 = 0x17F2_2018;

pub use api::{registry, ArtifactKind, Campaign, CampaignParams, CampaignRegistry, ParamSpec};
pub use cache::{point_key, PointKey, ResultCache, CACHE_SCHEMA_VERSION, ENGINE_FINGERPRINT};
pub use campaigns::{GenCampaignParams, InterconnectCampaignParams, TraceCampaignParams};
pub use executor::{
    event_channel, parallel_points, relative_ipc_series, run_sweep, CampaignEvent,
    CampaignObserver, CampaignSession, CampaignTotals, EventLog, EventSender, ExecutorOptions,
    FanoutSink, PointClaim, PointCoordinator, PointData, PointMeans, PointMeansAcc, PointOutcome,
    PointRecord, RecordSink, SweepResults, Unobserved,
};
pub use journal::{CampaignJournal, CompletedPoint, JournalSnapshot};
pub use ltrf_trace::{LoweringBounds, TraceWorkloadId};
pub use packed::PackedStore;
pub use pool::{default_threads, parallel_map};
pub use serve::{
    client_request, client_stream, parse_request, validate_submit, CampaignServer, Request,
    ServeConfig, ServerHandle, SessionState, SingleFlight,
};
pub use spec::{
    GeneratedWorkload, MemorySelection, SeedMode, SweepPoint, SweepSpec, SweepSpecBuilder,
};
pub use stream::{AggregateSink, MemberTail, RunningAggregates, StreamingCsvWriter};

/// Cache-hit percentage floored to one decimal place: "100.0" only when
/// literally every point was a hit — the CI smoke jobs grep for it, and
/// `{:.1}` *rounding* would report 100.0% at 2999/3000. One decimal keeps a
/// single lost point visible at warm-rerun scale (an integer floor printed
/// a 99.9% rerun as "99", indistinguishable from a real regression).
/// Shared by the CLI summaries and the `repro` renderer in [`api`].
#[must_use]
pub fn hit_percent_1dp(cached: usize, total: usize) -> f64 {
    ((cached * 1000).checked_div(total).unwrap_or(0) as f64) / 10.0
}
