//! The first-class campaign API: a registry of typed [`Campaign`]
//! definitions that every front-end derives its surface from.
//!
//! Historically each campaign was wired up three separate times — a
//! hand-written match arm plus flag-scope table row in the `sweep` CLI, a
//! figure function in `ltrf-bench`, and test plumbing — so adding a campaign
//! meant editing ~5 files in lockstep. This module replaces that with one
//! declarative definition per campaign:
//!
//! * a [`Campaign`] carries the name/aliases, a one-line summary, the
//!   [`ArtifactKind`], the accepted [`ParamSpec`] schema (types, defaults,
//!   scope hints), the canonical spec constructor (delegating to
//!   [`crate::campaigns`]), and the summary renderer;
//! * the [`CampaignRegistry`] (see [`registry`]) holds exactly one entry per
//!   paper artifact plus the `gpu-scale`/`gen-campaign`/`repro` campaigns;
//! * the `sweep` CLI *generates* its subcommand dispatch, `--help` text, and
//!   flag cross-rejection from the registry (including `sweep list` /
//!   `sweep describe`), `ltrf-bench` dispatches its figure functions through
//!   the same entries, and the registry tests assert the set matches the
//!   `REPRODUCING.md` artifact atlas — so the three surfaces cannot drift.
//!
//! Execution is the session-based API of [`crate::executor`]: build the
//! specs from a [`CampaignParams`], run each through a
//! [`CampaignSession`](crate::CampaignSession), and observe the typed
//! [`CampaignEvent`](crate::CampaignEvent) stream.
//!
//! A registry entry is an ordinary value — front-ends beyond the built-in
//! ones can define their own end-to-end:
//!
//! ```
//! use ltrf_sweep::api::{ArtifactKind, Campaign, CampaignParams, RenderContext};
//! use ltrf_sweep::{CampaignSession, EventLog, ExecutorOptions, SweepSpec};
//!
//! // A campaign definition: name, schema, spec constructor, renderer.
//! static DOC_DEMO: Campaign = Campaign {
//!     name: "doc-demo",
//!     aliases: &["demo"],
//!     kind: ArtifactKind::BeyondPaper,
//!     paper_ref: "—",
//!     summary: "LTRF on one workload (rustdoc demonstration)",
//!     artifacts: "doc-demo.{csv,json}",
//!     params: &[&ltrf_sweep::api::params::QUICK],
//!     build: |params: &CampaignParams| {
//!         Ok(vec![SweepSpec::builder("doc-demo")
//!             .workloads(["hotspot"])
//!             .seed_mode(params.seed_mode())
//!             .build()])
//!     },
//!     preamble: |_specs: &[ltrf_sweep::SweepSpec], _ctx: &RenderContext| String::new(),
//!     render: |_results, _ctx| Ok(()),
//!     fail_on_point_failure: false,
//! };
//!
//! // Drive it exactly as the CLI drives registry entries.
//! let params = CampaignParams::default();
//! let specs = (DOC_DEMO.build)(&params).unwrap();
//! let log = EventLog::new();
//! let options = ExecutorOptions::default();
//! let results = CampaignSession::new(&specs[0], &options).run(&log);
//! assert_eq!(results.len(), 1);
//! // One CampaignStarted + per-point Started/Finished + one CampaignFinished.
//! assert_eq!(log.take().len(), 2 + 2 * results.len());
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use ltrf_core::Organization;
use ltrf_tech::configs::RegFileConfig;
use ltrf_tech::PowerParams;
use ltrf_workloads::{GeneratorConfig, QUICK_SUBSET};

use ltrf_sim::Topology;

use crate::campaigns::{
    self, GenCampaignParams, InterconnectCampaignParams, TraceCampaignParams, FIG11_ORGS,
    FIG9_ORGS, GEN_CAMPAIGN_ORGS, POWER_ORGS,
};
use crate::executor::{PointRecord, SweepResults};
use crate::spec::{SeedMode, SweepSpec};
use crate::stream::RunningAggregates;
use crate::CAMPAIGN_SEED;

// ---------------------------------------------------------------------------
// Campaign parameters — the typed value every front-end fills in
// ---------------------------------------------------------------------------

/// The parameters a campaign can be invoked with, every one optional.
///
/// This is the single parameter vocabulary across all campaigns; which
/// subset a given campaign *accepts* is declared by its
/// [`Campaign::params`] schema (the CLI rejects out-of-scope flags with a
/// pointer to the right campaign, generated from the registry). The
/// default value reproduces the committed artifacts: full suite, fixed
/// campaign seed, one SM, default generator bounds and power calibration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignParams {
    /// Run the four-workload quick subset instead of the full suite.
    pub quick: bool,
    /// Derive a distinct seed per point instead of the fixed campaign seed.
    pub per_point_seeds: bool,
    /// SM count of single-count campaigns (`None` = 1, the classic
    /// single-SM configuration).
    pub sm_count: Option<usize>,
    /// The SM-count axis of `gpu-scale` (`None` = 1,2,4,8).
    pub sm_counts: Option<Vec<usize>>,
    /// Population size of `gen-campaign` (`None` = 64).
    pub population: Option<usize>,
    /// Population seed of `gen-campaign` (`None` = the campaign seed).
    pub population_seed: Option<u64>,
    /// Generator-bound overrides of `gen-campaign` (each `None` keeps the
    /// corresponding [`GeneratorConfig::default`] bound).
    pub min_regs: Option<u16>,
    /// See [`CampaignParams::min_regs`].
    pub max_regs: Option<u16>,
    /// See [`CampaignParams::min_regs`].
    pub max_outer_trips: Option<u32>,
    /// See [`CampaignParams::min_regs`].
    pub max_inner_trips: Option<u32>,
    /// See [`CampaignParams::min_regs`].
    pub max_body_alu: Option<usize>,
    /// See [`CampaignParams::min_regs`].
    pub max_body_loads: Option<usize>,
    /// Power-model calibration overrides of `power` (each `None` keeps the
    /// corresponding [`PowerParams::default`] knob).
    pub access_energy_pj: Option<f64>,
    /// See [`CampaignParams::access_energy_pj`].
    pub leakage_mw_per_kb: Option<f64>,
    /// See [`CampaignParams::access_energy_pj`].
    pub dwm_write_penalty: Option<f64>,
    /// Trace files of `trace-campaign`, in axis order (empty = the three
    /// checked-in example traces under `examples/traces/`).
    pub trace_paths: Vec<String>,
    /// The single topology `interconnect` sweeps (`None` = the default
    /// ideal-vs-crossbar comparison).
    pub topology: Option<Topology>,
    /// Link width in bytes per cycle of `interconnect` (`None` = the
    /// [`ltrf_sim::InterconnectConfig::default`] width).
    pub link_width: Option<u64>,
    /// Bounded per-link queue depth of `interconnect` (`None` = the
    /// [`ltrf_sim::InterconnectConfig::default`] depth).
    pub queue_depth: Option<usize>,
}

impl CampaignParams {
    /// The selected workload names: the `--quick` subset or the full
    /// evaluated suite.
    #[must_use]
    pub fn workload_names(&self) -> Vec<String> {
        if self.quick {
            QUICK_SUBSET.iter().map(|w| (*w).to_string()).collect()
        } else {
            ltrf_workloads::evaluated_suite()
                .iter()
                .map(|w| w.name().to_string())
                .collect()
        }
    }

    /// The seeding policy: the paper's fixed campaign seed, or per-point
    /// seeds derived from it.
    #[must_use]
    pub fn seed_mode(&self) -> SeedMode {
        if self.per_point_seeds {
            SeedMode::PerPoint(CAMPAIGN_SEED)
        } else {
            SeedMode::Fixed(CAMPAIGN_SEED)
        }
    }

    /// The `--sm-count` value for a single-count campaign (default 1).
    #[must_use]
    pub fn single_sm_count(&self) -> usize {
        self.sm_count.unwrap_or(1)
    }

    /// The `--sm-counts` axis for `gpu-scale` (default 1,2,4,8).
    #[must_use]
    pub fn sm_count_axis(&self) -> Vec<usize> {
        self.sm_counts.clone().unwrap_or_else(|| vec![1, 2, 4, 8])
    }

    /// Assembles the power-model calibration from the overrides, with
    /// friendly flag-named errors instead of the library's
    /// campaign-definition panics.
    ///
    /// # Errors
    ///
    /// Returns the validation complaint, translated to CLI flag names.
    pub fn power_params(&self) -> Result<PowerParams, String> {
        let defaults = PowerParams::default();
        let params = PowerParams {
            base_access_pj: self.access_energy_pj.unwrap_or(defaults.base_access_pj),
            base_leakage_mw_per_kb: self
                .leakage_mw_per_kb
                .unwrap_or(defaults.base_leakage_mw_per_kb),
            dwm_write_penalty: self.dwm_write_penalty.unwrap_or(defaults.dwm_write_penalty),
        };
        params.validate().map_err(|complaint| {
            // The library complains in field names; translate to the flags.
            let complaint = complaint
                .replace("base_access_pj", "--access-energy-pj")
                .replace("base_leakage_mw_per_kb", "--leakage-mw-per-kb")
                .replace("dwm_write_penalty", "--dwm-write-penalty");
            format!("power calibration: {complaint}")
        })?;
        Ok(params)
    }

    /// Assembles the generator bounds from the overrides, with friendly
    /// errors instead of the library's campaign-definition panics.
    ///
    /// # Errors
    ///
    /// Returns the validation complaint.
    pub fn generator_config(&self) -> Result<GeneratorConfig, String> {
        let defaults = GeneratorConfig::default();
        let config = GeneratorConfig {
            min_regs: self.min_regs.unwrap_or(defaults.min_regs),
            max_regs: self.max_regs.unwrap_or(defaults.max_regs),
            max_outer_trips: self.max_outer_trips.unwrap_or(defaults.max_outer_trips),
            max_inner_trips: self.max_inner_trips.unwrap_or(defaults.max_inner_trips),
            max_body_alu: self.max_body_alu.unwrap_or(defaults.max_body_alu),
            max_body_loads: self.max_body_loads.unwrap_or(defaults.max_body_loads),
        };
        config
            .validate()
            .map_err(|complaint| format!("generator bounds: {complaint}"))?;
        Ok(config)
    }

    /// Assembles the full generated-campaign parameters.
    ///
    /// # Errors
    ///
    /// Returns a friendly message for an empty population or degenerate
    /// generator bounds.
    pub fn gen_params(&self) -> Result<GenCampaignParams, String> {
        let population = self.population.unwrap_or(64);
        if population == 0 {
            return Err("--population must be at least 1".to_string());
        }
        Ok(GenCampaignParams {
            population,
            population_seed: self.population_seed.unwrap_or(CAMPAIGN_SEED),
            config: self.generator_config()?,
            sm_count: self.single_sm_count(),
            seed_mode: self.seed_mode(),
        })
    }

    /// Assembles the interconnect-campaign parameters: one topology from
    /// `--topology` (default ideal + crossbar), the link provisioning
    /// knobs, and the contention-reaching SM-count axis (`--sm-counts`,
    /// default 1,4,16).
    #[must_use]
    pub fn interconnect_params(&self) -> InterconnectCampaignParams {
        let defaults = InterconnectCampaignParams::default();
        InterconnectCampaignParams {
            topologies: match self.topology {
                Some(topology) => vec![topology],
                None => defaults.topologies,
            },
            link_width: self.link_width.unwrap_or(defaults.link_width).max(1),
            queue_depth: self.queue_depth.unwrap_or(defaults.queue_depth).max(1),
            sm_counts: self.sm_counts.clone().unwrap_or(defaults.sm_counts),
            seed_mode: self.seed_mode(),
        }
    }

    /// The default trace set of `trace-campaign` when no `--trace` is
    /// given: the three checked-in example traces, relative to the
    /// repository root.
    pub const DEFAULT_TRACES: [&'static str; 3] = [
        "examples/traces/straight_line.trace",
        "examples/traces/divergent_loop.trace",
        "examples/traces/high_register_pressure.trace",
    ];

    /// Assembles the full trace-campaign parameters: reads and fingerprints
    /// every `--trace` file (or the [`CampaignParams::DEFAULT_TRACES`] when
    /// none were given), with friendly per-file errors.
    ///
    /// # Errors
    ///
    /// Returns a `--trace`-named message for an unreadable or malformed
    /// trace file.
    pub fn trace_params(&self) -> Result<TraceCampaignParams, String> {
        let paths: Vec<String> = if self.trace_paths.is_empty() {
            Self::DEFAULT_TRACES
                .iter()
                .map(|p| (*p).to_string())
                .collect()
        } else {
            self.trace_paths.clone()
        };
        let traces = paths
            .iter()
            .map(|path| {
                let id = ltrf_trace::TraceWorkloadId::from_path(path)
                    .map_err(|e| format!("--trace {path}: {e}"))?;
                // Parse and lower once up front so a malformed trace is one
                // friendly error here, not a per-point failure per config.
                id.materialize()
                    .map_err(|e| format!("--trace {path}: {e}"))?;
                Ok(id)
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(TraceCampaignParams {
            traces,
            sm_count: self.single_sm_count(),
            seed_mode: self.seed_mode(),
        })
    }
}

// ---------------------------------------------------------------------------
// Parameter schema — typed flags with defaults and scope hints
// ---------------------------------------------------------------------------

/// The value shape a parameter takes on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamType {
    /// A bare switch with no value (`--quick`).
    Switch,
    /// An integer value (`--sm-count 4`).
    Int,
    /// A floating-point value (`--access-energy-pj 75`).
    Float,
    /// A comma-separated integer list (`--sm-counts 1,2,4,8`).
    IntList,
    /// A file path (`--trace examples/traces/straight_line.trace`),
    /// repeatable to accumulate several.
    Path,
    /// A keyword from a fixed vocabulary (`--topology mesh`).
    Word,
}

impl ParamType {
    /// The type's name in `describe --json` output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ParamType::Switch => "switch",
            ParamType::Int => "int",
            ParamType::Float => "float",
            ParamType::IntList => "int_list",
            ParamType::Path => "path",
            ParamType::Word => "word",
        }
    }
}

/// One accepted parameter of a campaign: the flag, its value shape,
/// default, help text, the hint shown when it lands on the wrong campaign,
/// and the parser that applies it to a [`CampaignParams`].
#[derive(Debug)]
pub struct ParamSpec {
    /// The flag as typed (`--sm-count`).
    pub flag: &'static str,
    /// Placeholder for the value in help text (`N`); `None` for switches.
    pub value_name: Option<&'static str>,
    /// The value shape.
    pub ty: ParamType,
    /// Human description of the default.
    pub default: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// Appended to the cross-rejection message when the flag is given to a
    /// campaign that does not accept it, pointing at the right usage.
    pub hint: &'static str,
    /// Parses the raw value (`None` for switches) into `params`.
    pub apply: fn(&mut CampaignParams, Option<&str>) -> Result<(), String>,
}

impl ParamSpec {
    /// Whether the flag consumes a value argument.
    #[must_use]
    pub fn takes_value(&self) -> bool {
        self.value_name.is_some()
    }

    /// The flag with its value placeholder, as shown in help text.
    #[must_use]
    pub fn usage(&self) -> String {
        match self.value_name {
            Some(value) => format!("{} {value}", self.flag),
            None => self.flag.to_string(),
        }
    }

    /// Parses `value` and applies it to `params`.
    ///
    /// # Errors
    ///
    /// Returns a flag-named message for a missing or malformed value.
    pub fn apply(&self, params: &mut CampaignParams, value: Option<&str>) -> Result<(), String> {
        (self.apply)(params, value)
    }
}

/// Parses the value after a `--flag VALUE` pair.
fn parsed<T: std::str::FromStr>(flag: &str, value: Option<&str>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

/// The parameter vocabulary: one static [`ParamSpec`] per flag, referenced
/// by every campaign that accepts it. Kept in a child module so front-ends
/// (and the doctest above) can name individual specs.
pub mod params {
    use super::{parsed, ParamSpec, ParamType};

    /// `--quick`: the four-workload subset.
    pub static QUICK: ParamSpec = ParamSpec {
        flag: "--quick",
        value_name: None,
        ty: ParamType::Switch,
        default: "full suite",
        help: "four-workload subset instead of the full suite",
        hint: "size a gen-campaign with --population N instead",
        apply: |p, _| {
            p.quick = true;
            Ok(())
        },
    };

    /// `--per-point-seeds`: decorrelated per-point seeding.
    pub static PER_POINT_SEEDS: ParamSpec = ParamSpec {
        flag: "--per-point-seeds",
        value_name: None,
        ty: ParamType::Switch,
        default: "the paper's fixed campaign seed",
        help: "derive a distinct seed per point instead of the fixed campaign seed",
        hint: "every campaign accepts it",
        apply: |p, _| {
            p.per_point_seeds = true;
            Ok(())
        },
    };

    /// `--sm-count N`: SMs per point for single-count campaigns.
    pub static SM_COUNT: ParamSpec = ParamSpec {
        flag: "--sm-count",
        value_name: Some("N"),
        ty: ParamType::Int,
        default: "1 (the classic single-SM campaigns)",
        help: "simulate N SMs sharing the L2/DRAM",
        hint: "use --sm-counts A,B,.. for the gpu-scale axis",
        apply: |p, v| {
            p.sm_count = Some(parsed::<usize>("--sm-count", v)?.max(1));
            Ok(())
        },
    };

    /// `--sm-counts A,B,..`: the SM-count axis of `gpu-scale` and
    /// `interconnect`.
    pub static SM_COUNTS: ParamSpec = ParamSpec {
        flag: "--sm-counts",
        value_name: Some("A,B,.."),
        ty: ParamType::IntList,
        default: "1,2,4,8 (gpu-scale) / 1,4,16 (interconnect)",
        help: "the SM-count axis of gpu-scale and interconnect",
        hint: "use --sm-count N for a single-count campaign",
        apply: |p, v| {
            let list = v.ok_or("--sm-counts needs a comma list")?;
            let counts: Vec<usize> = list
                .split(',')
                .map(|c| {
                    c.trim()
                        .parse::<usize>()
                        .map_err(|e| format!("--sm-counts: {e}"))
                })
                .collect::<Result<_, _>>()?;
            if counts.is_empty() || counts.contains(&0) {
                return Err("--sm-counts needs positive counts".to_string());
            }
            p.sm_counts = Some(counts);
            Ok(())
        },
    };

    /// `--population N`: population size of `gen-campaign`.
    pub static POPULATION: ParamSpec = ParamSpec {
        flag: "--population",
        value_name: Some("N"),
        ty: ParamType::Int,
        default: "64",
        help: "generated population size",
        hint: "it configures the generated population (use `sweep gen-campaign`)",
        apply: |p, v| {
            p.population = Some(parsed("--population", v)?);
            Ok(())
        },
    };

    /// `--seed S`: population seed of `gen-campaign`.
    pub static SEED: ParamSpec = ParamSpec {
        flag: "--seed",
        value_name: Some("S"),
        ty: ParamType::Int,
        default: "the campaign seed",
        help: "generated population seed",
        hint: "it configures the generated population (use `sweep gen-campaign`)",
        apply: |p, v| {
            p.population_seed = Some(parsed("--seed", v)?);
            Ok(())
        },
    };

    /// `--min-regs R`: generator lower register bound.
    pub static MIN_REGS: ParamSpec = ParamSpec {
        flag: "--min-regs",
        value_name: Some("R"),
        ty: ParamType::Int,
        default: "GeneratorConfig::default",
        help: "registers-per-thread lower bound of the generator",
        hint: "it configures the generated population (use `sweep gen-campaign`)",
        apply: |p, v| {
            p.min_regs = Some(parsed("--min-regs", v)?);
            Ok(())
        },
    };

    /// `--max-regs R`: generator upper register bound.
    pub static MAX_REGS: ParamSpec = ParamSpec {
        flag: "--max-regs",
        value_name: Some("R"),
        ty: ParamType::Int,
        default: "GeneratorConfig::default",
        help: "registers-per-thread upper bound of the generator",
        hint: "it configures the generated population (use `sweep gen-campaign`)",
        apply: |p, v| {
            p.max_regs = Some(parsed("--max-regs", v)?);
            Ok(())
        },
    };

    /// `--max-outer-trips N`: generator outer-loop trip bound.
    pub static MAX_OUTER_TRIPS: ParamSpec = ParamSpec {
        flag: "--max-outer-trips",
        value_name: Some("N"),
        ty: ParamType::Int,
        default: "GeneratorConfig::default",
        help: "outer-loop trip-count bound of the generator",
        hint: "it configures the generated population (use `sweep gen-campaign`)",
        apply: |p, v| {
            p.max_outer_trips = Some(parsed("--max-outer-trips", v)?);
            Ok(())
        },
    };

    /// `--max-inner-trips N`: generator inner-loop trip bound.
    pub static MAX_INNER_TRIPS: ParamSpec = ParamSpec {
        flag: "--max-inner-trips",
        value_name: Some("N"),
        ty: ParamType::Int,
        default: "GeneratorConfig::default",
        help: "inner-loop trip-count bound of the generator",
        hint: "it configures the generated population (use `sweep gen-campaign`)",
        apply: |p, v| {
            p.max_inner_trips = Some(parsed("--max-inner-trips", v)?);
            Ok(())
        },
    };

    /// `--max-body-alu N`: generator loop-body ALU bound.
    pub static MAX_BODY_ALU: ParamSpec = ParamSpec {
        flag: "--max-body-alu",
        value_name: Some("N"),
        ty: ParamType::Int,
        default: "GeneratorConfig::default",
        help: "inner-loop body ALU-op bound of the generator",
        hint: "it configures the generated population (use `sweep gen-campaign`)",
        apply: |p, v| {
            p.max_body_alu = Some(parsed("--max-body-alu", v)?);
            Ok(())
        },
    };

    /// `--max-body-loads N`: generator loop-body load bound.
    pub static MAX_BODY_LOADS: ParamSpec = ParamSpec {
        flag: "--max-body-loads",
        value_name: Some("N"),
        ty: ParamType::Int,
        default: "GeneratorConfig::default",
        help: "inner-loop body load bound of the generator",
        hint: "it configures the generated population (use `sweep gen-campaign`)",
        apply: |p, v| {
            p.max_body_loads = Some(parsed("--max-body-loads", v)?);
            Ok(())
        },
    };

    /// `--access-energy-pj E`: power-model dynamic-energy anchor.
    pub static ACCESS_ENERGY_PJ: ParamSpec = ParamSpec {
        flag: "--access-energy-pj",
        value_name: Some("E"),
        ty: ParamType::Float,
        default: "50 pJ",
        help: "per-access dynamic-energy anchor of the power model, in pJ",
        hint: "it recalibrates the power model (use `sweep power`)",
        apply: |p, v| {
            p.access_energy_pj = Some(parsed("--access-energy-pj", v)?);
            Ok(())
        },
    };

    /// `--leakage-mw-per-kb L`: power-model static-power anchor.
    pub static LEAKAGE_MW_PER_KB: ParamSpec = ParamSpec {
        flag: "--leakage-mw-per-kb",
        value_name: Some("L"),
        ty: ParamType::Float,
        default: "0.16 mW/KB",
        help: "static-power anchor of the power model, in mW per KB",
        hint: "it recalibrates the power model (use `sweep power`)",
        apply: |p, v| {
            p.leakage_mw_per_kb = Some(parsed("--leakage-mw-per-kb", v)?);
            Ok(())
        },
    };

    /// `--trace PATH`: a trace file of `trace-campaign`; repeatable.
    pub static TRACE: ParamSpec = ParamSpec {
        flag: "--trace",
        value_name: Some("PATH"),
        ty: ParamType::Path,
        default: "the three example traces under examples/traces/",
        help: "an accelsim-style kernel trace file to lower and sweep (repeatable)",
        hint: "it selects trace workloads (use `sweep trace-campaign`)",
        apply: |p, v| {
            let path = v.ok_or("--trace needs a file path")?;
            p.trace_paths.push(path.to_string());
            Ok(())
        },
    };

    /// `--topology T`: the single topology `interconnect` sweeps.
    pub static TOPOLOGY: ParamSpec = ParamSpec {
        flag: "--topology",
        value_name: Some("T"),
        ty: ParamType::Word,
        default: "ideal and crossbar, one spec each",
        help: "restrict the topology axis to one of ideal|crossbar|mesh",
        hint: "it selects the SM<->L2 network (use `sweep interconnect`)",
        apply: |p, v| {
            p.topology = Some(parsed("--topology", v)?);
            Ok(())
        },
    };

    /// `--link-width B`: network link width in bytes per cycle.
    pub static LINK_WIDTH: ParamSpec = ParamSpec {
        flag: "--link-width",
        value_name: Some("B"),
        ty: ParamType::Int,
        default: "32 bytes/cycle",
        help: "network link width in bytes per cycle (non-ideal topologies)",
        hint: "it provisions the SM<->L2 network (use `sweep interconnect`)",
        apply: |p, v| {
            p.link_width = Some(parsed::<u64>("--link-width", v)?.max(1));
            Ok(())
        },
    };

    /// `--queue-depth N`: bounded per-link queue depth.
    pub static QUEUE_DEPTH: ParamSpec = ParamSpec {
        flag: "--queue-depth",
        value_name: Some("N"),
        ty: ParamType::Int,
        default: "8 in-flight transfers per link",
        help: "bounded per-link queue depth (non-ideal topologies)",
        hint: "it provisions the SM<->L2 network (use `sweep interconnect`)",
        apply: |p, v| {
            p.queue_depth = Some(parsed::<usize>("--queue-depth", v)?.max(1));
            Ok(())
        },
    };

    /// `--dwm-write-penalty P`: DWM write/read energy ratio.
    pub static DWM_WRITE_PENALTY: ParamSpec = ParamSpec {
        flag: "--dwm-write-penalty",
        value_name: Some("P"),
        ty: ParamType::Float,
        default: "1.4",
        help: "DWM write/read energy ratio of the power model",
        hint: "it recalibrates the power model (use `sweep power`)",
        apply: |p, v| {
            p.dwm_write_penalty = Some(parsed("--dwm-write-penalty", v)?);
            Ok(())
        },
    };
}

use params as p;

/// The parameter set of the plain suite campaigns (fig9/11/12/13/14,
/// table2, repro).
static SUITE_PARAMS: [&ParamSpec; 3] = [&p::QUICK, &p::SM_COUNT, &p::PER_POINT_SEEDS];

/// The parameter set of `power`: the suite parameters plus the calibration
/// knobs.
static POWER_CAMPAIGN_PARAMS: [&ParamSpec; 6] = [
    &p::QUICK,
    &p::SM_COUNT,
    &p::PER_POINT_SEEDS,
    &p::ACCESS_ENERGY_PJ,
    &p::LEAKAGE_MW_PER_KB,
    &p::DWM_WRITE_PENALTY,
];

/// The parameter set of `gpu-scale`: `--quick` subsets its workload axis,
/// and the SM count is an axis rather than a single value.
static GPU_SCALE_PARAMS: [&ParamSpec; 3] = [&p::QUICK, &p::SM_COUNTS, &p::PER_POINT_SEEDS];

/// The parameter set of `gen-campaign`: sized by `--population` (not
/// `--quick`), seeded and bounded by the generator knobs.
static GEN_CAMPAIGN_PARAMS: [&ParamSpec; 10] = [
    &p::SM_COUNT,
    &p::PER_POINT_SEEDS,
    &p::POPULATION,
    &p::SEED,
    &p::MIN_REGS,
    &p::MAX_REGS,
    &p::MAX_OUTER_TRIPS,
    &p::MAX_INNER_TRIPS,
    &p::MAX_BODY_ALU,
    &p::MAX_BODY_LOADS,
];

/// The parameter set of `trace-campaign`: sized by its `--trace` files (not
/// `--quick`), plus the shared SM-count and seeding knobs.
static TRACE_CAMPAIGN_PARAMS: [&ParamSpec; 3] = [&p::TRACE, &p::SM_COUNT, &p::PER_POINT_SEEDS];

/// The parameter set of `interconnect`: the SM count is an axis (contention
/// needs many SMs), plus the topology selection and link provisioning.
static INTERCONNECT_PARAMS: [&ParamSpec; 6] = [
    &p::QUICK,
    &p::SM_COUNTS,
    &p::PER_POINT_SEEDS,
    &p::TOPOLOGY,
    &p::LINK_WIDTH,
    &p::QUEUE_DEPTH,
];

// ---------------------------------------------------------------------------
// Campaign definitions
// ---------------------------------------------------------------------------

/// What kind of artifact a campaign reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A figure of the paper.
    PaperFigure,
    /// A table of the paper.
    PaperTable,
    /// A beyond-paper study (scaling, generated populations).
    BeyondPaper,
    /// A meta-campaign composing other campaigns (`repro`).
    Meta,
}

impl ArtifactKind {
    /// The kind's label in `list`/`describe` output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::PaperFigure => "paper figure",
            ArtifactKind::PaperTable => "paper table",
            ArtifactKind::BeyondPaper => "beyond paper",
            ArtifactKind::Meta => "meta",
        }
    }
}

/// Context handed to a campaign's preamble and summary renderer: the
/// invocation's parameters, the report directory, and (after execution)
/// the streaming aggregates.
#[derive(Debug, Clone, Copy)]
pub struct RenderContext<'a> {
    /// The parameters the campaign was invoked with.
    pub params: &'a CampaignParams,
    /// The directory the CSV/JSON reports were (or will be) written to.
    pub out_dir: &'a Path,
    /// The per-campaign running aggregates folded while the points
    /// streamed, parallel to the renderer's `results` slice. Empty before
    /// execution (preambles) and for front-ends that have not adopted
    /// streaming; renderers fall back to
    /// [`RunningAggregates::from_results`] then.
    pub aggregates: &'a [RunningAggregates],
}

impl RenderContext<'_> {
    /// The aggregates for the `index`-th campaign of the invocation,
    /// folding them from the retained records when the front-end did not
    /// stream them.
    #[must_use]
    pub fn aggregates_for(&self, index: usize, results: &SweepResults) -> RunningAggregates {
        self.aggregates
            .get(index)
            .cloned()
            .unwrap_or_else(|| RunningAggregates::from_results(results))
    }
}

/// One registered campaign: everything a front-end needs to list it,
/// document it, build its specs, and render its summary.
#[derive(Debug)]
pub struct Campaign {
    /// Canonical name (the CLI subcommand and report-file base name).
    pub name: &'static str,
    /// Accepted alternative names (`sweep figure9` ≡ `sweep fig9`;
    /// `sweep fig10` runs `power`, whose configuration-#7 slice it is).
    pub aliases: &'static [&'static str],
    /// The artifact kind.
    pub kind: ArtifactKind,
    /// The paper artifact reproduced (`"Figure 9"`, `"—"` for beyond-paper
    /// campaigns).
    pub paper_ref: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// The report files the campaign writes (human description).
    pub artifacts: &'static str,
    /// The accepted parameter schema (global execution options — `--out`,
    /// `--cache`, `--threads`, … — are front-end concerns, not campaign
    /// parameters).
    pub params: &'static [&'static ParamSpec],
    /// The canonical spec constructor: one spec for ordinary campaigns,
    /// several for meta-campaigns (`repro`). Delegates to
    /// [`crate::campaigns`], so registry-driven and direct callers agree
    /// byte for byte.
    pub build: fn(&CampaignParams) -> Result<Vec<SweepSpec>, String>,
    /// Text printed before execution (the Table 2 design-point listing,
    /// the power-calibration line), given the specs the invocation is
    /// about to run; empty for most campaigns.
    pub preamble: fn(&[SweepSpec], &RenderContext) -> String,
    /// Renders the campaign's summary (the paper-shaped tables the CLI
    /// prints after the raw reports are written). An `Err` makes the
    /// invocation fail.
    pub render: fn(&[SweepResults], &RenderContext) -> Result<(), String>,
    /// Whether any failed point fails the whole invocation (`repro`: its
    /// contract is the complete artifact set). Ordinary campaigns report
    /// failures in their records/events and still exit successfully.
    pub fail_on_point_failure: bool,
}

impl Campaign {
    /// Whether this campaign accepts the given parameter.
    #[must_use]
    pub fn accepts(&self, spec: &ParamSpec) -> bool {
        self.params
            .iter()
            .any(|candidate| candidate.flag == spec.flag)
    }

    /// Builds the campaign's sweep specs from `params`.
    ///
    /// # Errors
    ///
    /// Returns a friendly message for invalid parameter combinations
    /// (degenerate generator bounds, empty populations, bad calibrations).
    pub fn specs(&self, params: &CampaignParams) -> Result<Vec<SweepSpec>, String> {
        (self.build)(params)
    }

    /// All names the campaign answers to: the canonical name, then aliases.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        std::iter::once(self.name).chain(self.aliases.iter().copied())
    }
}

// ---------------------------------------------------------------------------
// Summary renderers (moved here from the CLI so every front-end shares them)
// ---------------------------------------------------------------------------

/// Renders nothing (campaigns whose CSV/JSON reports are the whole story).
fn no_preamble(_specs: &[SweepSpec], _ctx: &RenderContext) -> String {
    String::new()
}

/// One summary row of a latency-sweep campaign: a label and the predicate
/// selecting the series' points.
type LatencySeries<'a> = (String, Box<dyn Fn(&PointRecord) -> bool + 'a>);

/// Prints a latency-sweep summary table: one row per series, one column per
/// latency factor, via the engine's canonical
/// [`crate::relative_ipc_series`] aggregation (the CSV report carries the
/// raw per-point rows).
fn print_latency_series(results: &SweepResults, factors: &[f64], series: &[LatencySeries<'_>]) {
    print!("  {:<22}", "Series");
    for factor in factors {
        print!(" {factor:>5.0}x");
    }
    println!();
    for (label, select) in series {
        match crate::relative_ipc_series(results, factors, select.as_ref()) {
            Some(means) => {
                print!("  {label:<22}");
                for mean in means {
                    print!(" {mean:>6.2}");
                }
                println!();
            }
            None => println!("  {label:<22} (no complete curves)"),
        }
    }
}

fn render_fig9(results: &[SweepResults], _ctx: &RenderContext) -> Result<(), String> {
    let results = &results[0];
    for config_id in [6u8, 7] {
        println!(
            "\nFigure 9{}: configuration #{config_id}, mean IPC normalized to baseline",
            if config_id == 6 { 'a' } else { 'b' }
        );
        // organization label → (sum, count)
        let mut by_org: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
        for (record, data) in results.successes() {
            if record.point.config.mrf_config.id.0 != config_id {
                continue;
            }
            let entry = by_org
                .entry(record.point.config.organization.label())
                .or_insert((0.0, 0));
            entry.0 += data.normalized_ipc.unwrap_or(0.0);
            entry.1 += 1;
        }
        for org in FIG9_ORGS {
            if let Some((sum, count)) = by_org.get(org.label()) {
                println!("  {:<14} {:.3}", org.label(), sum / *count as f64);
            }
        }
    }
    Ok(())
}

fn render_fig11(results: &[SweepResults], _ctx: &RenderContext) -> Result<(), String> {
    let results = &results[0];
    // The paper's default allowed IPC loss (§6.3).
    const ALLOWED_LOSS: f64 = 0.05;
    // (workload, org) → latency-factor bits → ipc
    let mut curves: BTreeMap<(String, Organization), BTreeMap<u64, f64>> = BTreeMap::new();
    for (record, data) in results.successes() {
        let factor = record.point.config.latency_factor();
        curves
            .entry((
                record.point.workload.clone(),
                record.point.config.organization,
            ))
            .or_default()
            .insert(factor.to_bits(), data.result.ipc);
    }
    println!("\nFigure 11: maximum tolerable latency at 5% IPC loss (mean over workloads)");
    let mut tolerance_by_org: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for ((_, org), curve) in &curves {
        let reference = curve.get(&1.0f64.to_bits()).copied().unwrap_or(0.0);
        if reference <= 0.0 {
            continue;
        }
        // Delegate the curve assembly and tolerance definition to the core
        // metric (shared with the `fig11` harness binary).
        let ipc_points: Vec<(f64, f64)> = curve
            .iter()
            .map(|(&bits, &ipc)| (f64::from_bits(bits), ipc))
            .collect();
        let Some(sweep) = ltrf_core::LatencySweep::from_ipc_points(*org, &ipc_points) else {
            continue;
        };
        let entry = tolerance_by_org.entry(org.label()).or_insert((0.0, 0));
        entry.0 += sweep.max_tolerable_latency(ALLOWED_LOSS);
        entry.1 += 1;
    }
    for org in FIG11_ORGS {
        if let Some((sum, count)) = tolerance_by_org.get(org.label()) {
            println!("  {:<8} {:.2}x", org.label(), sum / *count as f64);
        }
    }
    Ok(())
}

fn render_fig12(results: &[SweepResults], _ctx: &RenderContext) -> Result<(), String> {
    let factors = ltrf_core::paper_latency_factors();
    println!(
        "\nFigure 12: LTRF IPC (relative to the 1x point) vs. MRF latency, \
         by registers per register-interval"
    );
    let series: Vec<LatencySeries> = campaigns::FIG12_INTERVAL_SIZES
        .into_iter()
        .map(|n| {
            (
                format!("{n} regs"),
                Box::new(move |r: &PointRecord| r.point.config.registers_per_interval == n)
                    as Box<dyn Fn(&PointRecord) -> bool>,
            )
        })
        .collect();
    print_latency_series(&results[0], &factors, &series);
    Ok(())
}

fn render_fig13(results: &[SweepResults], _ctx: &RenderContext) -> Result<(), String> {
    let factors = ltrf_core::paper_latency_factors();
    println!("\nFigure 13: LTRF IPC (relative to the 1x point) vs. MRF latency, by active warps");
    let series: Vec<LatencySeries> = campaigns::FIG13_WARP_COUNTS
        .into_iter()
        .map(|warps| {
            (
                format!("{warps} warps"),
                Box::new(move |r: &PointRecord| r.point.config.active_warps == warps)
                    as Box<dyn Fn(&PointRecord) -> bool>,
            )
        })
        .collect();
    print_latency_series(&results[0], &factors, &series);
    Ok(())
}

fn render_fig14(results: &[SweepResults], _ctx: &RenderContext) -> Result<(), String> {
    let factors = ltrf_core::paper_latency_factors();
    println!("\nFigure 14: IPC (relative to each scheme's 1x point) vs. MRF latency, by scheme");
    let series: Vec<LatencySeries> = campaigns::FIG14_ORGS
        .into_iter()
        .map(|org| {
            (
                org.label().to_string(),
                Box::new(move |r: &PointRecord| r.point.config.organization == org)
                    as Box<dyn Fn(&PointRecord) -> bool>,
            )
        })
        .collect();
    print_latency_series(&results[0], &factors, &series);
    Ok(())
}

/// Mean of a metric over a campaign's successful points on one
/// (Table 2 configuration, organization) cell; `NaN` when the cell is
/// empty. The CLI's `table2`/`power` summary tables and `ltrf-bench`'s
/// `table2_sweep`/`power_sweep` rows are both this call, so the grouped
/// means cannot drift between the two front-ends.
#[must_use]
pub fn config_org_mean(
    results: &SweepResults,
    config_id: u8,
    org: Organization,
    metric: impl Fn(&crate::PointData) -> Option<f64>,
) -> f64 {
    let values: Vec<f64> = results
        .successes()
        .filter(|(r, _)| {
            r.point.config.mrf_config.id.0 == config_id && r.point.config.organization == org
        })
        .filter_map(|(_, d)| metric(d))
        .collect();
    if values.is_empty() {
        f64::NAN
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn table2_preamble(_specs: &[SweepSpec], _ctx: &RenderContext) -> String {
    let mut out = String::from("Table 2: register-file design points (calibrated)\n");
    out.push_str(&format!(
        "  {:<4} {:<10} {:>9} {:>8} {:>8} {:>9}",
        "id", "tech", "capacity", "area", "power", "latency"
    ));
    for config in RegFileConfig::table2() {
        out.push_str(&format!(
            "\n  {:<4} {:<10} {:>8.1}x {:>7.2}x {:>7.2}x {:>8.2}x",
            config.id.to_string(),
            config.technology.name(),
            config.capacity_factor,
            config.area_factor,
            config.power_factor,
            config.latency_factor
        ));
    }
    out
}

fn render_table2(results: &[SweepResults], _ctx: &RenderContext) -> Result<(), String> {
    let results = &results[0];
    println!("\nMean normalized IPC per design point:");
    println!("  {:<4} {:>8} {:>8}", "id", "BL", "LTRF");
    for config_id in 1..=7u8 {
        let mean = |org| config_org_mean(results, config_id, org, |d| d.normalized_ipc);
        println!(
            "  #{config_id:<3} {:>8.3} {:>8.3}",
            mean(Organization::Baseline),
            mean(Organization::Ltrf)
        );
    }
    Ok(())
}

fn power_preamble(_specs: &[SweepSpec], ctx: &RenderContext) -> String {
    let Ok(params) = ctx.params.power_params() else {
        // The build step already reported the friendly validation error.
        return String::new();
    };
    format!(
        "power sweep: RFC/LTRF/LTRF+ on configurations #1..#7, normalized to baseline \
         (calibration: {} pJ/access, {} mW/KB leakage, {}x DWM write penalty)",
        params.base_access_pj, params.base_leakage_mw_per_kb, params.dwm_write_penalty
    )
}

fn render_power(results: &[SweepResults], _ctx: &RenderContext) -> Result<(), String> {
    let results = &results[0];
    println!("\nMean normalized register-file power per design point (suite mean):");
    print!("  {:<4}", "id");
    for org in POWER_ORGS {
        print!(" {:>8}", org.label());
    }
    println!();
    for config_id in 1..=7u8 {
        print!("  #{config_id:<3}");
        for org in POWER_ORGS {
            let mean = config_org_mean(results, config_id, org, |d| d.normalized_power);
            print!(" {mean:>8.3}");
        }
        println!();
    }
    println!(
        "  (the configuration #7 row is Figure 10; the paper reports 0.65 / 0.65 / 0.54 there)"
    );
    Ok(())
}

fn repro_preamble(specs: &[SweepSpec], ctx: &RenderContext) -> String {
    format!(
        "repro: {} campaigns over {} workload(s){} into {}",
        specs.len(),
        ctx.params.workload_names().len(),
        if ctx.params.quick { " (--quick)" } else { "" },
        ctx.out_dir.display()
    )
}

fn render_repro(results: &[SweepResults], ctx: &RenderContext) -> Result<(), String> {
    let points: usize = results.iter().map(SweepResults::len).sum();
    let cached: usize = results.iter().map(SweepResults::cached_count).sum();
    let failed: usize = results.iter().map(SweepResults::failure_count).sum();
    let rate = crate::hit_percent_1dp(cached, points);
    println!(
        "\nrepro total: {points} points across {} campaigns, {cached} from cache \
         ({rate:.1}% hit rate), {failed} failed",
        results.len()
    );
    let artifacts: Vec<String> = results.iter().map(|r| format!("{}.csv", r.name)).collect();
    println!(
        "artifacts in {}: {} (plus the matching .json reports); \
         see REPRODUCING.md for the figure-by-figure atlas",
        ctx.out_dir.display(),
        artifacts.join(", ")
    );
    Ok(())
}

fn render_gpu_scale(results: &[SweepResults], ctx: &RenderContext) -> Result<(), String> {
    let sm_counts = ctx.params.sm_count_axis();
    println!(
        "\nGPU scaling on configuration #6 (grid weak-scaled with the SM count; \
         means over workloads):"
    );
    println!(
        "  {:<5} {:<6} {:>9} {:>9} {:>8} {:>9} {:>12}",
        "SMs", "org", "IPC", "IPC/SM", "norm", "L2 hit", "DRAM row-hit"
    );
    let aggregates = ctx.aggregates_for(0, &results[0]);
    for (sm_count, org, means) in
        aggregates.means(&sm_counts, &[Organization::Baseline, Organization::Ltrf])
    {
        println!(
            "  {:<5} {:<6} {:>9.3} {:>9.3} {:>8.3} {:>8.1}% {:>11.1}%",
            sm_count,
            org.label(),
            means.ipc,
            means.ipc / sm_count.max(1) as f64,
            means.normalized_ipc,
            means.l2_hit_rate * 100.0,
            means.dram_row_hit_rate * 100.0
        );
    }
    Ok(())
}

fn gen_campaign_preamble(_specs: &[SweepSpec], ctx: &RenderContext) -> String {
    let Ok(params) = ctx.params.gen_params() else {
        // The build step already reported the friendly validation error.
        return String::new();
    };
    format!(
        "generated campaign: population {} from seed {} (regs {}..={}, trips <=({}x{}), \
         body <=({} alu, {} loads)), BL vs LTRF on configuration #6",
        params.population,
        params.population_seed,
        params.config.min_regs,
        params.config.max_regs,
        params.config.max_outer_trips,
        params.config.max_inner_trips,
        params.config.max_body_alu,
        params.config.max_body_loads
    )
}

fn render_gen_campaign(results: &[SweepResults], ctx: &RenderContext) -> Result<(), String> {
    let aggregates = ctx.aggregates_for(0, &results[0]);
    let sm_count = ctx.params.single_sm_count();
    println!("\nPopulation means (IPC normalized to baseline on the same member):");
    println!(
        "  {:<6} {:>7} {:>9} {:>8} {:>9} {:>12}",
        "org", "points", "IPC", "norm", "L2 hit", "DRAM row-hit"
    );
    for (_, org, means) in aggregates.means(&[sm_count], &GEN_CAMPAIGN_ORGS) {
        println!(
            "  {:<6} {:>7} {:>9.3} {:>8.3} {:>8.1}% {:>11.1}%",
            org.label(),
            means.count,
            means.ipc,
            means.normalized_ipc,
            means.l2_hit_rate * 100.0,
            means.dram_row_hit_rate * 100.0
        );
    }
    // Where LTRF wins and loses across the population (the tails are what a
    // fixed 14-benchmark suite cannot show). The tail is folded online —
    // the renderer never needs the member rows.
    let tail = aggregates.ltrf_member_tail();
    if let (Some((best_index, best)), Some((worst_index, worst))) = (tail.best, tail.worst) {
        println!(
            "  LTRF speeds up {}/{} members; member #{best_index} best ({best:.3}x), \
             member #{worst_index} worst ({worst:.3}x)",
            tail.wins, tail.count
        );
    }
    Ok(())
}

fn trace_campaign_preamble(_specs: &[SweepSpec], ctx: &RenderContext) -> String {
    let Ok(params) = ctx.params.trace_params() else {
        // The build step already reported the friendly validation error.
        return String::new();
    };
    let mut out = format!(
        "trace campaign: {} trace workload(s), BL vs LTRF on configuration #6",
        params.traces.len()
    );
    for trace in &params.traces {
        out.push_str(&format!(
            "\n  {:<28} {} ({})",
            trace.workload_name(),
            trace.path,
            &trace.content_hash[..8.min(trace.content_hash.len())]
        ));
    }
    out
}

fn render_trace_campaign(results: &[SweepResults], ctx: &RenderContext) -> Result<(), String> {
    let aggregates = ctx.aggregates_for(0, &results[0]);
    let sm_count = ctx.params.single_sm_count();
    println!("\nTrace means (IPC normalized to baseline on the same trace):");
    println!(
        "  {:<6} {:>7} {:>9} {:>8} {:>9} {:>12}",
        "org", "points", "IPC", "norm", "L2 hit", "DRAM row-hit"
    );
    for (_, org, means) in aggregates.means(&[sm_count], &GEN_CAMPAIGN_ORGS) {
        println!(
            "  {:<6} {:>7} {:>9.3} {:>8.3} {:>8.1}% {:>11.1}%",
            org.label(),
            means.count,
            means.ipc,
            means.normalized_ipc,
            means.l2_hit_rate * 100.0,
            means.dram_row_hit_rate * 100.0
        );
    }
    // Per-trace LTRF outcomes: the whole point of ingesting real traces is
    // seeing which ones LTRF helps. (One entry per trace — sorting this
    // small list at render time keeps the fold itself bounded.)
    let mut per_trace: Vec<(&str, f64)> = aggregates
        .ltrf_trace_norms()
        .iter()
        .map(|(workload, norm)| (workload.as_str(), *norm))
        .collect();
    per_trace.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (workload, norm) in per_trace {
        println!("  {workload:<28} LTRF {norm:.3}x");
    }
    Ok(())
}

fn interconnect_preamble(specs: &[SweepSpec], ctx: &RenderContext) -> String {
    let params = ctx.params.interconnect_params();
    let topologies: Vec<&str> = params.topologies.iter().map(|t| t.label()).collect();
    format!(
        "interconnect campaign: {} ({} spec(s)), link width {} B/cycle, queue depth {}, \
         LTRF on configuration #6 across SMs {:?}",
        topologies.join(" vs "),
        specs.len(),
        params.link_width,
        params.queue_depth,
        params.sm_counts
    )
}

fn render_interconnect(results: &[SweepResults], ctx: &RenderContext) -> Result<(), String> {
    let params = ctx.params.interconnect_params();
    println!("\nNetwork contention by topology (means over workloads, LTRF on configuration #6):");
    println!(
        "  {:<10} {:<5} {:>9} {:>15} {:>13}",
        "topology", "SMs", "IPC", "L2 queue wait", "NoC latency"
    );
    for (index, (topology, campaign)) in params.topologies.iter().zip(results).enumerate() {
        let aggregates = ctx.aggregates_for(index, campaign);
        for (sm_count, _, means) in aggregates.means(&params.sm_counts, &[Organization::Ltrf]) {
            println!(
                "  {:<10} {:<5} {:>9.3} {:>15.0} {:>13.2}",
                topology.label(),
                sm_count,
                means.ipc,
                means.l2_queue_wait,
                means.noc_latency
            );
        }
    }
    println!(
        "  (single-SM rows never touch the shared network: the contention-free floor; \
         the extended CSV columns carry the per-point stats)"
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// The registered campaigns, in help order. Exactly one entry per
/// simulation-backed paper artifact (Figure 10 is `power`'s
/// configuration-#7 slice, reachable through the `fig10` alias) plus the
/// `repro` meta-campaign and the beyond-paper
/// `gpu-scale`/`gen-campaign`/`trace-campaign`/`interconnect` studies.
static CAMPAIGNS: [Campaign; 12] = [
    Campaign {
        name: "fig9",
        aliases: &["figure9"],
        kind: ArtifactKind::PaperFigure,
        paper_ref: "Figure 9",
        summary: "six organizations x suite on configurations #6/#7",
        artifacts: "fig9.{csv,json} (fig9-smN for multi-SM runs)",
        params: &SUITE_PARAMS,
        build: |params| {
            Ok(vec![campaigns::fig9_spec(
                params.workload_names(),
                params.single_sm_count(),
                params.seed_mode(),
            )])
        },
        preamble: no_preamble,
        render: render_fig9,
        fail_on_point_failure: false,
    },
    Campaign {
        name: "fig11",
        aliases: &["figure11"],
        kind: ArtifactKind::PaperFigure,
        paper_ref: "Figure 11",
        summary: "latency-tolerance matrix (orgs x latency factors)",
        artifacts: "fig11.{csv,json} (fig11-smN for multi-SM runs)",
        params: &SUITE_PARAMS,
        build: |params| {
            Ok(vec![campaigns::fig11_spec(
                params.workload_names(),
                params.single_sm_count(),
                params.seed_mode(),
            )])
        },
        preamble: no_preamble,
        render: render_fig11,
        fail_on_point_failure: false,
    },
    Campaign {
        name: "fig12",
        aliases: &["figure12"],
        kind: ArtifactKind::PaperFigure,
        paper_ref: "Figure 12",
        summary: "LTRF latency sweep x registers per interval",
        artifacts: "fig12.{csv,json} (fig12-smN for multi-SM runs)",
        params: &SUITE_PARAMS,
        build: |params| {
            Ok(vec![campaigns::fig12_spec(
                params.workload_names(),
                params.single_sm_count(),
                params.seed_mode(),
            )])
        },
        preamble: no_preamble,
        render: render_fig12,
        fail_on_point_failure: false,
    },
    Campaign {
        name: "fig13",
        aliases: &["figure13"],
        kind: ArtifactKind::PaperFigure,
        paper_ref: "Figure 13",
        summary: "LTRF latency sweep x active warps",
        artifacts: "fig13.{csv,json} (fig13-smN for multi-SM runs)",
        params: &SUITE_PARAMS,
        build: |params| {
            Ok(vec![campaigns::fig13_spec(
                params.workload_names(),
                params.single_sm_count(),
                params.seed_mode(),
            )])
        },
        preamble: no_preamble,
        render: render_fig13,
        fail_on_point_failure: false,
    },
    Campaign {
        name: "fig14",
        aliases: &["figure14"],
        kind: ArtifactKind::PaperFigure,
        paper_ref: "Figure 14",
        summary: "latency sweep x register-caching scheme",
        artifacts: "fig14.{csv,json} (fig14-smN for multi-SM runs)",
        params: &SUITE_PARAMS,
        build: |params| {
            Ok(vec![campaigns::fig14_spec(
                params.workload_names(),
                params.single_sm_count(),
                params.seed_mode(),
            )])
        },
        preamble: no_preamble,
        render: render_fig14,
        fail_on_point_failure: false,
    },
    Campaign {
        name: "table2",
        aliases: &["figure-table2"],
        kind: ArtifactKind::PaperTable,
        paper_ref: "Table 2",
        summary: "the seven design points, swept under BL and LTRF",
        artifacts: "table2.{csv,json} (table2-smN for multi-SM runs)",
        params: &SUITE_PARAMS,
        build: |params| {
            Ok(vec![campaigns::table2_spec(
                params.workload_names(),
                params.single_sm_count(),
                params.seed_mode(),
            )])
        },
        preamble: table2_preamble,
        render: render_table2,
        fail_on_point_failure: false,
    },
    Campaign {
        name: "power",
        aliases: &["fig10", "figure10"],
        kind: ArtifactKind::PaperFigure,
        paper_ref: "Figure 10 / §6.4",
        summary: "RF power across all design points (fig10 = the #7 slice)",
        artifacts: "power.{csv,json} (power-p<hex> for non-default calibrations)",
        params: &POWER_CAMPAIGN_PARAMS,
        build: |params| {
            Ok(vec![campaigns::power_sweep_spec(
                params.workload_names(),
                params.single_sm_count(),
                params.seed_mode(),
                params.power_params()?,
            )])
        },
        preamble: power_preamble,
        render: render_power,
        fail_on_point_failure: false,
    },
    Campaign {
        name: "repro",
        aliases: &["all"],
        kind: ArtifactKind::Meta,
        paper_ref: "Figures 9-14, Table 2",
        summary: "the full paper-artifact set into one directory",
        artifacts: "fig9/fig11/fig12/fig13/fig14/table2/power .{csv,json}",
        params: &SUITE_PARAMS,
        build: |params| {
            Ok(campaigns::repro_specs(
                &params.workload_names(),
                params.single_sm_count(),
                params.seed_mode(),
            ))
        },
        preamble: repro_preamble,
        render: render_repro,
        fail_on_point_failure: true,
    },
    Campaign {
        name: "gpu-scale",
        aliases: &["gpuscale"],
        kind: ArtifactKind::BeyondPaper,
        paper_ref: "—",
        summary: "BL/LTRF full-GPU scaling over shared L2/DRAM",
        artifacts: "gpu-scale.{csv,json}",
        params: &GPU_SCALE_PARAMS,
        build: |params| {
            Ok(vec![campaigns::gpu_scale_spec(
                params.workload_names(),
                &params.sm_count_axis(),
                params.seed_mode(),
            )])
        },
        preamble: no_preamble,
        render: render_gpu_scale,
        fail_on_point_failure: false,
    },
    Campaign {
        name: "gen-campaign",
        aliases: &["gen"],
        kind: ArtifactKind::BeyondPaper,
        paper_ref: "—",
        summary: "BL/LTRF over a seeded random kernel population",
        artifacts: "gen-campaign-nN-sS.{csv,json} (bounds-fingerprinted when non-default)",
        params: &GEN_CAMPAIGN_PARAMS,
        build: |params| Ok(vec![campaigns::gen_campaign_spec(&params.gen_params()?)]),
        preamble: gen_campaign_preamble,
        render: render_gen_campaign,
        fail_on_point_failure: false,
    },
    Campaign {
        name: "trace-campaign",
        aliases: &["trace"],
        kind: ArtifactKind::BeyondPaper,
        paper_ref: "—",
        summary: "BL/LTRF over kernels lowered from execution traces",
        artifacts: "trace-campaign-t<hex>.{csv,json} (fingerprinted by the trace set)",
        params: &TRACE_CAMPAIGN_PARAMS,
        build: |params| {
            Ok(vec![campaigns::trace_campaign_spec(
                &params.trace_params()?,
            )])
        },
        preamble: trace_campaign_preamble,
        render: render_trace_campaign,
        fail_on_point_failure: false,
    },
    Campaign {
        name: "interconnect",
        aliases: &["noc"],
        kind: ArtifactKind::BeyondPaper,
        paper_ref: "—",
        summary: "SM<->L2 network topologies under shared-memory contention",
        artifacts: "interconnect-<topology>.{csv,json} (one per swept topology)",
        params: &INTERCONNECT_PARAMS,
        build: |params| {
            Ok(campaigns::interconnect_specs(
                &params.workload_names(),
                &params.interconnect_params(),
            ))
        },
        preamble: interconnect_preamble,
        render: render_interconnect,
        fail_on_point_failure: false,
    },
];

/// The campaign registry: lookup by name or alias, nearest-name
/// suggestions, and the union parameter vocabulary behind the CLI's
/// generated parsing and flag scoping.
#[derive(Debug)]
pub struct CampaignRegistry {
    campaigns: &'static [Campaign],
}

/// The process-wide registry.
#[must_use]
pub fn registry() -> &'static CampaignRegistry {
    static REGISTRY: CampaignRegistry = CampaignRegistry {
        campaigns: &CAMPAIGNS,
    };
    &REGISTRY
}

impl CampaignRegistry {
    /// The registered campaigns, in help order.
    #[must_use]
    pub fn campaigns(&self) -> &'static [Campaign] {
        self.campaigns
    }

    /// Looks a campaign up by canonical name or alias.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&'static Campaign> {
        self.campaigns
            .iter()
            .find(|c| c.names().any(|candidate| candidate == name))
    }

    /// The nearest registered campaign to a mistyped name (edit distance
    /// over names and aliases), if any is plausibly close.
    #[must_use]
    pub fn suggest(&self, name: &str) -> Option<&'static Campaign> {
        let mut best: Option<(usize, &Campaign)> = None;
        for campaign in self.campaigns {
            for candidate in campaign.names() {
                let distance = edit_distance(name, candidate);
                if best.is_none_or(|(best_distance, _)| distance < best_distance) {
                    best = Some((distance, campaign));
                }
            }
        }
        // "Plausibly close": within three edits and not a rewrite of the
        // whole word.
        best.filter(|&(distance, _)| distance <= 3 && distance < name.len().max(2))
            .map(|(_, campaign)| campaign)
    }

    /// The parameter spec a flag names, across every campaign's schema
    /// (used by the CLI to distinguish out-of-scope flags from unknown
    /// ones).
    #[must_use]
    pub fn param(&self, flag: &str) -> Option<&'static ParamSpec> {
        self.campaigns
            .iter()
            .flat_map(|c| c.params.iter())
            .find(|spec| spec.flag == flag)
            .copied()
    }

    /// The canonical names of the campaigns accepting a flag, in help
    /// order.
    #[must_use]
    pub fn campaigns_accepting(&self, spec: &ParamSpec) -> Vec<&'static str> {
        self.campaigns
            .iter()
            .filter(|c| c.accepts(spec))
            .map(|c| c.name)
            .collect()
    }

    /// The registry-derived cross-rejection message for a flag given to a
    /// campaign whose schema does not include it — the uniform replacement
    /// for the CLI's hand-maintained per-subcommand flag-scope tables.
    #[must_use]
    pub fn scope_error(&self, campaign: &Campaign, spec: &ParamSpec) -> String {
        format!(
            "{} does not apply to `{}` (it applies to {}); {}",
            spec.flag,
            campaign.name,
            self.campaigns_accepting(spec).join("/"),
            spec.hint
        )
    }
}

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitute = previous[j] + usize::from(ca != cb);
            current[j + 1] = substitute.min(previous[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

// ---------------------------------------------------------------------------
// list / describe rendering (human and JSON), shared by the CLI and tests
// ---------------------------------------------------------------------------

/// The `sweep list` table: one line per campaign.
#[must_use]
pub fn list_text() -> String {
    let mut out = String::from("registered campaigns (sweep describe <campaign> for details):\n");
    for campaign in registry().campaigns() {
        out.push_str(&format!(
            "  {:<13} {:<13} {}\n",
            campaign.name,
            campaign.kind.label(),
            campaign.summary
        ));
        if !campaign.aliases.is_empty() {
            out.push_str(&format!(
                "  {:<13}   aliases: {}\n",
                "",
                campaign.aliases.join(", ")
            ));
        }
    }
    out
}

/// The `sweep list --json` document: the campaign index as one JSON array.
#[must_use]
pub fn list_json() -> String {
    serde::Value::Array(registry().campaigns().iter().map(describe_value).collect()).to_json()
}

/// The `sweep describe <campaign>` text: schema, defaults, artifacts.
#[must_use]
pub fn describe_text(campaign: &Campaign) -> String {
    let mut out = format!(
        "{} — {} ({})\n  {}\n",
        campaign.name,
        campaign.paper_ref,
        campaign.kind.label(),
        campaign.summary
    );
    if !campaign.aliases.is_empty() {
        out.push_str(&format!("  aliases: {}\n", campaign.aliases.join(", ")));
    }
    out.push_str(&format!("  reports: {}\n", campaign.artifacts));
    out.push_str("  parameters:\n");
    for param in campaign.params {
        out.push_str(&format!(
            "    {:<24} {} (default: {})\n",
            param.usage(),
            param.help,
            param.default
        ));
    }
    out.push_str(&format!(
        "  csv columns: {}\n",
        crate::report::CSV_COLUMNS.join(", ")
    ));
    if campaign.name == "interconnect" {
        out.push_str(&format!(
            "  extra csv columns: {}\n",
            crate::report::INTERCONNECT_CSV_COLUMNS.join(", ")
        ));
    }
    out
}

/// A campaign's metadata as a JSON value (the `--json` flavor of
/// `describe`, and one element of `list --json`).
#[must_use]
pub fn describe_value(campaign: &Campaign) -> serde::Value {
    use serde::Value;
    let string = |s: &str| Value::Str(s.to_string());
    Value::Object(vec![
        ("name".to_string(), string(campaign.name)),
        (
            "aliases".to_string(),
            Value::Array(campaign.aliases.iter().map(|a| string(a)).collect()),
        ),
        ("kind".to_string(), string(campaign.kind.label())),
        ("paper_ref".to_string(), string(campaign.paper_ref)),
        ("summary".to_string(), string(campaign.summary)),
        ("artifacts".to_string(), string(campaign.artifacts)),
        (
            "params".to_string(),
            Value::Array(
                campaign
                    .params
                    .iter()
                    .map(|p| {
                        Value::Object(vec![
                            ("flag".to_string(), string(p.flag)),
                            (
                                "value".to_string(),
                                p.value_name.map_or(Value::Null, string),
                            ),
                            ("type".to_string(), string(p.ty.label())),
                            ("default".to_string(), string(p.default)),
                            ("help".to_string(), string(p.help)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "csv_columns".to_string(),
            Value::Array(
                crate::report::CSV_COLUMNS
                    .iter()
                    .map(|c| string(c))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_campaign_is_found_by_name_and_alias() {
        let registry = registry();
        assert_eq!(registry.campaigns().len(), 12);
        for campaign in registry.campaigns() {
            assert!(std::ptr::eq(
                registry.find(campaign.name).expect("found by name"),
                campaign
            ));
            for alias in campaign.aliases {
                assert!(std::ptr::eq(
                    registry.find(alias).expect("found by alias"),
                    campaign
                ));
            }
        }
        // Names and aliases never collide.
        let mut names: Vec<&str> = registry
            .campaigns()
            .iter()
            .flat_map(Campaign::names)
            .collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate campaign name or alias");
        assert!(registry.find("fig10").is_some(), "fig10 reaches power");
        assert_eq!(
            registry.find("noc").unwrap().name,
            "interconnect",
            "noc reaches interconnect"
        );
    }

    #[test]
    fn suggestions_recover_near_misses_and_reject_nonsense() {
        let registry = registry();
        assert_eq!(registry.suggest("fig12x").unwrap().name, "fig12");
        assert_eq!(registry.suggest("powr").unwrap().name, "power");
        assert_eq!(
            registry.suggest("gencampaign").unwrap().name,
            "gen-campaign"
        );
        assert_eq!(registry.suggest("figure13").unwrap().name, "fig13");
        assert!(registry.suggest("frobnicate").is_none());
        assert!(registry.suggest("x").is_none());
    }

    #[test]
    fn edit_distance_is_levenshtein() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("fig9", "fig9"), 0);
        assert_eq!(edit_distance("fig9", "fig12"), 2);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
    }

    #[test]
    fn registry_scoping_matches_the_historical_tables() {
        let registry = registry();
        let sm_counts = registry.param("--sm-counts").unwrap();
        // --sm-counts belongs to the SM-axis campaigns.
        for campaign in registry.campaigns() {
            assert_eq!(
                campaign.accepts(sm_counts),
                campaign.name == "gpu-scale" || campaign.name == "interconnect"
            );
        }
        let message = registry.scope_error(registry.find("fig9").unwrap(), sm_counts);
        assert!(message.contains("--sm-counts"), "{message}");
        assert!(message.contains("gpu-scale"), "{message}");
        assert!(message.contains("--sm-count N"), "hint present: {message}");

        // --sm-count applies everywhere except the SM-axis campaigns.
        let sm_count = registry.param("--sm-count").unwrap();
        for campaign in registry.campaigns() {
            assert_eq!(
                campaign.accepts(sm_count),
                campaign.name != "gpu-scale" && campaign.name != "interconnect"
            );
        }

        // Network knobs belong to interconnect alone.
        let topology = registry.param("--topology").unwrap();
        assert_eq!(registry.campaigns_accepting(topology), ["interconnect"]);
        assert!(registry
            .scope_error(registry.find("gpu-scale").unwrap(), topology)
            .contains("sweep interconnect"));
        let link_width = registry.param("--link-width").unwrap();
        assert_eq!(registry.campaigns_accepting(link_width), ["interconnect"]);
        let queue_depth = registry.param("--queue-depth").unwrap();
        assert_eq!(registry.campaigns_accepting(queue_depth), ["interconnect"]);

        // Generator flags belong to gen-campaign alone.
        let max_regs = registry.param("--max-regs").unwrap();
        assert_eq!(registry.campaigns_accepting(max_regs), ["gen-campaign"]);
        assert!(registry
            .scope_error(registry.find("power").unwrap(), max_regs)
            .contains("gen-campaign"));

        // Power knobs belong to power alone — including under repro, whose
        // artifacts are pinned to the canonical calibration.
        let access = registry.param("--access-energy-pj").unwrap();
        assert_eq!(registry.campaigns_accepting(access), ["power"]);
        assert!(registry
            .scope_error(registry.find("repro").unwrap(), access)
            .contains("sweep power"));

        // --quick sizes suite campaigns, not generated populations.
        let quick = registry.param("--quick").unwrap();
        assert!(registry.find("repro").unwrap().accepts(quick));
        assert!(registry.find("gpu-scale").unwrap().accepts(quick));
        assert!(!registry.find("gen-campaign").unwrap().accepts(quick));
        assert!(registry
            .scope_error(registry.find("gen-campaign").unwrap(), quick)
            .contains("--population"));

        // --per-point-seeds stays globally applicable.
        let per_point = registry.param("--per-point-seeds").unwrap();
        for campaign in registry.campaigns() {
            assert!(campaign.accepts(per_point), "{}", campaign.name);
        }

        // --trace belongs to trace-campaign alone.
        let trace = registry.param("--trace").unwrap();
        assert_eq!(registry.campaigns_accepting(trace), ["trace-campaign"]);
        assert!(registry
            .scope_error(registry.find("fig9").unwrap(), trace)
            .contains("sweep trace-campaign"));
        assert!(!registry.find("trace-campaign").unwrap().accepts(quick));
    }

    #[test]
    fn registry_builds_match_the_canonical_constructors() {
        let params = CampaignParams {
            quick: true,
            ..CampaignParams::default()
        };
        let fig9 = registry().find("fig9").unwrap().specs(&params).unwrap();
        assert_eq!(fig9.len(), 1);
        assert_eq!(
            fig9[0],
            campaigns::fig9_spec(params.workload_names(), 1, SeedMode::Fixed(CAMPAIGN_SEED)),
            "registry fig9 is byte-for-byte the canonical constructor"
        );

        let repro = registry().find("repro").unwrap().specs(&params).unwrap();
        assert_eq!(repro.len(), 7, "repro composes the whole artifact set");

        let power = registry().find("power").unwrap().specs(&params).unwrap();
        assert_eq!(power[0].name, "power");

        let interconnect = registry()
            .find("interconnect")
            .unwrap()
            .specs(&params)
            .unwrap();
        assert_eq!(
            interconnect,
            campaigns::interconnect_specs(&params.workload_names(), &params.interconnect_params()),
            "registry interconnect is byte-for-byte the canonical constructor"
        );
        assert_eq!(interconnect.len(), 2, "ideal vs crossbar by default");
        let narrowed = CampaignParams {
            quick: true,
            topology: Some(Topology::Mesh2D),
            ..CampaignParams::default()
        };
        let mesh = registry()
            .find("interconnect")
            .unwrap()
            .specs(&narrowed)
            .unwrap();
        assert_eq!(mesh.len(), 1, "--topology narrows the axis to one spec");
        assert_eq!(mesh[0].name, "interconnect-mesh");

        // Parameter validation surfaces as friendly errors, not panics.
        let bad = CampaignParams {
            dwm_write_penalty: Some(-1.0),
            ..CampaignParams::default()
        };
        let complaint = registry().find("power").unwrap().specs(&bad).unwrap_err();
        assert!(complaint.contains("--dwm-write-penalty"), "{complaint}");
        let empty = CampaignParams {
            population: Some(0),
            ..CampaignParams::default()
        };
        let complaint = registry()
            .find("gen-campaign")
            .unwrap()
            .specs(&empty)
            .unwrap_err();
        assert!(complaint.contains("--population"), "{complaint}");
    }

    #[test]
    fn param_application_parses_and_rejects() {
        let mut params = CampaignParams::default();
        let registry = registry();
        registry
            .param("--sm-count")
            .unwrap()
            .apply(&mut params, Some("4"))
            .unwrap();
        assert_eq!(params.sm_count, Some(4));
        registry
            .param("--sm-counts")
            .unwrap()
            .apply(&mut params, Some("1, 2,8"))
            .unwrap();
        assert_eq!(params.sm_counts, Some(vec![1, 2, 8]));
        registry
            .param("--quick")
            .unwrap()
            .apply(&mut params, None)
            .unwrap();
        assert!(params.quick);

        registry
            .param("--trace")
            .unwrap()
            .apply(&mut params, Some("a.trace"))
            .unwrap();
        registry
            .param("--trace")
            .unwrap()
            .apply(&mut params, Some("b.trace"))
            .unwrap();
        assert_eq!(params.trace_paths, ["a.trace", "b.trace"], "repeatable");
        let missing_path = registry
            .param("--trace")
            .unwrap()
            .apply(&mut params, None)
            .unwrap_err();
        assert!(missing_path.contains("--trace"), "{missing_path}");

        registry
            .param("--topology")
            .unwrap()
            .apply(&mut params, Some("mesh"))
            .unwrap();
        assert_eq!(params.topology, Some(Topology::Mesh2D));
        let bad_topology = registry
            .param("--topology")
            .unwrap()
            .apply(&mut params, Some("torus"))
            .unwrap_err();
        assert!(bad_topology.contains("--topology"), "{bad_topology}");
        registry
            .param("--link-width")
            .unwrap()
            .apply(&mut params, Some("0"))
            .unwrap();
        assert_eq!(params.link_width, Some(1), "width clamps to 1");
        registry
            .param("--queue-depth")
            .unwrap()
            .apply(&mut params, Some("4"))
            .unwrap();
        assert_eq!(params.queue_depth, Some(4));

        let missing = registry.param("--threads");
        assert!(
            missing.is_none(),
            "--threads is an execution option, not a campaign parameter"
        );
        let bad = registry
            .param("--population")
            .unwrap()
            .apply(&mut params, Some("many"))
            .unwrap_err();
        assert!(bad.contains("--population"), "{bad}");
        let zero = registry
            .param("--sm-counts")
            .unwrap()
            .apply(&mut params, Some("1,0"))
            .unwrap_err();
        assert!(zero.contains("positive"), "{zero}");
    }

    #[test]
    fn describe_mentions_every_parameter_and_column() {
        for campaign in registry().campaigns() {
            let text = describe_text(campaign);
            for param in campaign.params {
                assert!(
                    text.contains(param.flag),
                    "`describe {}` omits {}",
                    campaign.name,
                    param.flag
                );
            }
            for column in crate::report::CSV_COLUMNS {
                assert!(
                    text.contains(column),
                    "`describe {}` omits column {column}",
                    campaign.name
                );
            }
            let json = describe_value(campaign).to_json();
            for param in campaign.params {
                assert!(
                    json.contains(param.flag),
                    "describe --json omits {}",
                    param.flag
                );
            }
        }
        // The list covers every campaign and parses as JSON.
        let list = list_text();
        for campaign in registry().campaigns() {
            assert!(list.contains(campaign.name));
        }
        let parsed = serde::Value::parse_json(&list_json()).expect("list --json parses");
        match parsed {
            serde::Value::Array(items) => assert_eq!(items.len(), 12),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
