//! The parallel execution primitive under the sweep engine.
//!
//! The environment has no `rayon`, so this module provides the one shape the
//! workspace needs: an order-preserving parallel map over a slice with
//! per-item panic isolation. Scoped worker threads claim indices from a
//! shared atomic counter (work-stealing by competition, which balances
//! uneven per-point costs such as "Ideal simulates 3× faster than SHRF"),
//! and every closure invocation runs under `catch_unwind` so one diverging
//! point produces an error record instead of tearing down the campaign.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used when the caller does not pin one.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Renders a panic payload into a human-readable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Applies `f` to every item in parallel, preserving input order.
///
/// `threads = None` uses all available cores (capped at the item count).
/// A panicking invocation yields `Err(panic message)` for that item only;
/// the other items still run.
pub fn parallel_map<T, R, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.unwrap_or_else(default_threads).clamp(1, n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, String>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(panic_message);
                *slots[i].lock().expect("result slot lock") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, None, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        let values: Vec<u64> = out.into_iter().map(Result::unwrap).collect();
        assert_eq!(values, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn isolates_panics() {
        let items: Vec<u32> = (0..20).collect();
        let out = parallel_map(&items, Some(4), |_, &x| {
            assert!(x != 7 && x != 13, "poison point {x}");
            x + 1
        });
        for (i, result) in out.iter().enumerate() {
            if i == 7 || i == 13 {
                assert!(result.as_ref().is_err_and(|e| e.contains("poison point")));
            } else {
                assert_eq!(*result.as_ref().unwrap(), i as u32 + 1);
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, None, |_, &x| x).is_empty());
        let one = [41u8];
        assert_eq!(parallel_map(&one, Some(16), |_, &x| x + 1)[0], Ok(42));
    }
}
