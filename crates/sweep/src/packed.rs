//! Packed segment storage for the result cache.
//!
//! The original cache kept one `<digest>.json` file per point, which is
//! friendly to inspection but hostile to 10k+-point campaigns: every store
//! is a file creation, every warm run is one `open` per point, and a large
//! population exhausts inodes long before it exhausts bytes. This module
//! packs entries into a small number of append-only *segment* files with a
//! sidecar index:
//!
//! ```text
//! <cache>/segments/seg-<pid>-<n>.pack    framed entry payloads (append-only)
//! <cache>/segments/seg-<pid>-<n>.idx     one JSON line per entry: digest → span
//! ```
//!
//! Each entry in a `.pack` file is framed as `LTRF1 <digest> <len>\n`
//! followed by `<len>` bytes of payload and a newline, so segments are
//! self-describing and recoverable with standard tools. The `.idx` sidecar
//! line for an entry is appended only *after* the payload is flushed, which
//! makes stores crash-ordered without temp files or renames: a kill between
//! the two writes leaves an unreferenced (but well-framed) span that simply
//! misses; a kill mid-line leaves a torn `.idx` tail that the loader skips.
//! Segment names embed the writing process's id plus a counter, so
//! concurrent sweep processes never append to the same file.
//!
//! [`PackedStore::open`] builds an in-memory digest → span index from every
//! `.idx` file; duplicate digests (two processes computing the same point)
//! are harmless because entries are content-addressed — any copy is as good
//! as any other. Segments roll at [`SEGMENT_ROLL_BYTES`] so no single file
//! grows unboundedly.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// A segment rolls over once its payload bytes pass this threshold, bounding
/// the cost of reading (or shipping) any single file.
pub const SEGMENT_ROLL_BYTES: u64 = 4 * 1024 * 1024;

/// Frame marker leading every packed entry.
const FRAME_MAGIC: &str = "LTRF1";

/// One `.idx` sidecar line: where a digest's payload lives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct IndexLine {
    digest: String,
    segment: String,
    offset: u64,
    len: u64,
}

/// Where a payload lives, in memory.
#[derive(Debug, Clone, PartialEq)]
struct Span {
    segment: String,
    offset: u64,
    len: u64,
}

/// The open segment this process is appending to.
#[derive(Debug)]
struct SegmentWriter {
    name: String,
    data: File,
    idx: File,
    written: u64,
}

/// An append-only packed store of digest-addressed payloads.
#[derive(Debug)]
pub struct PackedStore {
    dir: PathBuf,
    index: Mutex<HashMap<String, Span>>,
    writer: Mutex<Option<SegmentWriter>>,
}

impl PackedStore {
    /// Opens (creating if needed) the packed store under `dir` and builds
    /// the digest index from every `.idx` sidecar. Torn or garbled index
    /// lines are skipped — their entries are unreachable and miss.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created
    /// or listed.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut index = HashMap::new();
        for entry in fs::read_dir(&dir)?.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_none_or(|ext| ext != "idx") {
                continue;
            }
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            for line in text.lines() {
                let Ok(parsed) = serde::from_json_str::<IndexLine>(line) else {
                    continue;
                };
                index.insert(
                    parsed.digest,
                    Span {
                        segment: parsed.segment,
                        offset: parsed.offset,
                        len: parsed.len,
                    },
                );
            }
        }
        Ok(PackedStore {
            dir,
            index: Mutex::new(index),
            writer: Mutex::new(None),
        })
    }

    /// Loads the payload stored under `digest_hex`, if the index knows it.
    ///
    /// Any failure — missing segment, short read, non-UTF-8 bytes — is a
    /// miss; the caller treats the payload like any other untrusted cache
    /// text and re-verifies its key material.
    #[must_use]
    pub fn load(&self, digest_hex: &str) -> Option<String> {
        let span = self
            .index
            .lock()
            .expect("packed index poisoned")
            .get(digest_hex)
            .cloned()?;
        let mut file = File::open(self.dir.join(&span.segment)).ok()?;
        file.seek(SeekFrom::Start(span.offset)).ok()?;
        let mut payload = vec![0u8; usize::try_from(span.len).ok()?];
        file.read_exact(&mut payload).ok()?;
        String::from_utf8(payload).ok()
    }

    /// Appends `payload` under `digest_hex`: frame + payload to the current
    /// segment, flush, then the index line (crash-ordering: an entry is
    /// reachable only once it is fully on disk).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn store(&self, digest_hex: &str, payload: &str) -> io::Result<()> {
        let mut writer = self.writer.lock().expect("packed writer poisoned");
        let segment = match writer.as_mut() {
            Some(segment) if segment.written < SEGMENT_ROLL_BYTES => segment,
            _ => {
                *writer = Some(self.roll_segment()?);
                writer.as_mut().expect("segment just created")
            }
        };

        let frame = format!("{FRAME_MAGIC} {digest_hex} {}\n", payload.len());
        let offset = segment.written + frame.len() as u64;
        segment.data.write_all(frame.as_bytes())?;
        segment.data.write_all(payload.as_bytes())?;
        segment.data.write_all(b"\n")?;
        segment.data.flush()?;
        segment.written = offset + payload.len() as u64 + 1;

        let line = serde::to_json_string(&IndexLine {
            digest: digest_hex.to_string(),
            segment: segment.name.clone(),
            offset,
            len: payload.len() as u64,
        });
        segment.idx.write_all(format!("{line}\n").as_bytes())?;
        segment.idx.flush()?;

        self.index.lock().expect("packed index poisoned").insert(
            digest_hex.to_string(),
            Span {
                segment: segment.name.clone(),
                offset,
                len: payload.len() as u64,
            },
        );
        Ok(())
    }

    /// Opens a fresh uniquely-named segment for this process.
    fn roll_segment(&self) -> io::Result<SegmentWriter> {
        let pid = std::process::id();
        for counter in 0u64.. {
            let name = format!("seg-{pid}-{counter}.pack");
            let data = match OpenOptions::new()
                .append(true)
                .create_new(true)
                .open(self.dir.join(&name))
            {
                Ok(file) => file,
                // A previous run of a recycled pid left this name behind;
                // never append to a file another process may index.
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            };
            let idx = OpenOptions::new()
                .append(true)
                .create(true)
                .open(self.dir.join(format!("seg-{pid}-{counter}.idx")))?;
            return Ok(SegmentWriter {
                name,
                data,
                idx,
                written: 0,
            });
        }
        unreachable!("u64 segment counter space exhausted")
    }

    /// The digests currently reachable through the index.
    #[must_use]
    pub fn digests(&self) -> Vec<String> {
        self.index
            .lock()
            .expect("packed index poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of reachable entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.lock().expect("packed index poisoned").len()
    }

    /// Whether the store holds no reachable entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ltrf-packed-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_round_trip_and_reopen() {
        let dir = temp_store("round-trip");
        let store = PackedStore::open(&dir).unwrap();
        assert!(store.load("aa").is_none());
        store.store("aa", "{\"x\":1}").unwrap();
        store.store("bb", "{\"y\":2}").unwrap();
        assert_eq!(store.load("aa").as_deref(), Some("{\"x\":1}"));
        assert_eq!(store.load("bb").as_deref(), Some("{\"y\":2}"));
        assert_eq!(store.len(), 2);
        // A fresh open rebuilds the index from the sidecars.
        let reopened = PackedStore::open(&dir).unwrap();
        assert_eq!(reopened.load("aa").as_deref(), Some("{\"x\":1}"));
        assert_eq!(reopened.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restores_overwrite_in_the_index() {
        let dir = temp_store("overwrite");
        let store = PackedStore::open(&dir).unwrap();
        store.store("aa", "old").unwrap();
        store.store("aa", "new").unwrap();
        assert_eq!(store.load("aa").as_deref(), Some("new"));
        assert_eq!(store.len(), 1);
        let reopened = PackedStore::open(&dir).unwrap();
        assert_eq!(
            reopened.load("aa").as_deref(),
            Some("new"),
            "later index lines win on reopen"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_index_lines_are_skipped() {
        let dir = temp_store("torn-idx");
        let store = PackedStore::open(&dir).unwrap();
        store.store("aa", "payload-a").unwrap();
        drop(store);
        // Simulate a kill mid-append on the sidecar: a dangling partial line.
        let idx_path = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|ext| ext == "idx"))
            .expect("one idx sidecar");
        let mut text = fs::read_to_string(&idx_path).unwrap();
        text.push_str("{\"digest\":\"bb\",\"segm");
        fs::write(&idx_path, text).unwrap();
        let reopened = PackedStore::open(&dir).unwrap();
        assert_eq!(reopened.load("aa").as_deref(), Some("payload-a"));
        assert!(reopened.load("bb").is_none(), "the torn entry misses");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Two threads appending through ONE store (the `sweep serve`
    /// shared-cache shape) must interleave without corrupting the sidecar
    /// index: every digest loads back live, a fresh open rebuilds the
    /// complete index, and every idx line parses.
    #[test]
    fn concurrent_writers_on_a_shared_store_never_corrupt_the_index() {
        use std::sync::Arc;
        let dir = temp_store("concurrent-shared");
        let store = Arc::new(PackedStore::open(&dir).unwrap());
        let per_thread = 64;
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let digest = format!("t{t}-{i:03}");
                        let payload = format!("{{\"writer\":{t},\"i\":{i}}}");
                        store.store(&digest, &payload).unwrap();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(store.len(), 2 * per_thread);
        for t in 0..2 {
            for i in 0..per_thread {
                let digest = format!("t{t}-{i:03}");
                assert_eq!(
                    store.load(&digest).as_deref(),
                    Some(format!("{{\"writer\":{t},\"i\":{i}}}").as_str()),
                    "live load of {digest}"
                );
            }
        }
        // A fresh open sees everything: the sidecar index survived the
        // interleaving intact.
        let reopened = PackedStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2 * per_thread);
        // And byte-level: every idx line is well-formed JSON (no torn or
        // interleaved appends).
        for entry in fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "idx") {
                for (no, line) in fs::read_to_string(&path).unwrap().lines().enumerate() {
                    serde::Value::parse_json(line).unwrap_or_else(|e| {
                        panic!("{}:{} is torn: {line:?} ({e})", path.display(), no + 1)
                    });
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Two *instances* on one directory (two processes in miniature — the
    /// `seg-<pid>-<n>` naming plus `create_new` is what keeps them apart)
    /// must also coexist: each appends to its own segment, and a fresh
    /// open merges both.
    #[test]
    fn concurrent_store_instances_on_one_directory_coexist() {
        let dir = temp_store("concurrent-instances");
        let a = PackedStore::open(&dir).unwrap();
        let b = PackedStore::open(&dir).unwrap();
        let handles: Vec<_> = [(0, a), (1, b)]
            .into_iter()
            .map(|(t, store)| {
                std::thread::spawn(move || {
                    for i in 0..32 {
                        store
                            .store(&format!("inst{t}-{i:02}"), &format!("p{t}-{i}"))
                            .unwrap();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let merged = PackedStore::open(&dir).unwrap();
        assert_eq!(merged.len(), 64);
        for t in 0..2 {
            for i in 0..32 {
                assert_eq!(
                    merged.load(&format!("inst{t}-{i:02}")).as_deref(),
                    Some(format!("p{t}-{i}").as_str())
                );
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Concurrent appends with payloads big enough to force segment rolls
    /// mid-race: rolling must not tear the index or lose spans.
    #[test]
    fn concurrent_writers_survive_segment_rolls() {
        use std::sync::Arc;
        let dir = temp_store("concurrent-roll");
        let store = Arc::new(PackedStore::open(&dir).unwrap());
        let payload = "y".repeat((SEGMENT_ROLL_BYTES / 3) as usize);
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let store = Arc::clone(&store);
                let payload = payload.clone();
                std::thread::spawn(move || {
                    for i in 0..4 {
                        store.store(&format!("roll{t}-{i}"), &payload).unwrap();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let reopened = PackedStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 8);
        for t in 0..2 {
            for i in 0..4 {
                assert_eq!(
                    reopened.load(&format!("roll{t}-{i}")).as_deref(),
                    Some(&payload[..]),
                    "roll{t}-{i} survived the roll race"
                );
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_and_remain_readable() {
        let dir = temp_store("roll");
        let store = PackedStore::open(&dir).unwrap();
        // Payloads big enough that a few pass the roll threshold.
        let payload = "x".repeat((SEGMENT_ROLL_BYTES / 2) as usize);
        for i in 0..5 {
            store.store(&format!("d{i}"), &payload).unwrap();
        }
        let packs = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "pack"))
            .count();
        assert!(packs > 1, "large stores roll across segments, got {packs}");
        for i in 0..5 {
            assert_eq!(store.load(&format!("d{i}")).as_deref(), Some(&payload[..]));
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
