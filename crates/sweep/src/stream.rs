//! Streaming record sinks: bounded-memory CSV emission and running
//! per-config aggregates.
//!
//! Both sinks receive completed [`PointRecord`]s from the executor's worker
//! threads in *completion* order and internally reorder them into *spec*
//! order through a small buffer (bounded by the workers' completion skew,
//! roughly the thread count — never the campaign size). That reordering is
//! what makes streaming output deterministic: the CSV a
//! [`StreamingCsvWriter`] emits is byte-identical to
//! [`report::to_csv`] over retained results, and the
//! statistics an [`AggregateSink`] folds see points in exactly the order the
//! batch aggregations iterate them, so float accumulation and tie-breaking
//! agree to the last bit.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use ltrf_core::Organization;

use crate::executor::{PointMeans, PointMeansAcc, PointRecord, RecordSink, SweepResults};
use crate::report;

// ---------------------------------------------------------------------------
// Streaming CSV
// ---------------------------------------------------------------------------

struct CsvState {
    writer: BufWriter<File>,
    schema: report::CsvSchema,
    /// The next spec index to write (rows before it are already on disk).
    next: usize,
    /// Rendered rows that completed ahead of `next`, keyed by spec index.
    pending: BTreeMap<usize, String>,
    /// The first write error, surfaced by [`StreamingCsvWriter::finish`]
    /// (the sink callback has no error channel).
    deferred: Option<io::Error>,
}

/// A [`RecordSink`] that writes each point's CSV row to disk as the point
/// completes, in spec order, without ever materializing the full row set.
///
/// Rows are rendered with [`report::csv_row`] — the
/// same renderer the batch [`to_csv`](crate::report::to_csv) uses — so the
/// streamed file is byte-identical to the batch one by construction.
pub struct StreamingCsvWriter {
    state: Mutex<CsvState>,
}

impl StreamingCsvWriter {
    /// Creates (truncating) the CSV file at `path` and writes the header
    /// row.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        StreamingCsvWriter::create_with_schema(path, report::CsvSchema::Standard)
    }

    /// [`Self::create`] with an explicit column schema (the `sweep
    /// interconnect` campaign appends network columns; everything else
    /// writes the frozen standard set).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn create_with_schema(
        path: impl AsRef<Path>,
        schema: report::CsvSchema,
    ) -> io::Result<Self> {
        let mut writer = BufWriter::new(File::create(path)?);
        writer.write_all(schema.header().as_bytes())?;
        writer.write_all(b"\n")?;
        Ok(StreamingCsvWriter {
            state: Mutex::new(CsvState {
                writer,
                schema,
                next: 0,
                pending: BTreeMap::new(),
                deferred: None,
            }),
        })
    }

    /// Flushes the file and surfaces any write error deferred from the
    /// streaming callbacks.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, or the flush error.
    pub fn finish(self) -> io::Result<()> {
        let mut state = self.state.into_inner().expect("csv writer poisoned");
        if let Some(e) = state.deferred.take() {
            return Err(e);
        }
        state.writer.flush()
    }
}

impl RecordSink for StreamingCsvWriter {
    fn on_record(&self, index: usize, record: &PointRecord) {
        let mut state = self.state.lock().expect("csv writer poisoned");
        let row = state.schema.row(record);
        state.pending.insert(index, row);
        // Drain every row that is now consecutive from `next`.
        while let Some(row) = {
            let next = state.next;
            state.pending.remove(&next)
        } {
            if state.deferred.is_none() {
                let written = state
                    .writer
                    .write_all(row.as_bytes())
                    .and_then(|()| state.writer.write_all(b"\n"));
                if let Err(e) = written {
                    state.deferred = Some(e);
                }
            }
            state.next += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Running aggregates
// ---------------------------------------------------------------------------

/// The LTRF generated-population tail statistics `sweep gen-campaign`
/// summarizes, folded online. Tie-breaking matches the batch path's stable
/// ascending sort over spec-ordered members: `worst` keeps the *earliest*
/// member among equal minima, `best` the *latest* among equal maxima.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemberTail {
    /// Number of LTRF members with a normalized IPC.
    pub count: usize,
    /// Members LTRF sped up (normalized IPC above 1.0).
    pub wins: usize,
    /// `(member index, normalized IPC)` of the best member.
    pub best: Option<(u32, f64)>,
    /// `(member index, normalized IPC)` of the worst member.
    pub worst: Option<(u32, f64)>,
}

impl MemberTail {
    fn push(&mut self, index: u32, norm: f64) {
        self.count += 1;
        if norm > 1.0 {
            self.wins += 1;
        }
        match self.best {
            Some((_, best)) if norm.total_cmp(&best).is_lt() => {}
            _ => self.best = Some((index, norm)),
        }
        match self.worst {
            Some((_, worst)) if norm.total_cmp(&worst).is_lt() => self.worst = Some((index, norm)),
            Some(_) => {}
            None => self.worst = Some((index, norm)),
        }
    }
}

/// Per-config summary statistics folded from a record stream — what the
/// campaign renderers read instead of the full row set.
///
/// Holds one [`PointMeansAcc`] per `(sm_count, organization)` cell plus the
/// gen-campaign LTRF member tail and the per-trace LTRF normalizations, so
/// its memory is bounded by the number of *configurations* (and traces),
/// never the point count. Push order must be spec order for bit-identical
/// agreement with the batch aggregations; the [`AggregateSink`] guarantees
/// that.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningAggregates {
    cells: Vec<(usize, Organization, PointMeansAcc)>,
    ltrf_members: MemberTail,
    trace_norms: Vec<(String, f64)>,
}

impl RunningAggregates {
    /// Folds one completed record in; failures contribute nothing (the
    /// batch aggregations iterate successes only).
    pub fn push(&mut self, record: &PointRecord) {
        let Some(data) = record.outcome.data() else {
            return;
        };
        let sm_count = record.point.config.sm_count;
        let org = record.point.config.organization;
        let cell = match self
            .cells
            .iter_mut()
            .find(|(sm, o, _)| *sm == sm_count && *o == org)
        {
            Some((_, _, acc)) => acc,
            None => {
                self.cells.push((sm_count, org, PointMeansAcc::default()));
                &mut self.cells.last_mut().expect("just pushed").2
            }
        };
        cell.push(data);
        if org == Organization::Ltrf {
            if let (Some(generated), Some(norm)) = (record.point.generated, data.normalized_ipc) {
                self.ltrf_members.push(generated.index, norm);
            }
            if let (Some(_), Some(norm)) = (&record.point.trace, data.normalized_ipc) {
                self.trace_norms.push((record.point.workload.clone(), norm));
            }
        }
    }

    /// The fallback for non-streaming callers: folds retained results in
    /// record (= spec) order.
    #[must_use]
    pub fn from_results(results: &SweepResults) -> Self {
        let mut agg = RunningAggregates::default();
        for record in &results.records {
            agg.push(record);
        }
        agg
    }

    /// The GPU-scaling pivot over the folded points: means per
    /// `(sm_count, organization)` cell in the given axis order, skipping
    /// empty cells — the same table as
    /// [`PointMeans::grouped`](crate::PointMeans::grouped) over retained
    /// results.
    #[must_use]
    pub fn means(
        &self,
        sm_counts: &[usize],
        organizations: &[Organization],
    ) -> Vec<(usize, Organization, PointMeans)> {
        let mut out = Vec::new();
        for &sm_count in sm_counts {
            for &org in organizations {
                let acc = self
                    .cells
                    .iter()
                    .find(|(sm, o, _)| *sm == sm_count && *o == org);
                if let Some(means) = acc.and_then(|(_, _, acc)| acc.finish()) {
                    out.push((sm_count, org, means));
                }
            }
        }
        out
    }

    /// The gen-campaign LTRF member tail (wins, best, worst).
    #[must_use]
    pub fn ltrf_member_tail(&self) -> MemberTail {
        self.ltrf_members
    }

    /// Per-trace LTRF normalized IPC, in spec order (one entry per
    /// successful LTRF trace point).
    #[must_use]
    pub fn ltrf_trace_norms(&self) -> &[(String, f64)] {
        &self.trace_norms
    }
}

struct AggState {
    next: usize,
    pending: BTreeMap<usize, PointRecord>,
    agg: RunningAggregates,
}

/// A [`RecordSink`] that folds completed records into [`RunningAggregates`]
/// in spec order (reordering through a completion-skew-bounded buffer, like
/// the CSV writer).
pub struct AggregateSink {
    state: Mutex<AggState>,
}

impl Default for AggregateSink {
    fn default() -> Self {
        AggregateSink::new()
    }
}

impl AggregateSink {
    /// Creates an empty aggregator.
    #[must_use]
    pub fn new() -> Self {
        AggregateSink {
            state: Mutex::new(AggState {
                next: 0,
                pending: BTreeMap::new(),
                agg: RunningAggregates::default(),
            }),
        }
    }

    /// The aggregates folded from everything sunk so far.
    #[must_use]
    pub fn finish(self) -> RunningAggregates {
        self.state
            .into_inner()
            .expect("aggregate sink poisoned")
            .agg
    }
}

impl RecordSink for AggregateSink {
    fn on_record(&self, index: usize, record: &PointRecord) {
        let mut state = self.state.lock().expect("aggregate sink poisoned");
        state.pending.insert(index, record.clone());
        while let Some(record) = {
            let next = state.next;
            state.pending.remove(&next)
        } {
            state.agg.push(&record);
            state.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{PointOutcome, SweepResults};
    use crate::spec::{SeedMode, SweepSpec};
    use crate::{point_key, report};

    fn synthetic_results_for(workloads: &[&str]) -> SweepResults {
        let spec = SweepSpec::builder("stream-test")
            .workloads(workloads.iter().copied())
            .seed_mode(SeedMode::Fixed(7))
            .build();
        let records = spec
            .points
            .iter()
            .enumerate()
            .map(|(i, point)| {
                let key = point_key(&spec, point);
                PointRecord {
                    point: point.clone(),
                    digest_hex: key.digest_hex,
                    seed: key.seed,
                    outcome: PointOutcome::Error(format!("synthetic #{i}")),
                    from_cache: false,
                }
            })
            .collect();
        SweepResults {
            name: spec.name,
            records,
        }
    }

    fn synthetic_results() -> SweepResults {
        synthetic_results_for(&["hotspot", "btree", "kmeans"])
    }

    #[test]
    fn streamed_csv_is_byte_identical_to_batch_even_out_of_order() {
        let results = synthetic_results();
        let path = std::env::temp_dir().join(format!("ltrf-stream-csv-{}", std::process::id()));
        let writer = StreamingCsvWriter::create(&path).unwrap();
        // Deliver in a scrambled completion order; the writer reorders.
        for &index in &[2usize, 0, 1] {
            writer.on_record(index, &results.records[index]);
        }
        writer.finish().unwrap();
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed, report::to_csv(&results));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn aggregate_sink_reorders_into_spec_order() {
        let results = synthetic_results();
        let sink = AggregateSink::new();
        for &index in &[1usize, 2, 0] {
            sink.on_record(index, &results.records[index]);
        }
        assert_eq!(sink.finish(), RunningAggregates::from_results(&results));
    }

    /// The reorder buffer is bounded by the workers' completion skew; its
    /// worst case is fully reversed delivery, where the buffer must hold
    /// exactly `points - 1` rows before row 0 arrives and unblocks the
    /// whole cascade. This pins the boundary — the off-by-one hazard noted
    /// in the module docs — by checking the buffer's high-water mark, the
    /// single-callback full drain, and the final bytes.
    #[test]
    fn csv_reorder_buffer_survives_skew_equal_to_its_capacity() {
        let names: Vec<String> = (0..8).map(|i| format!("skew-wl-{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let results = synthetic_results_for(&refs);
        let n = results.records.len();
        assert!(n >= 8, "need a non-trivial point count, got {n}");
        let path = std::env::temp_dir().join(format!("ltrf-stream-skew-{}", std::process::id()));
        let writer = StreamingCsvWriter::create(&path).unwrap();
        // Everything except index 0, in reverse: nothing is consecutive
        // from `next == 0`, so every row parks in the buffer.
        for index in (1..n).rev() {
            writer.on_record(index, &results.records[index]);
        }
        {
            let state = writer.state.lock().unwrap();
            assert_eq!(state.next, 0, "no row may flush before index 0");
            assert_eq!(
                state.pending.len(),
                n - 1,
                "the buffer holds the full skew at its high-water mark"
            );
        }
        // Index 0 lands: one callback must drain all n rows.
        writer.on_record(0, &results.records[0]);
        {
            let state = writer.state.lock().unwrap();
            assert_eq!(state.next, n, "the cascade flushed every row");
            assert!(state.pending.is_empty(), "nothing may be left behind");
        }
        writer.finish().unwrap();
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed, report::to_csv(&results));
        let _ = std::fs::remove_file(&path);
    }

    /// The same boundary for [`AggregateSink`]: fully reversed delivery
    /// must fold to exactly the batch aggregates.
    #[test]
    fn aggregate_sink_survives_skew_equal_to_its_capacity() {
        let names: Vec<String> = (0..8).map(|i| format!("skew-wl-{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let results = synthetic_results_for(&refs);
        let sink = AggregateSink::new();
        for index in (0..results.records.len()).rev() {
            sink.on_record(index, &results.records[index]);
        }
        assert_eq!(sink.finish(), RunningAggregates::from_results(&results));
    }

    /// Live end-to-end pin: `run_streaming` with as many worker threads as
    /// points (so completion skew *can* reach the buffer's capacity) still
    /// writes a CSV byte-identical to the batch renderer.
    #[test]
    fn run_streaming_with_threads_equal_to_points_matches_batch() {
        use crate::executor::{CampaignSession, ExecutorOptions};
        let spec = SweepSpec::builder("stream-skew-live")
            .workloads(["hotspot", "btree"])
            .seed_mode(SeedMode::Fixed(7))
            .build();
        let points = spec.points.len();
        let options = ExecutorOptions {
            threads: Some(points),
            ..ExecutorOptions::default()
        };
        let path =
            std::env::temp_dir().join(format!("ltrf-stream-skew-live-{}", std::process::id()));
        let csv = StreamingCsvWriter::create(&path).unwrap();
        let (results, totals) =
            CampaignSession::new(&spec, &options).run_with_sink(&crate::executor::Unobserved, &csv);
        csv.finish().unwrap();
        assert_eq!(totals.computed, points);
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed, report::to_csv(&results));
        let _ = std::fs::remove_file(&path);
    }
}
