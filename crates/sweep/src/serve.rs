//! The long-lived campaign service behind `sweep serve`.
//!
//! A [`CampaignServer`] listens on a [`std::net::TcpListener`] and speaks a
//! line-delimited JSON protocol: one request object per line in, one
//! response object (or a stream of campaign-event objects) per line out.
//! Clients `submit` registry-validated campaigns (the same
//! [`Campaign`] parameter schemas the CLI generates
//! its flags from), `attach` to a session's typed
//! [`CampaignEvent`] stream, poll `status`,
//! `cancel` a session, or `shutdown` the daemon. `REPRODUCING.md`
//! ("Campaign service") documents the wire grammar.
//!
//! Three properties turn the per-process executor into a shared, queued
//! resource:
//!
//! * **One shared packed cache.** Every session runs against a single
//!   [`ResultCache`] *instance* ([`ExecutorOptions::shared_cache`]), so a
//!   point stored by one session is immediately visible to the others.
//! * **Single-flight dedup on a bounded worker pool.** [`SingleFlight`]
//!   implements [`PointCoordinator`]: identical in-flight points (same
//!   content-addressed digest) are computed once by a leader and fanned out
//!   to every waiting session as `point_coalesced` events, and leaders
//!   serialize on a fixed number of worker permits so total compute
//!   concurrency is bounded no matter how many sessions are running.
//! * **Disconnect-tolerant sessions.** A session is owned by the server,
//!   not by any connection: every event line it emits (the `--progress
//!   json` schema plus `session_id` and `seq` fields) is retained in a
//!   bounded replay buffer, so a client that disconnects mid-campaign can
//!   re-attach by session id with the last `seq` it acked and catch up to a
//!   byte-identical event log.
//!
//! The daemon needs no signal handling for crash safety: the packed cache's
//! flush-before-index store ordering and the per-line-flushed checkpoint
//! journal mean an abrupt `SIGTERM`/`SIGKILL` degrades to (at most) one
//! recomputed point per session, never to a corrupt cache.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use serde::Value;

use crate::api::{registry, Campaign, CampaignParams};
use crate::cache::ResultCache;
use crate::executor::{
    CampaignEvent, CampaignSession, CampaignTotals, ExecutorOptions, PointClaim, PointCoordinator,
    PointOutcome,
};
use crate::pool::default_threads;
use crate::report;
use crate::spec::SweepSpec;
use crate::stream::StreamingCsvWriter;

/// The longest request line the server will buffer; longer lines are
/// drained and answered with a typed error (the connection keeps serving).
pub const MAX_REQUEST_BYTES: usize = 256 * 1024;

/// Default bound on each session's event replay buffer. Re-attaching past
/// an evicted event is a typed `replay gap` error, so the default is sized
/// well above any paper campaign's event count (~2 events per point).
pub const DEFAULT_REPLAY_CAPACITY: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Everything a [`CampaignServer`] is parameterized on — the `sweep serve`
/// flags deserialize into this.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port `0` picks a free port — read it back
    /// from [`CampaignServer::local_addr`]).
    pub addr: String,
    /// Report directory; each session writes its CSV/JSON reports (and its
    /// checkpoint journal while running) under `<out>/<session-id>/`.
    pub out_dir: PathBuf,
    /// The shared result-cache directory; `None` disables caching (and with
    /// it cross-session sharing — single-flight dedup still applies to
    /// points simultaneously in flight).
    pub cache_dir: Option<PathBuf>,
    /// Worker-pool permits: the bound on concurrently *evaluating* points
    /// across all sessions.
    pub pool: usize,
    /// Threads per session claiming points (each blocks on the shared pool
    /// before evaluating, so this bounds claim parallelism, not compute).
    pub session_threads: usize,
    /// Per-session replay buffer capacity, in events.
    pub replay_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = default_threads();
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            out_dir: PathBuf::from("serve-out"),
            cache_dir: Some(PathBuf::from(".sweep-cache")),
            pool: cores,
            session_threads: cores,
            replay_capacity: DEFAULT_REPLAY_CAPACITY,
        }
    }
}

// ---------------------------------------------------------------------------
// Single-flight dedup over a bounded worker pool
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct FlightEntry {
    outcome: Mutex<Option<PointOutcome>>,
    ready: Condvar,
}

/// The service's [`PointCoordinator`]: single-flight dedup of identical
/// in-flight digests plus a counting-semaphore worker pool.
///
/// `claim` first consults the in-flight table: if another session is
/// already computing the digest, the caller blocks until that leader
/// publishes and receives the outcome as [`PointClaim::Coalesced`].
/// Otherwise the caller registers the digest, blocks until a worker permit
/// is free, and leads. `publish` removes the digest, wakes every waiting
/// follower, and returns the permit. Registering *before* acquiring the
/// permit is what makes the dedup window cover queueing time: a point
/// waiting for a permit already coalesces followers.
#[derive(Debug)]
pub struct SingleFlight {
    permits: Mutex<usize>,
    permit_ready: Condvar,
    inflight: Mutex<HashMap<String, Arc<FlightEntry>>>,
    coalesced_total: AtomicU64,
}

impl SingleFlight {
    /// Creates a coordinator with `pool` worker permits (clamped to ≥ 1).
    #[must_use]
    pub fn new(pool: usize) -> Self {
        SingleFlight {
            permits: Mutex::new(pool.max(1)),
            permit_ready: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            coalesced_total: AtomicU64::new(0),
        }
    }

    /// Service-wide count of coalesced claims since startup (the `status`
    /// response reports it).
    #[must_use]
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced_total.load(Ordering::Relaxed)
    }
}

impl PointCoordinator for SingleFlight {
    fn claim(&self, digest: &str) -> PointClaim {
        let existing = {
            let mut inflight = self.inflight.lock().expect("inflight table poisoned");
            match inflight.get(digest) {
                Some(entry) => Some(Arc::clone(entry)),
                None => {
                    inflight.insert(digest.to_string(), Arc::new(FlightEntry::default()));
                    None
                }
            }
        };
        if let Some(entry) = existing {
            let mut slot = entry.outcome.lock().expect("flight entry poisoned");
            while slot.is_none() {
                slot = entry.ready.wait(slot).expect("flight entry poisoned");
            }
            self.coalesced_total.fetch_add(1, Ordering::Relaxed);
            return PointClaim::Coalesced(Box::new(slot.clone().expect("just waited for Some")));
        }
        let mut permits = self.permits.lock().expect("permit count poisoned");
        while *permits == 0 {
            permits = self
                .permit_ready
                .wait(permits)
                .expect("permit count poisoned");
        }
        *permits -= 1;
        PointClaim::Lead
    }

    fn publish(&self, digest: &str, outcome: &PointOutcome) {
        let entry = self
            .inflight
            .lock()
            .expect("inflight table poisoned")
            .remove(digest);
        if let Some(entry) = entry {
            *entry.outcome.lock().expect("flight entry poisoned") = Some(outcome.clone());
            entry.ready.notify_all();
        }
        *self.permits.lock().expect("permit count poisoned") += 1;
        self.permit_ready.notify_one();
    }
}

// ---------------------------------------------------------------------------
// Sessions and their replay buffers
// ---------------------------------------------------------------------------

/// Where a session is in its lifecycle (the `status` response's `state`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Accepted, not yet running.
    Queued,
    /// Executing its campaign specs.
    Running,
    /// Every spec completed (failed points included — see the totals).
    Finished,
    /// Cancelled by request; remaining points drained as failures.
    Cancelled,
    /// Infrastructure failure (unwritable report directory, …).
    Failed,
}

impl SessionState {
    /// The wire label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SessionState::Queued => "queued",
            SessionState::Running => "running",
            SessionState::Finished => "finished",
            SessionState::Cancelled => "cancelled",
            SessionState::Failed => "failed",
        }
    }
}

/// The bounded, sequence-numbered event log a session retains for
/// (re-)attaching clients.
#[derive(Debug)]
struct Replay {
    /// Sequence number the next event will receive.
    next_seq: u64,
    /// Sequence number of `buffer.front()` (== `next_seq` when empty).
    first_seq: u64,
    /// Fully rendered event lines, oldest first.
    buffer: VecDeque<String>,
    capacity: usize,
    /// No further events will arrive.
    done: bool,
}

/// One submitted campaign: server-owned state that outlives any client
/// connection.
#[derive(Debug)]
struct Session {
    id: String,
    campaign: &'static str,
    specs: Vec<SweepSpec>,
    points: usize,
    state: Mutex<SessionState>,
    cancel: Arc<AtomicBool>,
    replay: Mutex<Replay>,
    /// Signalled on every pushed event and on completion; paired with
    /// `replay`.
    delivered: Condvar,
    /// Per-spec provenance totals, filled in as specs complete.
    totals: Mutex<Vec<CampaignTotals>>,
}

impl Session {
    fn new(id: String, campaign: &'static str, specs: Vec<SweepSpec>, capacity: usize) -> Self {
        let points = specs.iter().map(|s| s.points.len()).sum();
        Session {
            id,
            campaign,
            specs,
            points,
            state: Mutex::new(SessionState::Queued),
            cancel: Arc::new(AtomicBool::new(false)),
            replay: Mutex::new(Replay {
                next_seq: 0,
                first_seq: 0,
                buffer: VecDeque::new(),
                capacity: capacity.max(1),
                done: false,
            }),
            delivered: Condvar::new(),
            totals: Mutex::new(Vec::new()),
        }
    }

    fn state(&self) -> SessionState {
        *self.state.lock().expect("session state poisoned")
    }

    fn set_state(&self, state: SessionState) {
        *self.state.lock().expect("session state poisoned") = state;
    }

    /// Renders, sequences, and retains one event line, waking attachers.
    fn push_event(&self, event: &CampaignEvent) {
        let mut replay = self.replay.lock().expect("replay buffer poisoned");
        let seq = replay.next_seq;
        replay.next_seq += 1;
        let line = service_event_line(event, &self.id, seq);
        if replay.buffer.len() == replay.capacity {
            replay.buffer.pop_front();
            replay.first_seq += 1;
        }
        replay.buffer.push_back(line);
        self.delivered.notify_all();
    }

    /// Marks the event stream complete and wakes attachers one last time.
    fn finish_events(&self) {
        self.replay.lock().expect("replay buffer poisoned").done = true;
        self.delivered.notify_all();
    }

    /// Blocks until the session reaches a terminal state.
    fn wait_done(&self) {
        let mut replay = self.replay.lock().expect("replay buffer poisoned");
        while !replay.done {
            replay = self.delivered.wait(replay).expect("replay buffer poisoned");
        }
    }

    /// The session's `status` entry.
    fn describe(&self) -> Value {
        let totals = self.totals.lock().expect("session totals poisoned");
        let sum =
            |f: fn(&CampaignTotals) -> usize| -> u64 { totals.iter().map(|t| f(t) as u64).sum() };
        Value::Object(vec![
            ("session_id".to_string(), Value::Str(self.id.clone())),
            (
                "campaign".to_string(),
                Value::Str(self.campaign.to_string()),
            ),
            (
                "state".to_string(),
                Value::Str(self.state().as_str().to_string()),
            ),
            ("points".to_string(), Value::UInt(self.points as u64)),
            ("computed".to_string(), Value::UInt(sum(|t| t.computed))),
            ("cached".to_string(), Value::UInt(sum(|t| t.cached))),
            ("restored".to_string(), Value::UInt(sum(|t| t.restored))),
            ("coalesced".to_string(), Value::UInt(sum(|t| t.coalesced))),
            ("failed".to_string(), Value::UInt(sum(|t| t.failed))),
        ])
    }
}

/// One line of a session's wire event stream: the `--progress json` schema
/// with `session_id` and `seq` appended. Rendered exactly once and retained
/// verbatim in the replay buffer, so every (re-)attach observes
/// byte-identical lines.
fn service_event_line(event: &CampaignEvent, session_id: &str, seq: u64) -> String {
    let base = event.to_json_line();
    let mut fields = match Value::parse_json(&base) {
        Ok(Value::Object(fields)) => fields,
        // to_json_line always emits an object; keep a defensive fallback.
        _ => vec![("event".to_string(), Value::Str("unknown".to_string()))],
    };
    fields.push(("session_id".to_string(), Value::Str(session_id.to_string())));
    fields.push(("seq".to_string(), Value::UInt(seq)));
    Value::Object(fields).to_json()
}

// ---------------------------------------------------------------------------
// The wire protocol
// ---------------------------------------------------------------------------

/// A parsed client request — one JSON object per line, dispatched on its
/// `cmd` field.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a registered campaign: `{"cmd":"submit","campaign":"table2",
    /// "params":{"quick":true}}`. Parameter keys are the registry flags
    /// (with or without the leading `--`); value-less flags take `true`.
    Submit {
        /// Campaign name or alias.
        campaign: String,
        /// Raw parameter pairs, validated against the registry at dispatch.
        params: Vec<(String, Value)>,
    },
    /// Stream a session's events: `{"cmd":"attach","session_id":"s-1",
    /// "after":41}` replays everything after acked seq 41 (omit `after`
    /// for the full log) and then follows live until the session ends.
    Attach {
        /// The session to stream.
        session_id: String,
        /// Last acked sequence number; replay starts after it.
        after: Option<u64>,
    },
    /// List every session with its state and provenance totals.
    Status,
    /// Cancel a session: remaining points drain as failures.
    Cancel {
        /// The session to cancel.
        session_id: String,
    },
    /// Stop accepting work, wait for running sessions, exit.
    Shutdown,
}

/// Parses one request line. Pure and total: any input — truncated JSON,
/// binary garbage, wrong shapes — yields a typed error string, never a
/// panic (the protocol-robustness proptests pin this).
///
/// # Errors
///
/// Returns a human-readable description of what is malformed; the server
/// forwards it verbatim as the `error` field of an `{"ok":false}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = Value::parse_json(line.trim()).map_err(|e| format!("invalid JSON: {e}"))?;
    let Value::Object(ref fields) = value else {
        return Err("request must be a JSON object".to_string());
    };
    let text_field = |name: &str| -> Result<String, String> {
        match value.get(name) {
            Some(Value::Str(s)) if !s.is_empty() => Ok(s.clone()),
            Some(_) => Err(format!("`{name}` must be a non-empty string")),
            None => Err(format!("`{name}` is required")),
        }
    };
    let cmd = text_field("cmd")
        .map_err(|_| "`cmd` is required (submit|attach|status|cancel|shutdown)".to_string())?;
    match cmd.as_str() {
        "submit" => {
            let campaign = text_field("campaign")?;
            let params = match value.get("params") {
                None | Some(Value::Null) => Vec::new(),
                Some(Value::Object(pairs)) => pairs.clone(),
                Some(_) => return Err("`params` must be a JSON object".to_string()),
            };
            // Reject unknown top-level keys so typos fail loudly.
            for (key, _) in fields {
                if !matches!(key.as_str(), "cmd" | "campaign" | "params") {
                    return Err(format!("unknown submit field `{key}`"));
                }
            }
            Ok(Request::Submit { campaign, params })
        }
        "attach" => {
            let session_id = text_field("session_id")?;
            let after = match value.get("after") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| "`after` must be a non-negative integer".to_string())?,
                ),
            };
            Ok(Request::Attach { session_id, after })
        }
        "status" => Ok(Request::Status),
        "cancel" => Ok(Request::Cancel {
            session_id: text_field("session_id")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown cmd `{other}` (submit|attach|status|cancel|shutdown)"
        )),
    }
}

/// Validates a submit request against the campaign registry: resolves the
/// campaign (with a nearest-name suggestion on miss), then applies each
/// parameter through the same [`ParamSpec`](crate::api::ParamSpec) schema
/// the CLI flags go through — out-of-scope flags get the registry's scope
/// error, values are type-checked by the spec's own parser.
///
/// # Errors
///
/// Returns the registry's error text for unknown campaigns/parameters,
/// scope violations, and unparsable values.
pub fn validate_submit(
    campaign: &str,
    params: &[(String, Value)],
) -> Result<(&'static Campaign, CampaignParams), String> {
    let registry = registry();
    let Some(campaign) = registry.find(campaign) else {
        let suggestion = registry
            .suggest(campaign)
            .map(|c| format!(" (did you mean `{}`?)", c.name))
            .unwrap_or_default();
        return Err(format!("unknown campaign `{campaign}`{suggestion}"));
    };
    let mut parsed = CampaignParams::default();
    for (key, value) in params {
        let flag = if key.starts_with("--") {
            key.clone()
        } else {
            format!("--{key}")
        };
        let Some(spec) = registry.param(&flag) else {
            return Err(format!("unknown parameter `{key}`"));
        };
        if !campaign.accepts(spec) {
            return Err(registry.scope_error(campaign, spec));
        }
        if spec.takes_value() {
            let text = match value {
                Value::Str(s) => s.clone(),
                Value::UInt(u) => u.to_string(),
                Value::Int(i) => i.to_string(),
                Value::Float(f) => format!("{f}"),
                Value::Bool(_) | Value::Null | Value::Array(_) | Value::Object(_) => {
                    return Err(format!("`{key}` needs a scalar value"));
                }
            };
            spec.apply(&mut parsed, Some(&text))?;
        } else {
            match value {
                Value::Bool(true) | Value::Null => spec.apply(&mut parsed, None)?,
                Value::Bool(false) => {}
                _ => return Err(format!("`{key}` is a flag; pass true or false")),
            }
        }
    }
    Ok((campaign, parsed))
}

fn response(ok: bool, fields: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![("ok".to_string(), Value::Bool(ok))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Value::Object(pairs).to_json()
}

fn error_response(message: &str) -> String {
    response(false, vec![("error", Value::Str(message.to_string()))])
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ServerState {
    config: ServeConfig,
    local_addr: SocketAddr,
    cache: Option<Arc<ResultCache>>,
    flight: Arc<SingleFlight>,
    sessions: Mutex<Vec<Arc<Session>>>,
    next_session: AtomicU64,
    shutting_down: AtomicBool,
}

impl ServerState {
    fn find_session(&self, id: &str) -> Option<Arc<Session>> {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .iter()
            .find(|s| s.id == id)
            .map(Arc::clone)
    }
}

/// A bound (not yet running) campaign service.
#[derive(Debug)]
pub struct CampaignServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A server running on a background thread (the test harness's and
/// `spawn`'s handle).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to exit (send a `shutdown` request first).
    ///
    /// # Errors
    ///
    /// Returns the accept-loop's I/O error, if it died on one.
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("server thread panicked")))
    }
}

impl CampaignServer {
    /// Binds the listener and opens the shared cache.
    ///
    /// # Errors
    ///
    /// Returns the bind or cache-open error.
    pub fn bind(config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = match &config.cache_dir {
            Some(dir) => Some(Arc::new(ResultCache::open(dir)?)),
            None => None,
        };
        let flight = Arc::new(SingleFlight::new(config.pool));
        let state = Arc::new(ServerState {
            local_addr,
            cache,
            flight,
            sessions: Mutex::new(Vec::new()),
            next_session: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            config,
        });
        Ok(CampaignServer { listener, state })
    }

    /// The bound address (resolves port `0`).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request: accepts connections, one handler
    /// thread each, then waits for every session to reach a terminal state.
    ///
    /// # Errors
    ///
    /// Returns the accept loop's fatal I/O error, if any.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            thread::spawn(move || handle_connection(&state, stream));
        }
        // Drain: let every accepted session finish (cancelled ones drain
        // fast) so reports and journals are consistent on exit.
        let sessions: Vec<Arc<Session>> = self
            .state
            .sessions
            .lock()
            .expect("session table poisoned")
            .clone();
        for session in sessions {
            session.wait_done();
        }
        Ok(())
    }

    /// Binds and runs on a background thread — the embedded/test entry
    /// point.
    ///
    /// # Errors
    ///
    /// Returns the bind or cache-open error.
    pub fn spawn(config: ServeConfig) -> io::Result<ServerHandle> {
        let server = CampaignServer::bind(config)?;
        let addr = server.local_addr()?;
        let thread = thread::Builder::new()
            .name("sweep-serve".to_string())
            .spawn(move || server.run())?;
        Ok(ServerHandle { addr, thread })
    }
}

/// Reads one request line, bounding memory: a line longer than
/// [`MAX_REQUEST_BYTES`] is drained (without buffering) and reported.
fn read_request_line(reader: &mut impl BufRead) -> io::Result<Option<Result<String, ()>>> {
    let mut line = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a non-empty unterminated tail still counts as a line.
            if line.is_empty() {
                return Ok(None);
            }
            break;
        }
        let (consume, found_newline) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        if !oversized {
            let take = consume.min(MAX_REQUEST_BYTES.saturating_sub(line.len()) + 1);
            line.extend_from_slice(&chunk[..take.min(consume)]);
            if line.len() > MAX_REQUEST_BYTES {
                oversized = true;
            }
        }
        reader.consume(consume);
        if found_newline {
            break;
        }
    }
    if oversized {
        return Ok(Some(Err(())));
    }
    let text = String::from_utf8_lossy(&line).trim().to_string();
    Ok(Some(Ok(text)))
}

fn write_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match read_request_line(&mut reader) {
            Ok(Some(Ok(line))) => line,
            Ok(Some(Err(()))) => {
                let message = format!("request line exceeds {MAX_REQUEST_BYTES} bytes");
                if write_line(&mut writer, &error_response(&message)).is_err() {
                    return;
                }
                continue;
            }
            // Client went away (EOF or I/O error): sessions keep running.
            Ok(None) | Err(_) => return,
        };
        if line.is_empty() {
            continue;
        }
        let done = match parse_request(&line) {
            Err(message) => write_line(&mut writer, &error_response(&message)).is_err(),
            Ok(request) => match dispatch_request(state, request, &mut writer) {
                Ok(keep_serving) => !keep_serving,
                Err(_) => true, // client write failed; drop the connection
            },
        };
        if done {
            return;
        }
    }
}

/// Handles one parsed request. `Ok(true)` keeps the connection in command
/// mode; `Ok(false)` ends it (shutdown); `Err` means the client is gone.
fn dispatch_request(
    state: &Arc<ServerState>,
    request: Request,
    writer: &mut impl Write,
) -> io::Result<bool> {
    match request {
        Request::Submit { campaign, params } => {
            if state.shutting_down.load(Ordering::SeqCst) {
                write_line(writer, &error_response("server is shutting down"))?;
                return Ok(true);
            }
            match submit(state, &campaign, &params) {
                Ok(session) => write_line(
                    writer,
                    &response(
                        true,
                        vec![
                            ("reply", Value::Str("submitted".to_string())),
                            ("session_id", Value::Str(session.id.clone())),
                            ("campaign", Value::Str(session.campaign.to_string())),
                            ("points", Value::UInt(session.points as u64)),
                        ],
                    ),
                )?,
                Err(message) => write_line(writer, &error_response(&message))?,
            }
            Ok(true)
        }
        Request::Attach { session_id, after } => {
            stream_session(state, &session_id, after, writer)?;
            Ok(true)
        }
        Request::Status => {
            let sessions: Vec<Value> = state
                .sessions
                .lock()
                .expect("session table poisoned")
                .iter()
                .map(|s| s.describe())
                .collect();
            write_line(
                writer,
                &response(
                    true,
                    vec![
                        ("reply", Value::Str("status".to_string())),
                        ("sessions", Value::Array(sessions)),
                        (
                            "coalesced_total",
                            Value::UInt(state.flight.coalesced_total()),
                        ),
                    ],
                ),
            )?;
            Ok(true)
        }
        Request::Cancel { session_id } => {
            match state.find_session(&session_id) {
                Some(session) => {
                    session.cancel.store(true, Ordering::SeqCst);
                    write_line(
                        writer,
                        &response(
                            true,
                            vec![
                                ("reply", Value::Str("cancelling".to_string())),
                                ("session_id", Value::Str(session_id)),
                                ("state", Value::Str(session.state().as_str().to_string())),
                            ],
                        ),
                    )?;
                }
                None => write_line(
                    writer,
                    &error_response(&format!("no such session `{session_id}`")),
                )?,
            }
            Ok(true)
        }
        Request::Shutdown => {
            state.shutting_down.store(true, Ordering::SeqCst);
            write_line(
                writer,
                &response(
                    true,
                    vec![("reply", Value::Str("shutting_down".to_string()))],
                ),
            )?;
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(state.local_addr);
            Ok(false)
        }
    }
}

/// Validates and enqueues a submit, spawning the session-runner thread.
fn submit(
    state: &Arc<ServerState>,
    campaign: &str,
    params: &[(String, Value)],
) -> Result<Arc<Session>, String> {
    let (campaign, parsed) = validate_submit(campaign, params)?;
    let specs = campaign.specs(&parsed)?;
    let id = format!("s-{}", state.next_session.fetch_add(1, Ordering::SeqCst));
    let session = Arc::new(Session::new(
        id,
        campaign.name,
        specs,
        state.config.replay_capacity,
    ));
    state
        .sessions
        .lock()
        .expect("session table poisoned")
        .push(Arc::clone(&session));
    let state = Arc::clone(state);
    let runner = Arc::clone(&session);
    thread::Builder::new()
        .name(format!("sweep-serve-{}", runner.id))
        .spawn(move || run_session(&state, &runner))
        .map_err(|e| format!("cannot spawn session thread: {e}"))?;
    Ok(session)
}

/// Executes a session's specs against the shared cache under the
/// single-flight coordinator, mirroring the CLI's streaming execution
/// (streaming CSV + JSON report + checkpoint journal, journal deleted per
/// completed spec).
fn run_session(state: &Arc<ServerState>, session: &Arc<Session>) {
    session.set_state(SessionState::Running);
    let dir = state.config.out_dir.join(&session.id);
    let mut infrastructure_error: Option<String> = None;
    if let Err(e) = std::fs::create_dir_all(&dir) {
        infrastructure_error = Some(format!("cannot create {}: {e}", dir.display()));
    }
    if infrastructure_error.is_none() {
        let observer = |event: &CampaignEvent| session.push_event(event);
        for spec in &session.specs {
            let journal_path = dir.join(format!("{}.journal", spec.name));
            let options = ExecutorOptions {
                threads: Some(state.config.session_threads),
                cache_dir: None,
                shared_cache: state.cache.clone(),
                force_recompute: false,
                journal_path: Some(journal_path.clone()),
                resume: false,
                coordinator: Some(Arc::clone(&state.flight) as Arc<dyn PointCoordinator>),
                cancel: Some(Arc::clone(&session.cancel)),
            };
            let csv_path = dir.join(format!("{}.csv", spec.name));
            let schema = report::CsvSchema::for_spec(spec);
            let csv = match StreamingCsvWriter::create_with_schema(&csv_path, schema) {
                Ok(csv) => csv,
                Err(e) => {
                    infrastructure_error =
                        Some(format!("cannot create {}: {e}", csv_path.display()));
                    break;
                }
            };
            let (results, totals) =
                CampaignSession::new(spec, &options).run_with_sink(&observer, &csv);
            if let Err(e) = csv.finish() {
                infrastructure_error = Some(format!("writing {}: {e}", csv_path.display()));
                break;
            }
            let json_path = dir.join(format!("{}.json", spec.name));
            if let Err(e) = report::write_json(&results, &json_path) {
                infrastructure_error = Some(format!("writing {}: {e}", json_path.display()));
                break;
            }
            let _ = std::fs::remove_file(&journal_path);
            session
                .totals
                .lock()
                .expect("session totals poisoned")
                .push(totals);
        }
    }
    let final_state = if let Some(message) = infrastructure_error {
        eprintln!("sweep serve: session {} failed: {message}", session.id);
        SessionState::Failed
    } else if session.cancel.load(Ordering::SeqCst) {
        SessionState::Cancelled
    } else {
        SessionState::Finished
    };
    session.set_state(final_state);
    session.finish_events();
}

/// Streams a session's event lines to an attached client: replay from the
/// cursor, then follow live, then a `detached` response. A write failure
/// (client disconnect) leaves the session untouched.
fn stream_session(
    state: &Arc<ServerState>,
    session_id: &str,
    after: Option<u64>,
    writer: &mut impl Write,
) -> io::Result<()> {
    let Some(session) = state.find_session(session_id) else {
        return write_line(
            writer,
            &error_response(&format!("no such session `{session_id}`")),
        );
    };
    let mut cursor = after.map_or(0, |acked| acked.saturating_add(1));
    write_line(
        writer,
        &response(
            true,
            vec![
                ("reply", Value::Str("attached".to_string())),
                ("session_id", Value::Str(session.id.clone())),
                ("next_seq", Value::UInt(cursor)),
            ],
        ),
    )?;
    loop {
        let (batch, done) = {
            let mut replay = session.replay.lock().expect("replay buffer poisoned");
            while cursor >= replay.next_seq && !replay.done {
                replay = session
                    .delivered
                    .wait(replay)
                    .expect("replay buffer poisoned");
            }
            if cursor < replay.first_seq {
                drop(replay);
                return write_line(
                    writer,
                    &error_response(&format!(
                        "replay gap: events before seq {} were evicted from the bounded \
                         replay buffer (re-submit or attach with a later `after`)",
                        // first_seq read again outside the borrow below
                        session
                            .replay
                            .lock()
                            .expect("replay buffer poisoned")
                            .first_seq
                    )),
                );
            }
            let skip = usize::try_from(cursor - replay.first_seq).unwrap_or(usize::MAX);
            let batch: Vec<String> = replay.buffer.iter().skip(skip).cloned().collect();
            cursor = replay.next_seq;
            (batch, replay.done)
        };
        for line in &batch {
            write_line(writer, line)?;
        }
        if done && batch.is_empty() {
            return write_line(
                writer,
                &response(
                    true,
                    vec![
                        ("reply", Value::Str("detached".to_string())),
                        ("session_id", Value::Str(session.id.clone())),
                        ("state", Value::Str(session.state().as_str().to_string())),
                        ("last_seq", Value::UInt(cursor.saturating_sub(1))),
                    ],
                ),
            );
        }
        if done {
            // Deliver the already-collected tail, then detach on the next
            // iteration (batch will be empty).
            continue;
        }
    }
}

// ---------------------------------------------------------------------------
// Client helpers (the `sweep client` subcommand and the tests ride these)
// ---------------------------------------------------------------------------

/// Sends one request and returns the first response line, parsed.
///
/// # Errors
///
/// Returns a description of the connection, encoding, or protocol error.
pub fn client_request(addr: &str, request: &Value) -> Result<Value, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write_line(&mut stream, &request.to_json()).map_err(|e| format!("send failed: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read failed: {e}"))?;
    if line.is_empty() {
        return Err("server closed the connection without responding".to_string());
    }
    Value::parse_json(line.trim()).map_err(|e| format!("malformed response: {e}"))
}

/// Sends one request on a fresh connection and streams every subsequent
/// line to `on_line` until a `detached` (or error) response arrives, which
/// is returned. Used by `attach` (and `submit --watch`).
///
/// # Errors
///
/// Returns a description of the connection error, or the server's `error`
/// field if the stream ends in a protocol error.
pub fn client_stream(
    addr: &str,
    request: &Value,
    mut on_line: impl FnMut(&str),
) -> Result<Value, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write_line(&mut stream, &request.to_json()).map_err(|e| format!("send failed: {e}"))?;
    let mut reader = BufReader::new(stream);
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection mid-stream".to_string());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value =
            Value::parse_json(trimmed).map_err(|e| format!("malformed stream line: {e}"))?;
        match value.get("ok") {
            // A response line ends the stream: `attached` acks continue it.
            Some(Value::Bool(true))
                if value.get("reply").and_then(Value::as_str) == Some("attached") =>
            {
                on_line(trimmed);
            }
            Some(Value::Bool(true)) => return Ok(value),
            Some(Value::Bool(false)) => {
                let message = value
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown server error");
                return Err(message.to_string());
            }
            _ => on_line(trimmed), // an event line
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- single-flight ----------------------------------------------------

    fn ok_outcome() -> PointOutcome {
        PointOutcome::Error("stand-in outcome".to_string())
    }

    #[test]
    fn single_flight_leads_then_coalesces_then_leads_again() {
        let flight = Arc::new(SingleFlight::new(2));
        assert_eq!(flight.claim("d1"), PointClaim::Lead);

        // A concurrent claim on the same digest blocks until publish, then
        // receives the published outcome.
        let follower = {
            let flight = Arc::clone(&flight);
            thread::spawn(move || flight.claim("d1"))
        };
        // Give the follower a moment to park (not required for
        // correctness — publish-after also works — but exercises the
        // waiting path deterministically enough).
        thread::sleep(std::time::Duration::from_millis(20));
        flight.publish("d1", &ok_outcome());
        assert_eq!(
            follower.join().unwrap(),
            PointClaim::Coalesced(Box::new(ok_outcome()))
        );
        assert_eq!(flight.coalesced_total(), 1);

        // After publish the digest is free again: a later claim leads.
        assert_eq!(flight.claim("d1"), PointClaim::Lead);
        flight.publish("d1", &ok_outcome());
    }

    #[test]
    fn single_flight_pool_bounds_concurrent_leaders() {
        let flight = Arc::new(SingleFlight::new(1));
        assert_eq!(flight.claim("a"), PointClaim::Lead);
        // A second *distinct* digest must wait for the permit.
        let second = {
            let flight = Arc::clone(&flight);
            thread::spawn(move || {
                let claim = flight.claim("b");
                flight.publish("b", &ok_outcome());
                claim
            })
        };
        thread::sleep(std::time::Duration::from_millis(20));
        assert!(!second.is_finished(), "one permit, so `b` must queue");
        flight.publish("a", &ok_outcome());
        assert_eq!(second.join().unwrap(), PointClaim::Lead);
    }

    // -- replay buffer -----------------------------------------------------

    fn event(index: usize) -> CampaignEvent {
        CampaignEvent::PointFinished {
            index,
            cache_hit: false,
        }
    }

    #[test]
    fn replay_buffer_sequences_and_evicts_oldest() {
        let session = Session::new("s-9".to_string(), "table2", Vec::new(), 2);
        for i in 0..3 {
            session.push_event(&event(i));
        }
        let replay = session.replay.lock().unwrap();
        assert_eq!(replay.next_seq, 3);
        assert_eq!(replay.first_seq, 1, "capacity 2 evicted seq 0");
        assert_eq!(replay.buffer.len(), 2);
        for (offset, line) in replay.buffer.iter().enumerate() {
            let value = Value::parse_json(line).unwrap();
            assert_eq!(
                value.get("seq").and_then(Value::as_u64),
                Some(1 + offset as u64)
            );
            assert_eq!(value.get("session_id").and_then(Value::as_str), Some("s-9"));
            assert_eq!(
                value.get("event").and_then(Value::as_str),
                Some("point_finished")
            );
        }
    }

    #[test]
    fn service_event_lines_keep_the_base_schema_leading() {
        let line = service_event_line(
            &CampaignEvent::CampaignStarted {
                campaign: "fig9".to_string(),
                points: 48,
            },
            "s-1",
            0,
        );
        let Value::Object(fields) = Value::parse_json(&line).unwrap() else {
            panic!("not an object: {line}");
        };
        assert_eq!(fields[0].0, "event", "the kind still leads: {line}");
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(&keys[keys.len() - 2..], ["session_id", "seq"]);
    }

    // -- request parsing ---------------------------------------------------

    #[test]
    fn parse_request_accepts_the_documented_shapes() {
        assert_eq!(
            parse_request(r#"{"cmd":"status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"cmd":"attach","session_id":"s-1","after":41}"#).unwrap(),
            Request::Attach {
                session_id: "s-1".to_string(),
                after: Some(41)
            }
        );
        let submit =
            parse_request(r#"{"cmd":"submit","campaign":"table2","params":{"quick":true}}"#)
                .unwrap();
        assert_eq!(
            submit,
            Request::Submit {
                campaign: "table2".to_string(),
                params: vec![("quick".to_string(), Value::Bool(true))],
            }
        );
    }

    #[test]
    fn parse_request_rejects_malformed_lines_with_typed_errors() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":"submit"}"#,
            r#"{"cmd":"submit","campaign":""}"#,
            r#"{"cmd":"submit","campaign":"fig9","params":[1]}"#,
            r#"{"cmd":"submit","campaign":"fig9","typo":1}"#,
            r#"{"cmd":"attach"}"#,
            r#"{"cmd":"attach","session_id":"s-1","after":-3}"#,
            r#"{"cmd":"cancel"}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert!(!err.is_empty(), "error text for {bad:?}");
        }
    }

    #[test]
    fn validate_submit_reuses_the_registry_schemas() {
        // Happy path: a value-less flag and a valued one.
        let (campaign, params) =
            validate_submit("table2", &[("quick".to_string(), Value::Bool(true))]).unwrap();
        assert_eq!(campaign.name, "table2");
        assert!(params.quick);

        let (_, params) = validate_submit(
            "gen-campaign",
            &[
                ("population".to_string(), Value::UInt(8)),
                ("--seed".to_string(), Value::Str("41".to_string())),
            ],
        )
        .unwrap();
        assert_eq!(params.population, Some(8));
        assert_eq!(params.population_seed, Some(41));

        // Unknown campaign: nearest-name suggestion, like the CLI.
        let err = validate_submit("fig12x", &[]).unwrap_err();
        assert!(err.contains("did you mean `fig12`?"), "{err}");

        // Out-of-scope flag: the registry's scope error, like the CLI.
        let err = validate_submit(
            "fig9",
            &[("sm-counts".to_string(), Value::Str("1,2".to_string()))],
        )
        .unwrap_err();
        assert!(err.contains("gpu-scale"), "{err}");

        // Type errors surface the spec's own parser message.
        let err = validate_submit(
            "gen-campaign",
            &[("population".to_string(), Value::Str("lots".to_string()))],
        )
        .unwrap_err();
        assert!(!err.is_empty());
    }

    // -- bounded request reader --------------------------------------------

    #[test]
    fn read_request_line_bounds_memory_and_recovers() {
        let oversized = "x".repeat(MAX_REQUEST_BYTES + 10);
        let input = format!("{oversized}\n{{\"cmd\":\"status\"}}\n");
        let mut reader = BufReader::new(input.as_bytes());
        assert_eq!(read_request_line(&mut reader).unwrap(), Some(Err(())));
        assert_eq!(
            read_request_line(&mut reader).unwrap(),
            Some(Ok("{\"cmd\":\"status\"}".to_string()))
        );
        assert_eq!(read_request_line(&mut reader).unwrap(), None);
    }

    #[test]
    fn read_request_line_handles_unterminated_tails() {
        let mut reader = BufReader::new(&b"{\"cmd\":\"status\"}"[..]);
        assert_eq!(
            read_request_line(&mut reader).unwrap(),
            Some(Ok("{\"cmd\":\"status\"}".to_string()))
        );
        assert_eq!(read_request_line(&mut reader).unwrap(), None);
    }
}
