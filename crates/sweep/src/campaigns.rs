//! Canonical campaign constructors with more than one consumer.
//!
//! The `sweep` CLI, the `ltrf-bench` harness, and the regression tests must
//! agree — byte for byte — on what "the Figure 9 campaign" or "a generated
//! campaign" means: the golden-file test pins the CLI's CSV output, and the
//! bench harness's `gen_campaign` rows must reproduce the CLI's numbers.
//! Keeping the spec constructors here makes that agreement structural
//! rather than a convention.

use ltrf_core::Organization;
use ltrf_workloads::GeneratorConfig;

use crate::spec::{SeedMode, SweepSpec};
use crate::CAMPAIGN_SEED;

/// The organizations of Figure 9 (everything except the §6.6 strand
/// ablation).
pub const FIG9_ORGS: [Organization; 6] = [
    Organization::Baseline,
    Organization::Rfc,
    Organization::Shrf,
    Organization::Ltrf,
    Organization::LtrfPlus,
    Organization::Ideal,
];

/// The organizations a generated campaign compares (the paper's headline
/// pair: the conventional register file and LTRF).
pub const GEN_CAMPAIGN_ORGS: [Organization; 2] = [Organization::Baseline, Organization::Ltrf];

/// The campaign (and report file) name for a figure at the requested SM
/// count: the historical name at one SM — so report files keep their paths
/// and their single-SM contents — and a `-smN` suffix for full-GPU variants
/// so they never clobber the single-SM reports.
#[must_use]
pub fn campaign_name(base: &str, sm_count: usize) -> String {
    if sm_count == 1 {
        base.to_string()
    } else {
        format!("{base}-sm{sm_count}")
    }
}

/// The Figure 9 campaign: [`FIG9_ORGS`] × the given workloads on
/// configurations #6 and #7, normalized — exactly what `sweep fig9` runs
/// (and what the golden-file regression test pins).
#[must_use]
pub fn fig9_spec<S: Into<String>>(
    workloads: impl IntoIterator<Item = S>,
    sm_count: usize,
    seed_mode: SeedMode,
) -> SweepSpec {
    SweepSpec::builder(campaign_name("fig9", sm_count))
        .workloads(workloads)
        .organizations(FIG9_ORGS)
        .config_ids([6, 7])
        .sm_counts([sm_count])
        .seed_mode(seed_mode)
        .normalize(true)
        .build()
}

/// Parameters of a generated-workload campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenCampaignParams {
    /// Population size (members 0..population of the population).
    pub population: usize,
    /// Seed of the generated population (this is the *generator* seed; the
    /// simulation seeds come from `seed_mode`).
    pub population_seed: u64,
    /// Generator bounds the population is drawn under.
    pub config: GeneratorConfig,
    /// SMs per point (populations weak-scale with the SM count exactly as
    /// suite workloads do — the runner scales each member's grid and
    /// footprint from `ExperimentConfig::sm_count`).
    pub sm_count: usize,
    /// Simulation seeding policy.
    pub seed_mode: SeedMode,
}

impl Default for GenCampaignParams {
    fn default() -> Self {
        GenCampaignParams {
            population: 64,
            population_seed: CAMPAIGN_SEED,
            config: GeneratorConfig::default(),
            sm_count: 1,
            seed_mode: SeedMode::Fixed(CAMPAIGN_SEED),
        }
    }
}

impl GenCampaignParams {
    /// The campaign (and report file) name: sized, seeded, and — when the
    /// generator bounds differ from the defaults — fingerprinted, so
    /// differently parameterized campaigns never clobber each other's
    /// reports.
    #[must_use]
    pub fn name(&self) -> String {
        let mut base = format!(
            "gen-campaign-n{}-s{}",
            self.population, self.population_seed
        );
        if self.config != GeneratorConfig::default() {
            // Eight hex digits of the bounds' canonical encoding: enough to
            // separate report files; the full bounds remain readable in the
            // JSON report and the cache-key material.
            let digest = crate::hash::sha256(
                serde::Serialize::to_value(&self.config)
                    .to_json()
                    .as_bytes(),
            );
            base.push_str(&format!("-c{}", &crate::hash::to_hex(&digest)[..8]));
        }
        campaign_name(&base, self.sm_count)
    }
}

/// A generated-workload campaign: [`GEN_CAMPAIGN_ORGS`] × the population on
/// configuration #6, normalized — exactly what `sweep gen-campaign` runs and
/// what `ltrf-bench`'s `gen_campaign` experiment aggregates.
///
/// # Panics
///
/// Panics if the generator bounds fail [`GeneratorConfig::validate`] or the
/// population is empty (the CLI validates first and reports a friendly
/// error).
#[must_use]
pub fn gen_campaign_spec(params: &GenCampaignParams) -> SweepSpec {
    SweepSpec::builder(params.name())
        .organizations(GEN_CAMPAIGN_ORGS)
        .config_ids([6])
        .generated_population(params.population_seed, params.population, params.config)
        .sm_counts([params.sm_count])
        .seed_mode(params.seed_mode)
        .normalize(true)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_spec_matches_the_published_matrix() {
        let spec = fig9_spec(["hotspot", "btree"], 1, SeedMode::Fixed(CAMPAIGN_SEED));
        assert_eq!(spec.name, "fig9");
        assert_eq!(spec.points.len(), 2 * 6 * 2, "workloads x orgs x configs");
        assert!(spec.normalize);
        assert_eq!(
            fig9_spec(["hotspot"], 4, SeedMode::Fixed(1)).name,
            "fig9-sm4"
        );
    }

    #[test]
    fn gen_campaign_spec_enumerates_the_population() {
        let params = GenCampaignParams {
            population: 5,
            population_seed: 7,
            ..GenCampaignParams::default()
        };
        let spec = gen_campaign_spec(&params);
        assert_eq!(spec.name, "gen-campaign-n5-s7");
        assert_eq!(spec.points.len(), 5 * GEN_CAMPAIGN_ORGS.len());
        assert!(spec.points.iter().all(|p| p.generated.is_some()));
        let multi_sm = GenCampaignParams {
            sm_count: 2,
            ..params
        };
        assert_eq!(multi_sm.name(), "gen-campaign-n5-s7-sm2");
    }

    #[test]
    fn non_default_bounds_fingerprint_the_campaign_name() {
        let default_bounds = GenCampaignParams::default();
        assert_eq!(default_bounds.name(), "gen-campaign-n64-s401743896");
        let narrowed = GenCampaignParams {
            config: GeneratorConfig {
                max_regs: 96,
                ..GeneratorConfig::default()
            },
            ..GenCampaignParams::default()
        };
        let name = narrowed.name();
        assert!(
            name.starts_with("gen-campaign-n64-s401743896-c"),
            "bounds fingerprint suffix: {name}"
        );
        assert_ne!(name, default_bounds.name());
        // Stable: the same bounds always fingerprint identically.
        assert_eq!(name, narrowed.name());
    }
}
